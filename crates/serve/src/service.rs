//! The service: one writer thread owning the engine, an MPSC ingest
//! queue with adaptive batching, and handles for submitting work.

use crate::error::ServeError;
use crate::log::SharedLog;
use crate::reader::ReaderHandle;
use crate::stats::{ServiceStats, StatsShared};
use dynamis_core::{DynamicMis, EngineBuilder, EngineError};
use dynamis_graph::Update;
use dynamis_obs::{Counter, Gauge, Stage};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Tuning knobs for [`MisService::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Ingest-queue capacity, in *updates* (a batch counts its length;
    /// an oversized batch is admitted alone into an empty queue). A
    /// full queue blocks `submit` and fails `try_submit` — the
    /// service's backpressure. The gate uses hysteresis: the writer
    /// frees a whole drained round at once, so a saturating feeder
    /// parks once per round, not once per update.
    pub queue_updates: usize,
    /// Maximum updates merged into one engine batch. The writer drains
    /// whatever is queued up to this burst, so queue pressure
    /// automatically amortizes per-update overhead (deferred swap
    /// search, one broadcast per burst).
    pub burst: usize,
    /// Delta-log entries retained before folding into the checkpoint;
    /// readers lagging by more than this re-seed from the checkpoint.
    pub log_window: usize,
    /// Re-bases the broadcast log at this sequence number (0 = fresh
    /// start). A restarted durable service sets it to one past its
    /// recovered update count: the engine's construction-time solution
    /// is installed as the log's base checkpoint instead of being
    /// broadcast as a bootstrap delta, so subscribers from the previous
    /// life re-seed from the recovered state and resume gap-free.
    pub first_seq: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_updates: 1024,
            burst: 256,
            log_window: 1024,
            first_seq: 0,
        }
    }
}

/// One ingest command: its updates plus an optional reply channel
/// (absent for fire-and-forget submissions). Single updates travel
/// inline — a `submit` allocates no `Vec`.
struct Cmd {
    payload: Payload,
    reply: Option<mpsc::Sender<Vec<Result<u64, EngineError>>>>,
    /// Submission time, captured only while stage timing is enabled —
    /// the writer charges `recv → drain` to the ingest-wait stage.
    queued_at: Option<Instant>,
}

enum Payload {
    One(Update),
    Many(Vec<Update>),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::One(_) => 1,
            Payload::Many(v) => v.len(),
        }
    }

    /// Backpressure weight: an empty batch still occupies one slot so
    /// a flood of no-op commands cannot bypass the gate.
    fn weight(&self) -> u64 {
        (self.len() as u64).max(1)
    }
}

/// The ingest gate: bounds queued updates with a counting semaphore
/// whose release side is batched. Feeders block (or fail, on the `try`
/// path) while the queue is at capacity; the writer releases one whole
/// drained round at a time, so a saturated feeder wakes once per round
/// instead of once per freed slot — the park/unpark cost is amortized
/// over the burst.
#[derive(Debug)]
struct Backpressure {
    state: Mutex<BpState>,
    cv: Condvar,
    limit: u64,
}

#[derive(Debug, Default)]
struct BpState {
    depth: u64,
    /// Set when the writer thread is gone (normal exit or panic):
    /// blocked feeders must wake and fail instead of waiting forever
    /// for a release that will never come.
    closed: bool,
}

impl Backpressure {
    fn new(limit: usize) -> Self {
        Backpressure {
            state: Mutex::new(BpState::default()),
            cv: Condvar::new(),
            limit: limit.max(1) as u64,
        }
    }

    /// Admits `weight` queued updates, waiting (or failing) while the
    /// queue is full. An oversized request is admitted alone into an
    /// empty queue rather than deadlocking.
    fn acquire(&self, weight: u64, blocking: bool) -> Result<(), ServeError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(ServeError::Stopped);
            }
            if !(st.depth > 0 && st.depth + weight > self.limit) {
                break;
            }
            if !blocking {
                return Err(ServeError::QueueFull);
            }
            st = self.cv.wait(st).unwrap();
        }
        st.depth += weight;
        Ok(())
    }

    /// Returns a whole drained round's weight and wakes blocked
    /// feeders.
    fn release(&self, weight: u64) {
        let mut st = self.state.lock().unwrap();
        st.depth -= weight;
        drop(st);
        self.cv.notify_all();
    }

    /// Marks the writer as gone and wakes every blocked feeder.
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }
}

/// Closes the backpressure gate when the writer thread exits — on the
/// normal path *and* when a (custom) engine panics mid-apply, so
/// feeders blocked in `acquire` fail with [`ServeError::Stopped`]
/// instead of hanging forever.
struct CloseGateOnExit<'a>(&'a Backpressure);

impl Drop for CloseGateOnExit<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// What the writer thread hands back when the service shuts down.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// `DynamicMis::name` of the served engine.
    pub engine: String,
    /// The engine's final materialized solution (sorted).
    pub solution: Vec<u32>,
    /// Final head of the broadcast log.
    pub head_seq: u64,
    /// Final counter snapshot.
    pub stats: ServiceStats,
}

/// Receipt for a single-update submission.
///
/// Dropping a ticket without waiting is allowed (fire-and-forget after
/// the fact); the writer's send to it simply goes nowhere.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Vec<Result<u64, EngineError>>>,
}

impl Ticket {
    /// Blocks until the update was applied (the sequence number of the
    /// broadcast batch containing it) or rejected (the engine's typed
    /// error, as [`ServeError::Rejected`]).
    pub fn wait(self) -> Result<u64, ServeError> {
        let mut results = self.rx.recv().map_err(|_| ServeError::Stopped)?;
        match results.pop() {
            Some(Ok(seq)) => Ok(seq),
            Some(Err(e)) => Err(ServeError::Rejected(e)),
            None => Err(ServeError::Stopped),
        }
    }
}

/// Receipt for a batch submission: one `Result` per submitted update,
/// in submission order.
#[derive(Debug)]
pub struct BatchTicket {
    rx: mpsc::Receiver<Vec<Result<u64, EngineError>>>,
}

impl BatchTicket {
    /// Blocks until the whole batch went through the engine. Unlike
    /// [`dynamis_core::DynamicMis::try_apply_batch`], a rejection does
    /// not stop the rest of the batch: each update gets its own
    /// `Result` (the sequence number of its broadcast, or the engine's
    /// rejection).
    pub fn wait(self) -> Result<Vec<Result<u64, EngineError>>, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Stopped)
    }
}

/// A cloneable, submit-only handle for feeder threads. All clones feed
/// the same bounded queue; the service shuts down only after every
/// ingest handle (and the [`ServiceHandle`]) is dropped.
#[derive(Clone)]
pub struct IngestHandle {
    tx: mpsc::Sender<Cmd>,
    bp: Arc<Backpressure>,
    stats: Arc<StatsShared>,
}

impl IngestHandle {
    fn send(&self, payload: Payload, want_ticket: bool, blocking: bool) -> SendOutcome {
        let n = payload.len() as u64;
        let weight = payload.weight();
        self.bp.acquire(weight, blocking)?;
        let (reply, rx) = if want_ticket {
            let (tx, rx) = mpsc::channel();
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        self.stats.submitted.fetch_add(n, Ordering::Relaxed);
        self.stats.queued.fetch_add(n as i64, Ordering::Relaxed);
        let queued_at = dynamis_obs::mark();
        match self.tx.send(Cmd {
            payload,
            reply,
            queued_at,
        }) {
            Ok(()) => Ok(rx),
            Err(_) => {
                self.bp.release(weight);
                self.stats.submitted.fetch_sub(n, Ordering::Relaxed);
                self.stats.queued.fetch_sub(n as i64, Ordering::Relaxed);
                Err(ServeError::Stopped)
            }
        }
    }

    /// Enqueues one update, blocking while the queue is full. The
    /// ticket reports the typed outcome.
    pub fn submit(&self, update: Update) -> Result<Ticket, ServeError> {
        self.send(Payload::One(update), true, true)
            .map(|rx| Ticket { rx: rx.unwrap() })
    }

    /// Like [`IngestHandle::submit`], but fails with
    /// [`ServeError::QueueFull`] instead of blocking.
    pub fn try_submit(&self, update: Update) -> Result<Ticket, ServeError> {
        self.send(Payload::One(update), true, false)
            .map(|rx| Ticket { rx: rx.unwrap() })
    }

    /// Fire-and-forget single update (no ticket allocated; rejections
    /// are only visible in [`ServiceStats::rejected`]).
    pub fn submit_detached(&self, update: Update) -> Result<(), ServeError> {
        self.send(Payload::One(update), false, true).map(|_| ())
    }

    /// Enqueues a pre-formed batch as one command, blocking while the
    /// queue is full.
    pub fn submit_batch(&self, updates: Vec<Update>) -> Result<BatchTicket, ServeError> {
        self.send(Payload::Many(updates), true, true)
            .map(|rx| BatchTicket { rx: rx.unwrap() })
    }

    /// Fire-and-forget batch.
    pub fn submit_batch_detached(&self, updates: Vec<Update>) -> Result<(), ServeError> {
        self.send(Payload::Many(updates), false, true).map(|_| ())
    }

    /// Point-in-time counter snapshot — same view as
    /// [`ServiceHandle::stats`], available to feeder threads that only
    /// hold an ingest handle (the network front end's session threads).
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Updates currently admitted into the queue and not yet applied —
    /// the signal admission control samples to shed clients *before*
    /// they hit the blocking backpressure gate.
    pub fn queue_depth(&self) -> u64 {
        self.stats.queued.load(Ordering::Relaxed).max(0) as u64
    }
}

type SendOutcome = Result<Option<mpsc::Receiver<Vec<Result<u64, EngineError>>>>, ServeError>;

/// The owning handle of a running service: submits updates, creates
/// readers, reads stats, and shuts the service down.
///
/// Dropping the handle without calling [`ServiceHandle::shutdown`]
/// detaches the writer thread: it still flushes the queue and exits
/// once the last sender dies, but the final [`ServiceReport`] is
/// discarded.
pub struct ServiceHandle {
    ingest: IngestHandle,
    join: JoinHandle<ServiceReport>,
    log: Arc<SharedLog>,
    stats: Arc<StatsShared>,
}

impl ServiceHandle {
    /// Enqueues one update, blocking while the queue is full.
    pub fn submit(&self, update: Update) -> Result<Ticket, ServeError> {
        self.ingest.submit(update)
    }

    /// Non-blocking submit; [`ServeError::QueueFull`] when saturated.
    pub fn try_submit(&self, update: Update) -> Result<Ticket, ServeError> {
        self.ingest.try_submit(update)
    }

    /// Fire-and-forget single update.
    pub fn submit_detached(&self, update: Update) -> Result<(), ServeError> {
        self.ingest.submit_detached(update)
    }

    /// Enqueues a pre-formed batch as one command.
    pub fn submit_batch(&self, updates: Vec<Update>) -> Result<BatchTicket, ServeError> {
        self.ingest.submit_batch(updates)
    }

    /// Fire-and-forget batch.
    pub fn submit_batch_detached(&self, updates: Vec<Update>) -> Result<(), ServeError> {
        self.ingest.submit_batch_detached(updates)
    }

    /// A cloneable submit-only handle for feeder threads.
    pub fn ingest(&self) -> IngestHandle {
        self.ingest.clone()
    }

    /// A new reader. Starts at sequence 0 and catches up on first use —
    /// including the bootstrap delta, so it reconstructs the engine's
    /// current solution without ever materializing it from the engine.
    pub fn reader(&self) -> ReaderHandle {
        ReaderHandle::new(Arc::clone(&self.log), Arc::clone(&self.stats))
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// The service's broadcast log — the sequenced delta stream a
    /// network front end serializes for its subscribers.
    pub fn log(&self) -> Arc<SharedLog> {
        Arc::clone(&self.log)
    }

    /// Graceful shutdown: stops accepting new work from **this**
    /// handle, lets the writer drain and apply everything already
    /// queued (tickets still resolve), broadcasts the final deltas, and
    /// returns the final report.
    ///
    /// Blocks until every [`IngestHandle`] clone has been dropped too —
    /// the queue closes only when its last sender dies.
    pub fn shutdown(self) -> ServiceReport {
        let ServiceHandle {
            ingest,
            join,
            log: _log,
            stats: _stats,
        } = self;
        drop(ingest);
        join.join().expect("serve writer thread panicked")
    }
}

/// Entry point: turns any engine into a concurrently served one.
///
/// ```
/// use dynamis_core::EngineBuilder;
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_serve::{MisService, ServeConfig};
///
/// let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let (service, mut reader) =
///     MisService::spawn(EngineBuilder::on(g).k(1), ServeConfig::default()).unwrap();
///
/// // Applied updates report their broadcast sequence number…
/// assert!(service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().is_ok());
/// // …invalid ones come back as the engine's typed rejection.
/// assert!(service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().is_err());
///
/// let report = service.shutdown();
/// assert_eq!(reader.snapshot(), report.solution);
/// ```
pub struct MisService;

impl MisService {
    /// Spawns the writer thread over the engine described by `builder`
    /// (the paper engine matching the builder's `k`, via
    /// [`EngineBuilder::build`]). The engine is constructed *inside*
    /// the writer thread; construction errors are reported here.
    ///
    /// Returns the owning [`ServiceHandle`] plus a first
    /// [`ReaderHandle`].
    pub fn spawn(
        builder: EngineBuilder,
        cfg: ServeConfig,
    ) -> Result<(ServiceHandle, ReaderHandle), EngineError> {
        Self::spawn_with(move || builder.build(), cfg)
    }

    /// Like [`MisService::spawn`], but with an arbitrary engine
    /// factory — any [`DynamicMis`], including baselines or wrappers.
    pub fn spawn_with<F>(
        factory: F,
        cfg: ServeConfig,
    ) -> Result<(ServiceHandle, ReaderHandle), EngineError>
    where
        F: FnOnce() -> Result<Box<dyn DynamicMis>, EngineError> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let bp = Arc::new(Backpressure::new(cfg.queue_updates));
        let log = Arc::new(SharedLog::new(cfg.log_window));
        let stats = Arc::new(StatsShared::default());
        let burst = cfg.burst.max(1);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (wlog, wstats, wbp) = (Arc::clone(&log), Arc::clone(&stats), Arc::clone(&bp));
        let join = thread::Builder::new()
            .name("dynamis-serve-writer".into())
            .spawn(move || {
                let mut engine = match factory() {
                    Ok(e) => e,
                    Err(e) => {
                        let _ = ready_tx.send(Err(e));
                        return ServiceReport::default();
                    }
                };
                let _gate_guard = CloseGateOnExit(&wbp);
                // Expose the construction-time bootstrap *before*
                // signalling readiness, so a reader created right after
                // `spawn` returns already sees the initial solution: a
                // fresh service broadcasts it as the first delta, a
                // resumed one (first_seq > 0) installs it as the log's
                // base checkpoint so old subscribers re-seed cleanly.
                if cfg.first_seq > 0 {
                    let _ = engine.drain_delta();
                    wlog.install_checkpoint(cfg.first_seq, &engine.solution());
                    wstats.head_seq.store(cfg.first_seq, Ordering::Relaxed);
                } else {
                    publish(engine.drain_delta(), &wlog, &wstats);
                }
                let _ = ready_tx.send(Ok(()));
                writer_loop(engine.as_mut(), rx, &wlog, &wstats, &wbp, burst);
                ServiceReport {
                    engine: engine.name().to_string(),
                    solution: engine.solution(),
                    head_seq: wlog.head(),
                    stats: wstats.snapshot(),
                }
            })
            .expect("failed to spawn serve writer thread");
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = join.join();
                return Err(e);
            }
            Err(_) => panic!("serve writer thread died during engine construction"),
        }
        let handle = ServiceHandle {
            ingest: IngestHandle {
                tx,
                bp,
                stats: Arc::clone(&stats),
            },
            join,
            log,
            stats,
        };
        let reader = handle.reader();
        Ok((handle, reader))
    }
}

/// The writer thread's cached telemetry handles: the four single-writer
/// latency stages plus the registry-exported series. Built once per
/// service, inside the writer thread.
struct ServeObs {
    ingest_wait: Stage,
    batch_drain: Stage,
    engine_apply: Stage,
    delta_broadcast: Stage,
    queue_depth: Arc<Gauge>,
    applied: Arc<Counter>,
    rejected: Arc<Counter>,
}

impl ServeObs {
    fn new(stats: &StatsShared) -> ServeObs {
        let g = dynamis_obs::global();
        // The service owns its batch-size histogram (per-service
        // isolation for `ServiceStats`); exporting the same instance
        // puts the full-resolution distribution in the snapshot.
        g.register_histogram("serve_batch_size", Arc::clone(&stats.batch_hist));
        ServeObs {
            ingest_wait: Stage::global("serve_ingest_wait_ns"),
            batch_drain: Stage::global("serve_batch_drain_ns"),
            engine_apply: Stage::global("serve_engine_apply_ns"),
            delta_broadcast: Stage::global("serve_delta_broadcast_ns"),
            queue_depth: g.gauge("serve_queue_depth"),
            applied: g.counter("serve_applied_total"),
            rejected: g.counter("serve_rejected_total"),
        }
    }
}

/// The writer loop: blockingly receive one command, opportunistically
/// drain more up to the burst, feed the merged slice through
/// `try_apply_batch`, broadcast the net delta, resolve tickets. Exits
/// when every sender is gone — which is exactly the graceful-shutdown
/// flush, since `recv` keeps returning queued commands until the queue
/// is both closed *and* empty.
fn writer_loop(
    engine: &mut dyn DynamicMis,
    rx: mpsc::Receiver<Cmd>,
    log: &SharedLog,
    stats: &StatsShared,
    bp: &Backpressure,
    burst: usize,
) {
    let obs = ServeObs::new(stats);
    let mut round: Vec<Cmd> = Vec::new();
    let mut updates: Vec<Update> = Vec::new();
    let mut outcomes: Vec<Option<EngineError>> = Vec::new();
    let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
    while let Ok(first) = rx.recv() {
        // Stage: batch drain — the idle blocking `recv` above is not
        // latency, but everything from here to the merged slice is.
        let t_drain = obs.batch_drain.begin();
        let mut total = first.payload.len();
        let mut weight = first.payload.weight();
        round.push(first);
        // Adaptive batching: whatever is queued right now rides along,
        // up to the burst cap. An idle queue means batch size 1 (lowest
        // latency); a saturated queue means full bursts (highest
        // amortization).
        while total < burst {
            match rx.try_recv() {
                Ok(cmd) => {
                    total += cmd.payload.len();
                    weight += cmd.payload.weight();
                    round.push(cmd);
                }
                Err(_) => break,
            }
        }
        // Free the whole round's queue budget in one step — blocked
        // feeders wake once per round and refill while the engine
        // works on this batch.
        bp.release(weight);
        obs.batch_drain.end(t_drain);
        apply_round(
            engine,
            &mut round,
            &mut updates,
            &mut outcomes,
            &mut ranges,
            log,
            stats,
            &obs,
        );
    }
}

/// Applies one merged round of commands and resolves their tickets.
/// Every buffer is caller-owned and reused round over round — the
/// writer hot path allocates nothing of its own here.
#[allow(clippy::too_many_arguments)]
fn apply_round(
    engine: &mut dyn DynamicMis,
    round: &mut Vec<Cmd>,
    updates: &mut Vec<Update>,
    outcomes: &mut Vec<Option<EngineError>>,
    ranges: &mut Vec<std::ops::Range<usize>>,
    log: &SharedLog,
    stats: &StatsShared,
    obs: &ServeObs,
) {
    // Stage: ingest wait — charge each command's queue time against one
    // clock read (timestamps exist only while stage timing is enabled).
    if round.iter().any(|c| c.queued_at.is_some()) {
        let now = Instant::now();
        for cmd in round.iter() {
            obs.ingest_wait.end_at(cmd.queued_at, now);
        }
    }
    updates.clear();
    ranges.clear();
    for cmd in round.iter_mut() {
        let start = updates.len();
        match std::mem::replace(&mut cmd.payload, Payload::Many(Vec::new())) {
            Payload::One(u) => updates.push(u),
            Payload::Many(mut v) => updates.append(&mut v),
        }
        ranges.push(start..updates.len());
    }
    let n = updates.len();
    stats.queued.fetch_sub(n as i64, Ordering::Relaxed);
    obs.queue_depth
        .set(stats.queued.load(Ordering::Relaxed).max(0) as u64);

    // Feed the merged slice through the engine's real batch path.
    // `try_apply_batch` stops at the first rejection with the valid
    // prefix applied; resume right after the rejected update so every
    // update gets an individual verdict.
    let t_apply = obs.engine_apply.begin();
    outcomes.clear();
    outcomes.resize(n, None);
    let mut start = 0;
    while start < n {
        match engine.try_apply_batch(&updates[start..]) {
            Ok(_) => break,
            Err(EngineError::Batch { index, cause }) => {
                outcomes[start + index] = Some(*cause);
                start += index + 1;
            }
            Err(other) => {
                // Engines wrap batch failures in `EngineError::Batch`;
                // treat anything else as the first update failing.
                outcomes[start] = Some(other);
                start += 1;
            }
        }
    }
    obs.engine_apply.end(t_apply);

    // One broadcast per round: the net delta of everything the engine
    // accepted (the drainable feed nets rejected prefixes correctly).
    let t_bcast = obs.delta_broadcast.begin();
    let delta = engine.drain_delta();
    let seq = if delta.is_empty() {
        log.head()
    } else {
        publish(delta, log, stats)
    };
    obs.delta_broadcast.end(t_bcast);

    let rejected = outcomes.iter().filter(|o| o.is_some()).count();
    stats
        .applied
        .fetch_add((n - rejected) as u64, Ordering::Relaxed);
    stats.rejected.fetch_add(rejected as u64, Ordering::Relaxed);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.batch_hist.record(n as u64);
    obs.applied.add((n - rejected) as u64);
    obs.rejected.add(rejected as u64);

    for (cmd, range) in round.drain(..).zip(ranges.drain(..)) {
        if let Some(reply) = cmd.reply {
            let results = range
                .map(|i| match outcomes[i].take() {
                    None => Ok(seq),
                    Some(e) => Err(e),
                })
                .collect();
            // A dropped ticket is fine — fire-and-forget after the fact.
            let _ = reply.send(results);
        }
    }
}

/// Publishes one non-empty delta and mirrors the head into the stats.
fn publish(delta: dynamis_core::SolutionDelta, log: &SharedLog, stats: &StatsShared) -> u64 {
    let seq = log.publish(delta);
    stats.head_seq.store(seq, Ordering::Relaxed);
    seq
}
