//! Reader handles: private solution mirrors that catch up lazily from
//! the broadcast delta log.

use crate::log::{SeqEntry, SharedLog};
use crate::stats::StatsShared;
use dynamis_core::{MirrorError, SolutionMirror};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An independent, concurrently usable view of the served solution.
///
/// Each handle owns a private [`SolutionMirror`] and a position in the
/// sequenced delta log. Queries first *sync* — apply every delta
/// published since the handle last looked, cloning only `Arc`s under
/// the log mutex — and then answer from the mirror. A reader therefore
/// never touches the engine, never blocks the writer for more than an
/// `Arc` clone, and never rematerializes the solution from scratch
/// (except when re-seeding after falling behind the log's retained
/// window).
///
/// Handles are `Send`: create one per query thread via
/// [`ReaderHandle::fork`] (or [`crate::ServiceHandle::reader`]).
///
/// ```
/// use dynamis_core::EngineBuilder;
/// use dynamis_graph::DynamicGraph;
/// use dynamis_serve::{MisService, ServeConfig};
///
/// let g = DynamicGraph::from_edges(5, &[(0, 1), (2, 3)]);
/// let (service, mut reader) =
///     MisService::spawn(EngineBuilder::on(g), ServeConfig::default()).unwrap();
///
/// // A reader answers from its private mirror — never from the engine.
/// assert_eq!(reader.len(), 3);
/// assert!(reader.contains(4));
///
/// // Forked readers are independent: hand one to each query thread.
/// let mut fork = reader.fork();
/// let t = std::thread::spawn(move || fork.snapshot());
/// assert_eq!(t.join().unwrap(), reader.snapshot());
/// # service.shutdown();
/// ```
#[derive(Debug)]
pub struct ReaderHandle {
    log: Arc<SharedLog>,
    stats: Arc<StatsShared>,
    mirror: SolutionMirror,
    seq: u64,
    /// Last-synced seq, shared with [`StatsShared`] for lag reporting.
    slot: Arc<AtomicU64>,
    /// Reusable catch-up buffer (no steady-state allocation).
    scratch: Vec<Arc<SeqEntry>>,
    last_desync: Option<MirrorError>,
}

impl ReaderHandle {
    pub(crate) fn new(log: Arc<SharedLog>, stats: Arc<StatsShared>) -> Self {
        let slot = stats.register_reader(0);
        ReaderHandle {
            log,
            stats,
            mirror: SolutionMirror::new(),
            seq: 0,
            slot,
            scratch: Vec::new(),
            last_desync: None,
        }
    }

    /// Applies every delta published since this handle last synced;
    /// returns the sequence number now reflected by the mirror.
    pub fn sync(&mut self) -> u64 {
        let r = self
            .log
            .catch_up(&mut self.mirror, self.seq, &mut self.scratch);
        self.seq = r.seq;
        if r.resynced {
            self.stats.resyncs.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(err) = r.desync {
            self.stats.desyncs.fetch_add(1, Ordering::Relaxed);
            self.last_desync = Some(err);
        }
        self.slot.store(self.seq, Ordering::Relaxed);
        self.seq
    }

    /// O(1) membership test against the freshly synced mirror.
    pub fn contains(&mut self, v: u32) -> bool {
        self.sync();
        self.mirror.contains(v)
    }

    /// Current solution size.
    pub fn len(&mut self) -> usize {
        self.sync();
        self.mirror.len()
    }

    /// Whether the solution is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Materializes the current solution (sorted vertex ids) — same
    /// shape as [`dynamis_core::DynamicMis::solution`].
    pub fn snapshot(&mut self) -> Vec<u32> {
        self.sync();
        self.mirror.solution()
    }

    /// The sequence number the mirror reflects (as of the last sync —
    /// this accessor does not sync).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The last mirror desync this handle recovered from, if any ever
    /// happened (typed — see [`MirrorError`]). Always `None` unless the
    /// broadcast path has a bug.
    pub fn last_desync(&self) -> Option<MirrorError> {
        self.last_desync
    }

    /// A new independent reader starting at this handle's position
    /// (cheap: clones the mirror, not the log).
    pub fn fork(&self) -> ReaderHandle {
        ReaderHandle {
            log: Arc::clone(&self.log),
            stats: Arc::clone(&self.stats),
            mirror: self.mirror.clone(),
            seq: self.seq,
            slot: self.stats.register_reader(self.seq),
            scratch: Vec::new(),
            last_desync: None,
        }
    }
}
