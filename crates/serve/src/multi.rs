//! Merged read views over several per-shard delta logs.
//!
//! A sharded maintenance layer (see `dynamis-shard`) gives every shard
//! its own [`SharedLog`], published once per *epoch* (one applied
//! ingest round) by that shard's writer thread — including an empty
//! entry when the shard's part of the solution did not change, so the
//! logs' heads advance in lockstep. A [`ShardedReader`] holds one
//! private [`SolutionMirror`] per shard and syncs all of them to the
//! **same epoch** — the minimum head across the logs, i.e. the newest
//! consistent cut — before answering. Because each shard's log carries
//! only the vertices that shard owns, the mirrors partition the
//! solution and merging is union without conflicts.

use crate::log::SeqEntry;
use crate::SharedLog;
use dynamis_core::SolutionMirror;
use std::sync::Arc;

/// A consistent, concurrently usable view over per-shard solution logs.
///
/// Like [`crate::ReaderHandle`], queries sync lazily and never touch any
/// engine; unlike it, the catch-up target is the newest epoch *every*
/// shard has published (`min` over log heads), so a query never observes
/// shard A's half of a cross-shard repair without shard B's half.
///
/// Handles are `Send`; create one per query thread with
/// [`ShardedReader::fork`].
#[derive(Debug)]
pub struct ShardedReader {
    logs: Vec<Arc<SharedLog>>,
    mirrors: Vec<SolutionMirror>,
    seqs: Vec<u64>,
    scratch: Vec<Arc<SeqEntry>>,
}

impl ShardedReader {
    /// A reader over `logs` (one per shard), starting at epoch 0 and
    /// catching up on first use.
    pub fn new(logs: Vec<Arc<SharedLog>>) -> Self {
        assert!(!logs.is_empty(), "a sharded reader needs at least one log");
        let n = logs.len();
        ShardedReader {
            logs,
            mirrors: (0..n).map(|_| SolutionMirror::new()).collect(),
            seqs: vec![0; n],
            scratch: Vec::new(),
        }
    }

    /// Number of shards merged by this reader.
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// Advances every per-shard mirror to the newest consistent cut and
    /// returns that epoch. A fully caught-up reader costs one atomic
    /// load per shard, no locks.
    ///
    /// A reader that fell behind a log's retained window re-seeds from
    /// that log's checkpoint, which can land *past* the cut it was
    /// aiming for; the loop then raises the cut and advances the other
    /// mirrors to match, retrying (with a yield) while the producers'
    /// next epochs are still in flight. Only if a producer stops
    /// publishing mid-epoch forever (a torn writer — the serve layers
    /// publish every shard's epoch inside one barrier, so this means
    /// the writer died) does the reader give up and answer from the
    /// skewed view instead of spinning.
    pub fn sync(&mut self) -> u64 {
        let mut stalls = 0u32;
        loop {
            let heads_min = self.logs.iter().map(|l| l.head()).min().unwrap_or(0);
            let seq_max = self.seqs.iter().copied().max().unwrap_or(0);
            let target = heads_min.max(seq_max);
            let mut progress = false;
            for (i, log) in self.logs.iter().enumerate() {
                if self.seqs[i] < target {
                    let r = log.catch_up_to(
                        &mut self.mirrors[i],
                        self.seqs[i],
                        target,
                        &mut self.scratch,
                    );
                    if r.seq != self.seqs[i] {
                        progress = true;
                    }
                    self.seqs[i] = r.seq;
                }
            }
            if self.seqs.iter().all(|&s| s == target) {
                return target;
            }
            if progress {
                stalls = 0;
                continue;
            }
            stalls += 1;
            if stalls > 1_000 {
                // Torn producer: settle instead of spinning forever.
                return self.seqs.iter().copied().min().unwrap_or(0);
            }
            std::thread::yield_now();
        }
    }

    /// O(1) membership test against the freshly synced cut. Ownership
    /// partitions the solution, so at most one mirror holds `v`.
    pub fn contains(&mut self, v: u32) -> bool {
        self.sync();
        self.mirrors.iter().any(|m| m.contains(v))
    }

    /// Merged solution size at the current cut.
    pub fn len(&mut self) -> usize {
        self.sync();
        self.mirrors.iter().map(|m| m.len()).sum()
    }

    /// Whether the merged solution is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Materializes the merged solution (sorted vertex ids) — the same
    /// shape [`dynamis_core::DynamicMis::solution`] returns.
    pub fn snapshot(&mut self) -> Vec<u32> {
        self.sync();
        let mut out: Vec<u32> = self
            .mirrors
            .iter()
            .flat_map(|m| m.solution())
            .collect::<Vec<_>>();
        out.sort_unstable();
        out
    }

    /// The per-shard sequence positions of the last synced cut (all
    /// equal after a [`ShardedReader::sync`] unless a producer died
    /// mid-epoch — see `sync`).
    pub fn seq_vector(&self) -> &[u64] {
        &self.seqs
    }

    /// A new independent reader starting at this handle's cut (cheap:
    /// clones the mirrors, not the logs).
    pub fn fork(&self) -> ShardedReader {
        ShardedReader {
            logs: self.logs.clone(),
            mirrors: self.mirrors.clone(),
            seqs: self.seqs.clone(),
            scratch: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_core::{EngineStats, SolutionDelta};

    fn delta(entered: Vec<u32>, left: Vec<u32>) -> SolutionDelta {
        SolutionDelta {
            entered,
            left,
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn reader_merges_disjoint_shard_logs() {
        let a = Arc::new(SharedLog::new(8));
        let b = Arc::new(SharedLog::new(8));
        a.publish(delta(vec![0, 2], vec![]));
        b.publish(delta(vec![1, 5], vec![]));
        let mut r = ShardedReader::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        assert_eq!(r.snapshot(), vec![0, 1, 2, 5]);
        assert_eq!(r.len(), 4);
        assert!(r.contains(5) && !r.contains(3));
        assert_eq!(r.seq_vector(), &[1, 1]);
    }

    #[test]
    fn sync_stops_at_the_consistent_cut() {
        let a = Arc::new(SharedLog::new(8));
        let b = Arc::new(SharedLog::new(8));
        // Epoch 1 on both logs; epoch 2 only on log a (b mid-publish).
        a.publish(delta(vec![0], vec![]));
        b.publish(delta(vec![1], vec![]));
        a.publish(delta(vec![2], vec![0]));
        let mut r = ShardedReader::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        assert_eq!(r.sync(), 1, "cut is min(head) across logs");
        assert_eq!(r.snapshot(), vec![0, 1], "epoch 2 is not yet visible");
        // b catches up; the cut advances.
        b.publish(delta(vec![], vec![]));
        assert_eq!(r.sync(), 2);
        assert_eq!(r.snapshot(), vec![1, 2]);
    }

    #[test]
    fn checkpoint_overshoot_re_aligns_the_cut() {
        // A tiny window forces a lagging reader to re-seed from a
        // checkpoint *past* the cut it aimed for; sync must then raise
        // the cut and advance the other mirror to match instead of
        // serving half of a cross-shard repair.
        let a = Arc::new(SharedLog::new(2));
        let b = Arc::new(SharedLog::new(2));
        // Epoch 1..=8 on log a (checkpoint covers ..=6), 1..=8 on b.
        for i in 0..8u32 {
            a.publish(delta(vec![100 + i], vec![]));
            b.publish(delta(vec![200 + i], vec![]));
        }
        let mut r = ShardedReader::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        // Push a past b: a at 12, b still at 8 → the aimed cut is 8,
        // but a's checkpoint now covers ..=10, overshooting it. The
        // sync must terminate (b will never publish inside this
        // single-threaded test — the torn-producer escape) instead of
        // spinning, and must leave a's mirror at the checkpoint.
        for i in 8..12u32 {
            a.publish(delta(vec![100 + i], vec![]));
        }
        assert!(a.head() > b.head());
        r.sync();
        assert!(
            r.seq_vector().contains(&10),
            "a's mirror re-seeded at its checkpoint: {:?}",
            r.seq_vector()
        );
        // Once b publishes the missing epochs, the next sync raises the
        // cut over the overshoot and re-aligns both mirrors.
        for i in 8..12u32 {
            b.publish(delta(vec![200 + i], vec![]));
        }
        let cut = r.sync();
        assert_eq!(cut, 12, "cut rises past the checkpoint overshoot");
        let seqs = r.seq_vector().to_vec();
        assert!(seqs.iter().all(|&s| s == cut), "aligned: {seqs:?}");
        assert_eq!(r.len(), 24, "both shards' epochs 1..=12 visible");
    }

    #[test]
    fn fork_is_independent() {
        let a = Arc::new(SharedLog::new(8));
        a.publish(delta(vec![7], vec![]));
        let mut r = ShardedReader::new(vec![Arc::clone(&a)]);
        assert!(r.contains(7));
        let mut f = r.fork();
        a.publish(delta(vec![8], vec![]));
        assert!(f.contains(8) && r.contains(8));
    }
}
