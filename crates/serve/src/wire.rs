//! Versioned binary codec for everything the serving layer broadcasts:
//! [`SolutionDelta`]s, sequenced log entries, [`Update`]s,
//! [`EngineError`]s, and [`ServiceStats`] snapshots.
//!
//! This is the *value* layer of the network protocol (`dynamis-net`
//! supplies the framing and the request/response vocabulary on top).
//! The encoding is deliberately boring: little-endian fixed-width
//! integers, length-prefixed lists, one leading [`WIRE_VERSION`] word
//! per top-level value. Three properties are load-bearing:
//!
//! * **Decoding never panics and never over-allocates.** Every decode
//!   path returns a typed [`WireError`]; list lengths are validated
//!   against the bytes actually present *before* any allocation, so a
//!   frame claiming four billion elements fails fast instead of
//!   exhausting memory. The fuzz-style proptests in
//!   `crates/serve/tests/wire.rs` pin this for arbitrary mutations and
//!   truncations.
//! * **A newer version is a typed error, not a guess.** Each top-level
//!   value leads with the version it was encoded under; a decoder that
//!   sees a version above its own [`WIRE_VERSION`] reports
//!   [`WireError::UnsupportedVersion`] instead of misparsing bytes.
//! * **Error tags are the stable `code()`s.** [`EngineError::code`] and
//!   [`dynamis_graph::GraphError::code`] double as the wire tags, so
//!   the numeric rejection codes clients observe are append-only across
//!   releases.

use crate::stats::{ServiceStats, HIST_BUCKETS};
use dynamis_core::{EngineError, EngineStats, SolutionDelta};
use dynamis_graph::{GraphError, Update};
use dynamis_obs::{Event, HistogramSnapshot, MetricsSnapshot};
use std::fmt;

/// Version word leading every top-level encoded value. Bump when the
/// layout of any codec in this module changes incompatibly; decoders
/// accept everything `<= WIRE_VERSION`.
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on any single length-prefixed list (vertex lists, strings,
/// batches). Far above anything the engines produce; a length beyond it
/// is corrupt by definition, and rejecting early keeps a hostile peer
/// from staging huge allocations just below the byte check.
pub const MAX_LIST: usize = 1 << 28;

/// Nested [`EngineError::Batch`] causes accepted by the decoder. Real
/// engines nest exactly once; anything deeper in a decoded stream is a
/// malformed (or hostile) value.
const MAX_ERROR_DEPTH: usize = 4;

/// Why a decode failed. Decoding is total: every malformed input maps
/// to one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the named field was complete.
    Truncated(&'static str),
    /// The value was encoded under a newer codec version than this
    /// build supports.
    UnsupportedVersion {
        /// Version the value claims.
        got: u16,
        /// Newest version this decoder understands.
        supported: u16,
    },
    /// A tag byte/word does not name any variant of the field.
    UnknownTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u16,
    },
    /// A length prefix exceeds [`MAX_LIST`] or the bytes remaining.
    TooLong {
        /// Which list was being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A structurally invalid value (bad UTF-8, over-deep nesting, …).
    Malformed(&'static str),
    /// Bytes were left over after a complete top-level value (only
    /// reported by the strict `decode_*` entry points, which consume
    /// whole buffers).
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated(what) => write!(f, "truncated while decoding {what}"),
            WireError::UnsupportedVersion { got, supported } => write!(
                f,
                "encoded under wire version {got}, but this build supports <= {supported}"
            ),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::TooLong { what, len } => {
                write!(f, "{what} length {len} exceeds the buffer or the list cap")
            }
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after a complete value"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over an encoded buffer. All `take_*` methods
/// fail with a typed [`WireError`] instead of panicking; nothing is
/// consumed by a failed take.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// One byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Little-endian u16.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian u32.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian u64.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// List length prefix, validated against both [`MAX_LIST`] and the
    /// bytes actually remaining (`elem_bytes` per element) before any
    /// allocation can happen.
    pub fn take_len(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let len = self.take_u32(what)? as u64;
        let fits = len <= MAX_LIST as u64
            && len
                .checked_mul(elem_bytes.max(1) as u64)
                .is_some_and(|b| b <= self.remaining() as u64);
        if !fits {
            return Err(WireError::TooLong { what, len });
        }
        Ok(len as usize)
    }

    /// Length-prefixed `u32` list.
    pub fn take_u32s(&mut self, what: &'static str) -> Result<Vec<u32>, WireError> {
        let len = self.take_len(4, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_u32(what)?);
        }
        Ok(out)
    }

    /// Length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.take_len(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed(what))
    }

    /// Leading version word of a top-level value.
    pub fn take_version(&mut self, what: &'static str) -> Result<u16, WireError> {
        let got = self.take_u16(what)?;
        if got > WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                got,
                supported: WIRE_VERSION,
            });
        }
        Ok(got)
    }

    /// Fails unless the buffer was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }
}

/// Appends a little-endian u16.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed `u32` list.
pub fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_u32(out, v);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Update
// ---------------------------------------------------------------------------

/// Encodes one [`Update`] (versioned).
pub fn encode_update(u: &Update, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_update_body(u, out);
}

/// Appends one [`Update`] *without* a version word — for composing
/// into a larger versioned value (the network request codec).
pub fn encode_update_body(u: &Update, out: &mut Vec<u8>) {
    match u {
        Update::InsertEdge(a, b) => {
            out.push(1);
            put_u32(out, *a);
            put_u32(out, *b);
        }
        Update::RemoveEdge(a, b) => {
            out.push(2);
            put_u32(out, *a);
            put_u32(out, *b);
        }
        Update::InsertVertex { id, neighbors } => {
            out.push(3);
            put_u32(out, *id);
            put_u32s(out, neighbors);
        }
        Update::RemoveVertex(v) => {
            out.push(4);
            put_u32(out, *v);
        }
    }
}

/// Decodes one [`Update`]; the whole buffer must be consumed.
pub fn decode_update(buf: &[u8]) -> Result<Update, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("update")?;
    let u = take_update(&mut r)?;
    r.finish()?;
    Ok(u)
}

/// Streaming counterpart of [`decode_update`]: reads one [`Update`]
/// body (no version word) from the cursor.
pub fn take_update(r: &mut Reader<'_>) -> Result<Update, WireError> {
    match r.take_u8("update tag")? {
        1 => Ok(Update::InsertEdge(
            r.take_u32("update")?,
            r.take_u32("update")?,
        )),
        2 => Ok(Update::RemoveEdge(
            r.take_u32("update")?,
            r.take_u32("update")?,
        )),
        3 => Ok(Update::InsertVertex {
            id: r.take_u32("update")?,
            neighbors: r.take_u32s("update neighbors")?,
        }),
        4 => Ok(Update::RemoveVertex(r.take_u32("update")?)),
        tag => Err(WireError::UnknownTag {
            what: "update",
            tag: tag as u16,
        }),
    }
}

// ---------------------------------------------------------------------------
// SolutionDelta and log entries
// ---------------------------------------------------------------------------

/// Encodes one [`SolutionDelta`] (versioned).
pub fn encode_delta(d: &SolutionDelta, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_delta_body(d, out);
}

/// Appends one [`SolutionDelta`] *without* a version word — for
/// composing into a larger versioned value.
pub fn encode_delta_body(d: &SolutionDelta, out: &mut Vec<u8>) {
    put_u32s(out, &d.entered);
    put_u32s(out, &d.left);
    for f in stats_fields(&d.stats) {
        put_u64(out, f);
    }
}

fn stats_fields(s: &EngineStats) -> [u64; 7] {
    [
        s.updates,
        s.one_swaps,
        s.two_swaps,
        s.perturbations,
        s.repairs,
        s.entry_hash_probes,
        s.hot_hash_probes,
    ]
}

/// Decodes one [`SolutionDelta`]; the whole buffer must be consumed.
pub fn decode_delta(buf: &[u8]) -> Result<SolutionDelta, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("delta")?;
    let d = take_delta(&mut r)?;
    r.finish()?;
    Ok(d)
}

/// Streaming counterpart of [`decode_delta`]: reads one
/// [`SolutionDelta`] body (no version word) from the cursor.
pub fn take_delta(r: &mut Reader<'_>) -> Result<SolutionDelta, WireError> {
    let entered = r.take_u32s("delta entered")?;
    let left = r.take_u32s("delta left")?;
    let mut f = [0u64; 7];
    for slot in f.iter_mut() {
        *slot = r.take_u64("delta stats")?;
    }
    Ok(SolutionDelta {
        entered,
        left,
        stats: EngineStats {
            updates: f[0],
            one_swaps: f[1],
            two_swaps: f[2],
            perturbations: f[3],
            repairs: f[4],
            entry_hash_probes: f[5],
            hot_hash_probes: f[6],
        },
    })
}

/// Encodes one sequenced log entry — what [`crate::SharedLog`] hands a
/// subscription stream (versioned).
pub fn encode_log_entry(seq: u64, d: &SolutionDelta, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    put_u64(out, seq);
    encode_delta_body(d, out);
}

/// Decodes one sequenced log entry; the whole buffer must be consumed.
pub fn decode_log_entry(buf: &[u8]) -> Result<(u64, SolutionDelta), WireError> {
    let mut r = Reader::new(buf);
    r.take_version("log entry")?;
    let seq = r.take_u64("log entry seq")?;
    let d = take_delta(&mut r)?;
    r.finish()?;
    Ok((seq, d))
}

// ---------------------------------------------------------------------------
// EngineError
// ---------------------------------------------------------------------------

/// Encodes one [`EngineError`] (versioned). The variant tag on the wire
/// is exactly [`EngineError::code`] (and [`GraphError::code`] for the
/// nested graph rejection), so the codes clients log are stable.
pub fn encode_engine_error(e: &EngineError, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_engine_error_body(e, out);
}

/// Appends one [`EngineError`] *without* a version word — for
/// composing into a larger versioned value.
pub fn encode_engine_error_body(e: &EngineError, out: &mut Vec<u8>) {
    put_u16(out, e.code());
    match e {
        EngineError::Graph(g) => {
            put_u16(out, g.code());
            match g {
                GraphError::VertexNotFound(v) | GraphError::SelfLoop(v) => put_u32(out, *v),
                GraphError::IdMismatch { expected, got } => {
                    put_u32(out, *expected);
                    put_u32(out, *got);
                }
                GraphError::Parse { line, message } => {
                    put_u64(out, *line as u64);
                    put_str(out, message);
                }
                GraphError::Io(msg) => put_str(out, msg),
            }
        }
        EngineError::DuplicateEdge(u, v)
        | EngineError::MissingEdge(u, v)
        | EngineError::NotIndependent(u, v) => {
            put_u32(out, *u);
            put_u32(out, *v);
        }
        EngineError::MissingGraph => {}
        EngineError::DeadInitial(v) => put_u32(out, *v),
        EngineError::BadK(k) => put_u64(out, *k as u64),
        EngineError::BadParameter(what) => put_str(out, what),
        EngineError::Batch { index, cause } => {
            put_u64(out, *index as u64);
            encode_engine_error_body(cause, out);
        }
    }
}

/// Decodes one [`EngineError`]; the whole buffer must be consumed.
///
/// `BadParameter` carries a `&'static str` in memory; a decoded message
/// is interned (capped at 256 bytes) so the round-trip preserves the
/// text. Unknown parameter strings leak a small allocation per distinct
/// message — acceptable on the client side, where servers are trusted.
pub fn decode_engine_error(buf: &[u8]) -> Result<EngineError, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("engine error")?;
    let e = take_engine_error(&mut r)?;
    r.finish()?;
    Ok(e)
}

/// Streaming counterpart of [`decode_engine_error`]: reads one
/// [`EngineError`] body (no version word) from the cursor.
pub fn take_engine_error(r: &mut Reader<'_>) -> Result<EngineError, WireError> {
    take_engine_error_at(r, 0)
}

fn take_engine_error_at(r: &mut Reader<'_>, depth: usize) -> Result<EngineError, WireError> {
    if depth > MAX_ERROR_DEPTH {
        return Err(WireError::Malformed("over-deep batch error nesting"));
    }
    match r.take_u16("engine error tag")? {
        1 => {
            let g = match r.take_u16("graph error tag")? {
                1 => GraphError::VertexNotFound(r.take_u32("graph error")?),
                2 => GraphError::SelfLoop(r.take_u32("graph error")?),
                3 => GraphError::IdMismatch {
                    expected: r.take_u32("graph error")?,
                    got: r.take_u32("graph error")?,
                },
                4 => GraphError::Parse {
                    line: usize::try_from(r.take_u64("graph error")?)
                        .map_err(|_| WireError::Malformed("parse line"))?,
                    message: r.take_str("graph error message")?,
                },
                5 => GraphError::Io(r.take_str("graph error message")?),
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "graph error",
                        tag,
                    })
                }
            };
            Ok(EngineError::Graph(g))
        }
        2 => Ok(EngineError::DuplicateEdge(
            r.take_u32("engine error")?,
            r.take_u32("engine error")?,
        )),
        3 => Ok(EngineError::MissingEdge(
            r.take_u32("engine error")?,
            r.take_u32("engine error")?,
        )),
        4 => Ok(EngineError::MissingGraph),
        5 => Ok(EngineError::NotIndependent(
            r.take_u32("engine error")?,
            r.take_u32("engine error")?,
        )),
        6 => Ok(EngineError::DeadInitial(r.take_u32("engine error")?)),
        7 => Ok(EngineError::BadK(
            usize::try_from(r.take_u64("engine error")?)
                .map_err(|_| WireError::Malformed("bad-k value"))?,
        )),
        8 => {
            let s = r.take_str("engine error parameter")?;
            Ok(EngineError::BadParameter(intern_parameter(&s)?))
        }
        9 => {
            let index = usize::try_from(r.take_u64("engine error")?)
                .map_err(|_| WireError::Malformed("batch index"))?;
            let cause = take_engine_error_at(r, depth + 1)?;
            Ok(EngineError::Batch {
                index,
                cause: Box::new(cause),
            })
        }
        tag => Err(WireError::UnknownTag {
            what: "engine error",
            tag,
        }),
    }
}

/// Interns a decoded `BadParameter` message as `&'static str`, capped so
/// a hostile stream cannot leak unbounded memory. Repeated messages hit
/// the intern table instead of leaking again.
fn intern_parameter(s: &str) -> Result<&'static str, WireError> {
    use std::collections::HashSet;
    use std::sync::Mutex;
    if s.len() > 256 {
        return Err(WireError::TooLong {
            what: "bad-parameter message",
            len: s.len() as u64,
        });
    }
    static TABLE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut g = TABLE.lock().unwrap();
    let table = g.get_or_insert_with(HashSet::new);
    if let Some(&known) = table.get(s) {
        return Ok(known);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    Ok(leaked)
}

// ---------------------------------------------------------------------------
// Ticket verdicts and ServiceStats
// ---------------------------------------------------------------------------

/// Encodes one ticketed verdict `Result<seq, EngineError>` (versioned) —
/// the wire mirror of the in-process [`crate::Ticket::wait`] outcome.
pub fn encode_verdict(v: &Result<u64, EngineError>, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_verdict_body(v, out);
}

/// Appends one verdict *without* a version word — for composing into a
/// larger versioned value.
pub fn encode_verdict_body(v: &Result<u64, EngineError>, out: &mut Vec<u8>) {
    match v {
        Ok(seq) => {
            out.push(1);
            put_u64(out, *seq);
        }
        Err(e) => {
            out.push(2);
            encode_engine_error_body(e, out);
        }
    }
}

/// Decodes one ticketed verdict; the whole buffer must be consumed.
pub fn decode_verdict(buf: &[u8]) -> Result<Result<u64, EngineError>, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("verdict")?;
    let v = take_verdict(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// Streaming counterpart of [`decode_verdict`]: reads one verdict body
/// (no version word) from the cursor.
pub fn take_verdict(r: &mut Reader<'_>) -> Result<Result<u64, EngineError>, WireError> {
    match r.take_u8("verdict tag")? {
        1 => Ok(Ok(r.take_u64("verdict seq")?)),
        2 => Ok(Err(take_engine_error(r)?)),
        tag => Err(WireError::UnknownTag {
            what: "verdict",
            tag: tag as u16,
        }),
    }
}

/// Encodes one [`ServiceStats`] snapshot (versioned).
pub fn encode_stats(s: &ServiceStats, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_stats_body(s, out);
}

/// Appends one [`ServiceStats`] snapshot *without* a version word — for
/// composing into a larger versioned value.
pub fn encode_stats_body(s: &ServiceStats, out: &mut Vec<u8>) {
    put_u64(out, s.queue_depth);
    put_u64(out, s.submitted);
    put_u64(out, s.applied);
    put_u64(out, s.rejected);
    put_u64(out, s.batches);
    out.push(HIST_BUCKETS as u8);
    for &b in &s.batch_hist {
        put_u64(out, b);
    }
    put_u64(out, s.head_seq);
    put_u64(out, s.readers as u64);
    put_u64(out, s.max_reader_lag);
    put_u64(out, s.resyncs);
    put_u64(out, s.desyncs);
    put_u64(out, s.connections);
    put_u64(out, s.sessions);
    put_u64(out, s.subscriptions);
    put_u64(out, s.shed);
    put_u64(out, s.max_sub_lag);
    put_u64(out, s.mean_sub_lag);
}

/// Decodes one [`ServiceStats`] snapshot; the whole buffer must be
/// consumed. A snapshot encoded with more histogram buckets than this
/// build knows folds the excess into the last (open-ended) bucket.
pub fn decode_stats(buf: &[u8]) -> Result<ServiceStats, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("stats")?;
    let s = take_stats(&mut r)?;
    r.finish()?;
    Ok(s)
}

/// Streaming counterpart of [`decode_stats`]: reads one
/// [`ServiceStats`] body (no version word) from the cursor.
pub fn take_stats(r: &mut Reader<'_>) -> Result<ServiceStats, WireError> {
    let mut s = ServiceStats {
        queue_depth: r.take_u64("stats")?,
        submitted: r.take_u64("stats")?,
        applied: r.take_u64("stats")?,
        rejected: r.take_u64("stats")?,
        batches: r.take_u64("stats")?,
        ..ServiceStats::default()
    };
    let buckets = r.take_u8("stats buckets")? as usize;
    for i in 0..buckets {
        let v = r.take_u64("stats histogram")?;
        // Saturate when folding a newer encoder's extra buckets into the
        // open-ended last one — corrupt inputs must not overflow.
        let slot = &mut s.batch_hist[i.min(HIST_BUCKETS - 1)];
        *slot = slot.saturating_add(v);
    }
    s.head_seq = r.take_u64("stats")?;
    s.readers =
        usize::try_from(r.take_u64("stats")?).map_err(|_| WireError::Malformed("reader count"))?;
    s.max_reader_lag = r.take_u64("stats")?;
    s.resyncs = r.take_u64("stats")?;
    s.desyncs = r.take_u64("stats")?;
    s.connections = r.take_u64("stats")?;
    s.sessions = r.take_u64("stats")?;
    s.subscriptions = r.take_u64("stats")?;
    s.shed = r.take_u64("stats")?;
    s.max_sub_lag = r.take_u64("stats")?;
    s.mean_sub_lag = r.take_u64("stats")?;
    Ok(s)
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

/// Encodes one [`MetricsSnapshot`] (versioned). The body carries the
/// snapshot's own schema version too, so the metrics schema can evolve
/// independently of the wire framing.
pub fn encode_metrics(m: &MetricsSnapshot, out: &mut Vec<u8>) {
    put_u16(out, WIRE_VERSION);
    encode_metrics_body(m, out);
}

/// Appends one [`MetricsSnapshot`] *without* a version word — for
/// composing into a larger versioned value (the network response
/// codec).
pub fn encode_metrics_body(m: &MetricsSnapshot, out: &mut Vec<u8>) {
    put_u32(out, m.version);
    put_u32(out, m.counters.len() as u32);
    for (name, v) in &m.counters {
        put_str(out, name);
        put_u64(out, *v);
    }
    put_u32(out, m.gauges.len() as u32);
    for (name, v) in &m.gauges {
        put_str(out, name);
        put_u64(out, *v);
    }
    put_u32(out, m.histograms.len() as u32);
    for (name, h) in &m.histograms {
        put_str(out, name);
        put_u64(out, h.count);
        put_u64(out, h.sum);
        put_u64(out, h.max);
        put_u32(out, h.buckets.len() as u32);
        for &(i, c) in &h.buckets {
            put_u32(out, i);
            put_u64(out, c);
        }
    }
    put_u32(out, m.events.len() as u32);
    for e in &m.events {
        put_u64(out, e.at_micros);
        put_str(out, &e.kind);
        put_str(out, &e.detail);
    }
    put_u64(out, m.events_dropped);
}

/// Decodes one [`MetricsSnapshot`]; the whole buffer must be consumed.
pub fn decode_metrics(buf: &[u8]) -> Result<MetricsSnapshot, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("metrics")?;
    let m = take_metrics(&mut r)?;
    r.finish()?;
    Ok(m)
}

/// Streaming counterpart of [`decode_metrics`]: reads one
/// [`MetricsSnapshot`] body (no version word) from the cursor.
pub fn take_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let mut m = MetricsSnapshot {
        version: r.take_u32("metrics version")?,
        ..MetricsSnapshot::default()
    };
    // Element byte floors keep a hostile length prefix from staging an
    // allocation the buffer cannot back.
    let n = r.take_len(12, "metrics counters")?;
    for _ in 0..n {
        let name = r.take_str("counter name")?;
        m.counters.push((name, r.take_u64("counter value")?));
    }
    let n = r.take_len(12, "metrics gauges")?;
    for _ in 0..n {
        let name = r.take_str("gauge name")?;
        m.gauges.push((name, r.take_u64("gauge value")?));
    }
    let n = r.take_len(32, "metrics histograms")?;
    for _ in 0..n {
        let name = r.take_str("histogram name")?;
        let mut h = HistogramSnapshot {
            count: r.take_u64("histogram count")?,
            sum: r.take_u64("histogram sum")?,
            max: r.take_u64("histogram max")?,
            buckets: Vec::new(),
        };
        let b = r.take_len(12, "histogram buckets")?;
        for _ in 0..b {
            let i = r.take_u32("bucket index")?;
            if i as usize >= dynamis_obs::NUM_BUCKETS {
                return Err(WireError::Malformed("bucket index"));
            }
            h.buckets.push((i, r.take_u64("bucket count")?));
        }
        m.histograms.push((name, h));
    }
    let n = r.take_len(16, "metrics events")?;
    for _ in 0..n {
        m.events.push(Event {
            at_micros: r.take_u64("event time")?,
            kind: r.take_str("event kind")?,
            detail: r.take_str("event detail")?,
        });
    }
    m.events_dropped = r.take_u64("events dropped")?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_version_is_a_typed_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_delta(&SolutionDelta::default(), &mut buf);
        buf[0] = (WIRE_VERSION + 1) as u8; // bump the version word
        assert_eq!(
            decode_delta(&buf),
            Err(WireError::UnsupportedVersion {
                got: WIRE_VERSION + 1,
                supported: WIRE_VERSION
            })
        );
    }

    #[test]
    fn hostile_length_prefix_fails_before_allocating() {
        // A delta claiming u32::MAX entered vertices with 4 bytes of
        // payload: the length check must fail on the byte budget.
        let mut buf = Vec::new();
        put_u16(&mut buf, WIRE_VERSION);
        put_u32(&mut buf, u32::MAX);
        put_u32(&mut buf, 7);
        match decode_delta(&buf) {
            Err(WireError::TooLong { len, .. }) => assert_eq!(len, u32::MAX as u64),
            other => panic!("expected TooLong, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_update(&Update::RemoveVertex(3), &mut buf);
        buf.push(0xFF);
        assert_eq!(decode_update(&buf), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_parameter_messages_intern_once() {
        let e = EngineError::BadParameter("restart interval must be positive");
        let mut buf = Vec::new();
        encode_engine_error(&e, &mut buf);
        let a = decode_engine_error(&buf).unwrap();
        let b = decode_engine_error(&buf).unwrap();
        assert_eq!(a, e);
        let (EngineError::BadParameter(pa), EngineError::BadParameter(pb)) = (&a, &b) else {
            panic!("wrong variant");
        };
        assert_eq!(pa.as_ptr(), pb.as_ptr(), "second decode hits the table");
    }
}
