//! The sequenced delta log: the broadcast channel between the writer
//! thread and every reader.
//!
//! The writer publishes each applied batch's net [`SolutionDelta`] as
//! an `Arc`-shared, sequence-numbered entry. Readers catch up lazily:
//! they clone the `Arc`s of the entries they have not seen (a short
//! critical section on the log mutex — **never** any engine state) and
//! apply them to their private [`SolutionMirror`] outside the lock.
//!
//! The log is bounded: when it outgrows its window, the oldest entries
//! are folded into a **checkpoint** mirror. A reader that fell behind
//! the window re-seeds from the checkpoint (a clone) and replays the
//! remaining entries — so slow readers cost a resync, never unbounded
//! log growth, and a brand-new reader is just a reader at sequence 0
//! resyncing like any other.

use dynamis_core::{MirrorError, SolutionDelta, SolutionMirror};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One broadcast entry: the net solution change of one applied batch.
#[derive(Debug)]
pub struct SeqEntry {
    /// Sequence number of this entry (1-based; `seq` is the log head
    /// right after it was published).
    pub seq: u64,
    /// The net solution change it broadcasts.
    pub delta: SolutionDelta,
}

/// What [`SharedLog::tail_after`] found for a consumer at a given
/// sequence number — the primitive a subscription stream is built on.
#[derive(Debug)]
pub enum LogTail {
    /// The consumer is at the head; nothing new.
    UpToDate,
    /// The next entries, oldest first, contiguous from `seq + 1`.
    Entries(Vec<Arc<SeqEntry>>),
    /// The consumer fell behind the retained window: it must re-seed
    /// from this checkpoint (the full membership as of `seq`) and ask
    /// again from there.
    Checkpoint {
        /// Sequence number the checkpoint covers up to (inclusive).
        seq: u64,
        /// Sorted solution membership at that sequence number.
        solution: Vec<u32>,
    },
}

#[derive(Debug, Default)]
struct LogInner {
    /// Checkpoint covering sequences `..= base_seq`.
    base: SolutionMirror,
    base_seq: u64,
    /// Entries `base_seq + 1 ..= head`, oldest first.
    entries: VecDeque<Arc<SeqEntry>>,
    head: u64,
}

/// What one [`SharedLog::catch_up`] call did.
#[derive(Debug, Default)]
pub(crate) struct CatchUp {
    /// The reader's new sequence number.
    pub seq: u64,
    /// The reader re-seeded from the checkpoint (fell behind the
    /// window, was brand new, or recovered from a desync).
    pub resynced: bool,
    /// The mirror refused an entry (recovered via resync). Impossible
    /// by construction — surfaced for observability, typed.
    pub desync: Option<MirrorError>,
}

/// The shared, bounded, sequence-numbered broadcast log.
///
/// This is the transport between one delta producer and any number of
/// mirror-holding consumers. [`crate::MisService`] owns one for the
/// whole engine; the sharded layer (`dynamis-shard`) gives each shard
/// its own, published from that shard's writer thread, and merges them
/// behind a [`crate::ShardedReader`].
#[derive(Debug)]
pub struct SharedLog {
    inner: Mutex<LogInner>,
    /// Maximum retained entries before folding into the checkpoint.
    window: usize,
    /// Mirror of `inner.head`, updated under the lock: lets a
    /// caught-up reader answer "anything new?" with one atomic load —
    /// the query fast path takes **no lock at all**.
    head: AtomicU64,
}

impl SharedLog {
    /// An empty log retaining at most `window` entries before folding
    /// the oldest into its checkpoint.
    pub fn new(window: usize) -> Self {
        SharedLog {
            inner: Mutex::new(LogInner::default()),
            window: window.max(1),
            head: AtomicU64::new(0),
        }
    }

    /// Appends one delta as the next sequence number and folds the
    /// overflow into the checkpoint. Writer-side only. Empty deltas are
    /// legal entries: multi-log producers publish one per epoch on every
    /// log so consumers can align heads into a consistent cut.
    pub fn publish(&self, delta: SolutionDelta) -> u64 {
        let mut g = self.inner.lock().unwrap();
        g.head += 1;
        let seq = g.head;
        g.entries.push_back(Arc::new(SeqEntry { seq, delta }));
        while g.entries.len() > self.window {
            let oldest = g.entries.pop_front().unwrap();
            g.base
                .apply(&oldest.delta)
                .expect("log entries are sequential and exact");
            g.base_seq = oldest.seq;
        }
        // Published under the lock: a reader that observes the new head
        // and then takes the lock is guaranteed to find the entry.
        self.head.store(seq, Ordering::Release);
        seq
    }

    /// Newest published sequence number (lock-free).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Re-bases a **virgin** log at `seq` with `solution` as its base
    /// checkpoint — how a restarted service resumes its broadcast
    /// stream after crash recovery (`dynamis-durable`). Every consumer
    /// at or below `seq` (any subscriber from the previous life, and
    /// every brand-new reader at 0) re-seeds from this checkpoint; the
    /// next published entry continues at `seq + 1`.
    ///
    /// # Panics
    ///
    /// If anything was already published — re-basing a live log would
    /// yank history out from under its readers.
    pub fn install_checkpoint(&self, seq: u64, solution: &[u32]) {
        let mut g = self.inner.lock().unwrap();
        assert!(
            g.head == 0 && g.entries.is_empty(),
            "install_checkpoint requires a virgin log"
        );
        g.base = SolutionMirror::from_solution(solution);
        g.base_seq = seq;
        g.head = seq;
        self.head.store(seq, Ordering::Release);
    }

    /// Maximum entries retained before the oldest fold into the base
    /// checkpoint — the catch-up horizon a straggling consumer has.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The log's base checkpoint: the oldest state it can serve — the
    /// fold of everything that aged out of the window, or the installed
    /// recovery checkpoint on a restarted service. The sequence number
    /// is in *broadcast* numbering, so it is a valid
    /// `tail_after`/`Subscribe` resume point: a consumer seeded from
    /// this state streams entries from `seq + 1` with no gap. This is
    /// what a snapshot cold-start serves instead of replaying from 0.
    pub fn base_checkpoint(&self) -> (u64, Vec<u32>) {
        let g = self.inner.lock().unwrap();
        (g.base_seq, g.base.solution())
    }

    /// Full membership at the current head: the base checkpoint with
    /// every retained entry folded in. O(window) — meant for rare
    /// reseeds of a hopeless straggler, not per-query reads (those go
    /// through a `ReaderHandle`). The lock is held only to clone the
    /// base and the entry `Arc`s; folding happens outside it.
    pub fn snapshot_at_head(&self) -> (u64, Vec<u32>) {
        let (mut m, head, entries) = {
            let g = self.inner.lock().unwrap();
            (
                g.base.clone(),
                g.head,
                g.entries.iter().cloned().collect::<Vec<_>>(),
            )
        };
        for e in &entries {
            m.apply(&e.delta)
                .expect("log entries are sequential and exact");
        }
        (head, m.solution())
    }

    /// The entries a consumer at `seq` has not yet seen, up to `max` of
    /// them — or the checkpoint, if `seq` fell behind the retained
    /// window. This is the subscription-stream primitive: a network
    /// front end calls it per subscriber, serializes what comes back,
    /// and a remote mirror replays exactly what an in-process
    /// [`crate::ReaderHandle`] would. A caught-up consumer costs one
    /// atomic load; the lock is held only to clone `Arc`s (or the
    /// checkpoint, on fall-behind).
    pub fn tail_after(&self, seq: u64, max: usize) -> LogTail {
        if self.head.load(Ordering::Acquire) <= seq {
            return LogTail::UpToDate;
        }
        let g = self.inner.lock().unwrap();
        if g.head <= seq {
            return LogTail::UpToDate;
        }
        if seq < g.base_seq {
            return LogTail::Checkpoint {
                seq: g.base_seq,
                solution: g.base.solution(),
            };
        }
        let skip = (seq - g.base_seq) as usize;
        LogTail::Entries(
            g.entries
                .iter()
                .skip(skip)
                .take(max.max(1))
                .cloned()
                .collect(),
        )
    }

    /// Advances `mirror` (currently at `seq`) to the log head.
    ///
    /// A caught-up reader returns after one atomic load, without
    /// touching the lock. `scratch` is the reader's reusable `Arc`
    /// buffer — in steady state no allocation happens here. The lock is
    /// held only while cloning `Arc`s (or the checkpoint, on resync);
    /// deltas are applied outside it.
    pub(crate) fn catch_up(
        &self,
        mirror: &mut SolutionMirror,
        seq: u64,
        scratch: &mut Vec<Arc<SeqEntry>>,
    ) -> CatchUp {
        self.catch_up_to(mirror, seq, u64::MAX, scratch)
    }

    /// Like [`SharedLog::catch_up`] but stops at `target` instead of the
    /// head. Multi-log consumers use it to advance every per-shard
    /// mirror to the same epoch — the consistent cut — even while some
    /// logs have already published past it. A `target` at or below the
    /// checkpoint still resyncs (the checkpoint is the oldest state the
    /// log can serve), so the reported `seq` may exceed `target` after a
    /// fall-behind.
    pub(crate) fn catch_up_to(
        &self,
        mirror: &mut SolutionMirror,
        mut seq: u64,
        target: u64,
        scratch: &mut Vec<Arc<SeqEntry>>,
    ) -> CatchUp {
        let mut out = CatchUp::default();
        if self.head.load(Ordering::Acquire).min(target) <= seq {
            out.seq = seq;
            return out;
        }
        // Two passes at most: a desync (impossible by construction)
        // triggers one checkpoint re-seed and one replay.
        for attempt in 0..2 {
            scratch.clear();
            {
                let g = self.inner.lock().unwrap();
                if seq >= g.head.min(target) && attempt == 0 {
                    out.seq = seq;
                    return out;
                }
                if seq < g.base_seq || attempt > 0 {
                    *mirror = g.base.clone();
                    seq = g.base_seq;
                    out.resynced = true;
                }
                let skip = (seq - g.base_seq) as usize;
                scratch.extend(
                    g.entries
                        .iter()
                        .skip(skip)
                        .take_while(|e| e.seq <= target)
                        .cloned(),
                );
            }
            let mut failed = false;
            for e in scratch.iter() {
                debug_assert_eq!(e.seq, seq + 1, "log entries must be sequential");
                match mirror.apply(&e.delta) {
                    Ok(()) => seq = e.seq,
                    Err(err) => {
                        out.desync = Some(err);
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                break;
            }
        }
        out.seq = seq;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_core::EngineStats;

    fn delta(entered: Vec<u32>, left: Vec<u32>) -> SolutionDelta {
        SolutionDelta {
            entered,
            left,
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn readers_catch_up_incrementally() {
        let log = SharedLog::new(16);
        assert_eq!(log.publish(delta(vec![1, 2], vec![])), 1);
        assert_eq!(log.publish(delta(vec![3], vec![1])), 2);
        let mut m = SolutionMirror::new();
        let mut scratch = Vec::new();
        let r = log.catch_up(&mut m, 0, &mut scratch);
        assert_eq!(r.seq, 2);
        assert!(!r.resynced && r.desync.is_none());
        assert_eq!(m.solution(), vec![2, 3]);
        // Already caught up: a no-op.
        let r = log.catch_up(&mut m, 2, &mut scratch);
        assert_eq!(r.seq, 2);
        // New entries continue from where the reader stands.
        log.publish(delta(vec![7], vec![]));
        let r = log.catch_up(&mut m, 2, &mut scratch);
        assert_eq!(r.seq, 3);
        assert_eq!(m.solution(), vec![2, 3, 7]);
    }

    #[test]
    fn lagging_reader_resyncs_from_checkpoint() {
        let log = SharedLog::new(2);
        log.publish(delta(vec![1], vec![]));
        log.publish(delta(vec![2], vec![]));
        log.publish(delta(vec![3], vec![1])); // folds seq 1 into the base
        log.publish(delta(vec![4], vec![])); // folds seq 2
        let mut m = SolutionMirror::new();
        let mut scratch = Vec::new();
        let r = log.catch_up(&mut m, 0, &mut scratch);
        assert_eq!(r.seq, 4);
        assert!(r.resynced, "seq 0 is behind the retained window");
        assert!(r.desync.is_none());
        assert_eq!(m.solution(), vec![2, 3, 4]);
        assert_eq!(log.head(), 4);
    }

    #[test]
    fn tail_after_serves_entries_or_checkpoint() {
        let log = SharedLog::new(2);
        assert!(matches!(log.tail_after(0, 64), LogTail::UpToDate));
        log.publish(delta(vec![1], vec![]));
        log.publish(delta(vec![2], vec![]));
        // Caught-up consumer: one atomic load, nothing returned.
        assert!(matches!(log.tail_after(2, 64), LogTail::UpToDate));
        // In-window consumer: contiguous entries from seq + 1, capped.
        match log.tail_after(0, 1) {
            LogTail::Entries(es) => {
                assert_eq!(es.len(), 1);
                assert_eq!(es[0].seq, 1);
            }
            other => panic!("expected entries, got {other:?}"),
        }
        // Fold seq 1 and 2 into the checkpoint.
        log.publish(delta(vec![3], vec![1]));
        log.publish(delta(vec![4], vec![]));
        match log.tail_after(1, 64) {
            LogTail::Checkpoint { seq, solution } => {
                assert_eq!(seq, 2);
                assert_eq!(solution, vec![1, 2]);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        // From the checkpoint seq, plain entries again.
        match log.tail_after(2, 64) {
            LogTail::Entries(es) => {
                assert_eq!(es.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
            }
            other => panic!("expected entries, got {other:?}"),
        }
    }

    #[test]
    fn desynced_mirror_self_heals() {
        let log = SharedLog::new(16);
        log.publish(delta(vec![1], vec![]));
        log.publish(delta(vec![2], vec![]));
        // A mirror claiming seq 1 but already holding vertex 2: applying
        // seq 2 refuses; the catch-up re-seeds from the checkpoint.
        let mut m = SolutionMirror::from_solution(&[1, 2]);
        let mut scratch = Vec::new();
        let r = log.catch_up(&mut m, 1, &mut scratch);
        assert_eq!(r.seq, 2);
        assert!(r.resynced);
        let err = r.desync.expect("the refusal is reported, typed");
        assert_eq!(err.vertex(), 2);
        assert_eq!(m.solution(), vec![1, 2], "healed to the true state");
    }
}
