//! Property tests for the versioned wire codec: every value
//! round-trips bit-exactly, and *no* byte-level corruption — mutation,
//! truncation, or garbage — can make a decoder panic or allocate
//! unboundedly. Decoding is total: it returns the value or a typed
//! [`WireError`].

use dynamis_core::{EngineError, EngineStats, SolutionDelta};
use dynamis_graph::{GraphError, Update};
use dynamis_obs::{Event, HistogramSnapshot, MetricsSnapshot, NUM_BUCKETS, SNAPSHOT_VERSION};
use dynamis_serve::wire::{
    decode_delta, decode_engine_error, decode_log_entry, decode_metrics, decode_stats,
    decode_update, decode_verdict, encode_delta, encode_engine_error, encode_log_entry,
    encode_metrics, encode_stats, encode_update, encode_verdict, WireError,
};
use dynamis_serve::ServiceStats;
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn arb_update(rng: &mut SmallRng) -> Update {
    match rng.gen_range(0..4u32) {
        0 => Update::InsertEdge(rng.gen_range(0..1000u32), rng.gen_range(0..1000u32)),
        1 => Update::RemoveEdge(rng.gen_range(0..1000u32), rng.gen_range(0..1000u32)),
        2 => Update::InsertVertex {
            id: rng.gen_range(0..1000u32),
            neighbors: (0..rng.gen_range(0..8usize))
                .map(|_| rng.gen_range(0..1000u32))
                .collect(),
        },
        _ => Update::RemoveVertex(rng.gen_range(0..1000u32)),
    }
}

fn arb_delta(rng: &mut SmallRng) -> SolutionDelta {
    SolutionDelta {
        entered: (0..rng.gen_range(0..16usize)).map(|_| rng.gen()).collect(),
        left: (0..rng.gen_range(0..16usize)).map(|_| rng.gen()).collect(),
        stats: EngineStats {
            updates: rng.gen(),
            one_swaps: rng.gen(),
            two_swaps: rng.gen(),
            perturbations: rng.gen(),
            repairs: rng.gen(),
            entry_hash_probes: rng.gen(),
            hot_hash_probes: rng.gen(),
        },
    }
}

fn arb_graph_error(rng: &mut SmallRng) -> GraphError {
    match rng.gen_range(0..5u32) {
        0 => GraphError::VertexNotFound(rng.gen()),
        1 => GraphError::SelfLoop(rng.gen()),
        2 => GraphError::IdMismatch {
            expected: rng.gen(),
            got: rng.gen(),
        },
        3 => GraphError::Parse {
            line: rng.gen_range(0..1_000_000usize),
            message: format!("token {}", rng.gen_range(0..100u32)),
        },
        _ => GraphError::Io(format!("io case {}", rng.gen_range(0..100u32))),
    }
}

fn arb_engine_error(rng: &mut SmallRng, depth: usize) -> EngineError {
    // `BadParameter` carries &'static str; draw from a fixed pool (the
    // decoder interns, so arbitrary strings round-trip too — see the
    // unit test in wire.rs — but the pool keeps generation allocation-free).
    const PARAMS: [&str; 3] = ["interval", "window", "threshold"];
    let top = if depth == 0 { 9 } else { 8 };
    match rng.gen_range(0..top) {
        0 => EngineError::Graph(arb_graph_error(rng)),
        1 => EngineError::DuplicateEdge(rng.gen(), rng.gen()),
        2 => EngineError::MissingEdge(rng.gen(), rng.gen()),
        3 => EngineError::MissingGraph,
        4 => EngineError::NotIndependent(rng.gen(), rng.gen()),
        5 => EngineError::DeadInitial(rng.gen()),
        6 => EngineError::BadK(rng.gen_range(0..100usize)),
        7 => EngineError::BadParameter(PARAMS[rng.gen_range(0..PARAMS.len())]),
        _ => EngineError::Batch {
            index: rng.gen_range(0..10_000usize),
            cause: Box::new(arb_engine_error(rng, depth + 1)),
        },
    }
}

fn arb_stats(rng: &mut SmallRng) -> ServiceStats {
    let mut s = ServiceStats {
        queue_depth: rng.gen(),
        submitted: rng.gen(),
        applied: rng.gen(),
        rejected: rng.gen(),
        batches: rng.gen(),
        head_seq: rng.gen(),
        readers: rng.gen_range(0..1000usize),
        max_reader_lag: rng.gen(),
        resyncs: rng.gen(),
        desyncs: rng.gen(),
        connections: rng.gen(),
        sessions: rng.gen(),
        subscriptions: rng.gen(),
        shed: rng.gen(),
        max_sub_lag: rng.gen(),
        mean_sub_lag: rng.gen(),
        ..ServiceStats::default()
    };
    for b in s.batch_hist.iter_mut() {
        *b = rng.gen();
    }
    s
}

fn arb_name(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(1..24usize);
    (0..n)
        .map(|_| {
            if rng.gen_range(0..8u32) == 0 {
                '_'
            } else {
                (b'a' + rng.gen_range(0..26u32) as u8) as char
            }
        })
        .collect()
}

fn arb_metrics(rng: &mut SmallRng) -> MetricsSnapshot {
    let mut m = MetricsSnapshot {
        version: SNAPSHOT_VERSION,
        events_dropped: rng.gen(),
        ..MetricsSnapshot::default()
    };
    for _ in 0..rng.gen_range(0..6usize) {
        m.counters.push((arb_name(rng), rng.gen()));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        m.gauges.push((arb_name(rng), rng.gen()));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        let buckets = (0..rng.gen_range(0..8usize))
            .map(|_| (rng.gen_range(0..NUM_BUCKETS as u32), rng.gen()))
            .collect();
        m.histograms.push((
            arb_name(rng),
            HistogramSnapshot {
                count: rng.gen(),
                sum: rng.gen(),
                max: rng.gen(),
                buckets,
            },
        ));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        m.events.push(Event {
            at_micros: rng.gen(),
            kind: arb_name(rng),
            detail: format!("detail {} \"quoted\"\n", rng.gen_range(0..100u32)),
        });
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every update round-trips bit-exactly.
    #[test]
    fn update_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let u = arb_update(&mut rng);
        let mut buf = Vec::new();
        encode_update(&u, &mut buf);
        prop_assert_eq!(decode_update(&buf).unwrap(), u);
    }

    /// Every delta round-trips, including all seven stats counters.
    #[test]
    fn delta_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = arb_delta(&mut rng);
        let mut buf = Vec::new();
        encode_delta(&d, &mut buf);
        prop_assert_eq!(decode_delta(&buf).unwrap(), d);
    }

    /// Sequenced log entries round-trip (seq + delta).
    #[test]
    fn log_entry_round_trips(seed in 0u64..u64::MAX, seq in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = arb_delta(&mut rng);
        let mut buf = Vec::new();
        encode_log_entry(seq, &d, &mut buf);
        prop_assert_eq!(decode_log_entry(&buf).unwrap(), (seq, d));
    }

    /// Every engine error (including nested batch causes) round-trips.
    #[test]
    fn engine_error_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = arb_engine_error(&mut rng, 0);
        let mut buf = Vec::new();
        encode_engine_error(&e, &mut buf);
        prop_assert_eq!(decode_engine_error(&buf).unwrap(), e);
    }

    /// Ticketed verdicts round-trip on both arms.
    #[test]
    fn verdict_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v: Result<u64, EngineError> = if rng.gen_range(0..2u32) == 0 {
            Ok(rng.gen())
        } else {
            Err(arb_engine_error(&mut rng, 0))
        };
        let mut buf = Vec::new();
        encode_verdict(&v, &mut buf);
        prop_assert_eq!(decode_verdict(&buf).unwrap(), v);
    }

    /// Stats snapshots round-trip, histogram included.
    #[test]
    fn stats_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = arb_stats(&mut rng);
        let mut buf = Vec::new();
        encode_stats(&s, &mut buf);
        prop_assert_eq!(decode_stats(&buf).unwrap(), s);
    }

    /// Telemetry snapshots round-trip through the wire codec: the exact
    /// same `MetricsSnapshot` schema serves the in-process API, the
    /// wire call, and the text encoders.
    #[test]
    fn metrics_round_trip(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = arb_metrics(&mut rng);
        let mut buf = Vec::new();
        encode_metrics(&m, &mut buf);
        prop_assert_eq!(decode_metrics(&buf).unwrap(), m);
    }

    /// Fuzz: decoding any prefix of a valid encoding either succeeds (a
    /// shorter valid value is possible only for the full buffer) or
    /// returns a typed error — never panics. Truncations strictly inside
    /// the value must NOT decode successfully.
    #[test]
    fn truncation_is_a_typed_error(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = arb_delta(&mut rng);
        let mut buf = Vec::new();
        encode_delta(&d, &mut buf);
        for cut in 0..buf.len() {
            match decode_delta(&buf[..cut]) {
                Err(_) => {}
                Ok(v) => {
                    return Err(TestCaseError::fail(format!(
                        "truncation at {cut}/{} decoded as {v:?}",
                        buf.len()
                    )))
                }
            }
        }
        prop_assert_eq!(decode_delta(&buf).unwrap(), d);
    }

    /// Fuzz: arbitrary byte mutations of a valid encoding either decode
    /// to *some* value or fail with a typed error — never a panic, and
    /// never an allocation larger than the buffer could justify (the
    /// codec validates lengths against remaining bytes first).
    #[test]
    fn mutation_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut buf = Vec::new();
        match rng.gen_range(0..5u32) {
            0 => encode_delta(&arb_delta(&mut rng), &mut buf),
            1 => encode_update(&arb_update(&mut rng), &mut buf),
            2 => encode_engine_error(&arb_engine_error(&mut rng, 0), &mut buf),
            3 => encode_metrics(&arb_metrics(&mut rng), &mut buf),
            _ => encode_stats(&arb_stats(&mut rng), &mut buf),
        }
        for _ in 0..rng.gen_range(1..8usize) {
            let i = rng.gen_range(0..buf.len());
            buf[i] = rng.gen_range(0..256u32) as u8;
        }
        let _ = decode_delta(&buf);
        let _ = decode_update(&buf);
        let _ = decode_engine_error(&buf);
        let _ = decode_stats(&buf);
        let _ = decode_verdict(&buf);
        let _ = decode_log_entry(&buf);
        let _ = decode_metrics(&buf);
    }

    /// Fuzz: pure garbage decodes to a typed error, never a panic.
    #[test]
    fn garbage_never_panics(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        let _ = decode_delta(&buf);
        let _ = decode_update(&buf);
        let _ = decode_engine_error(&buf);
        let _ = decode_stats(&buf);
        let _ = decode_verdict(&buf);
        let _ = decode_log_entry(&buf);
        let _ = decode_metrics(&buf);
    }
}

/// A decoder built for version N must refuse version N+1 for *every*
/// value kind — typed, not a misparse.
#[test]
fn newer_versions_are_refused_everywhere() {
    let mut buf = Vec::new();
    encode_update(&Update::RemoveVertex(1), &mut buf);
    let v = u16::from_le_bytes([buf[0], buf[1]]) + 1;
    buf[..2].copy_from_slice(&v.to_le_bytes());
    assert!(matches!(
        decode_update(&buf),
        Err(WireError::UnsupportedVersion { .. })
    ));

    buf.clear();
    encode_verdict(&Ok(7), &mut buf);
    buf[..2].copy_from_slice(&v.to_le_bytes());
    assert!(matches!(
        decode_verdict(&buf),
        Err(WireError::UnsupportedVersion { .. })
    ));

    buf.clear();
    encode_stats(&ServiceStats::default(), &mut buf);
    buf[..2].copy_from_slice(&v.to_le_bytes());
    assert!(matches!(
        decode_stats(&buf),
        Err(WireError::UnsupportedVersion { .. })
    ));
}
