//! Concurrency contract of the serving layer.
//!
//! * **Convergence**: with a writer thread and several reader threads
//!   hammering queries through thousands of mixed updates, every
//!   reader's mirror equals the engine's `solution()` at quiesce —
//!   readers only ever consumed broadcast deltas (there is no engine
//!   lock to block on; the engine lives privately inside the writer).
//! * **Flush on shutdown**: everything submitted before `shutdown()`
//!   is applied and broadcast.
//! * **Backpressure**: a full bounded queue fails `try_submit`
//!   deterministically (pinned with a gated engine, not with timing).
//! * **Typed rejections**: invalid updates inside a burst reach their
//!   tickets as `EngineError`s while the rest of the burst applies.

use dynamis_core::{DynamicMis, EngineBuilder, EngineError, SolutionDelta};
use dynamis_gen::adversarial::{AdversarialConfig, AdversarialStream};
use dynamis_gen::uniform::gnm;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, Update};
use dynamis_serve::{MisService, ServeConfig, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Scale knob: thousands of updates, kept debug-buildable; CI runs
/// this same test under `--release` where it is ~20× faster.
const STRESS_UPDATES: usize = 4000;

#[test]
fn stress_multithreaded_readers_converge_at_quiesce() {
    let g = gnm(150, 400, 42);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 7).take_updates(STRESS_UPDATES);
    let (service, mut reader0) = MisService::spawn(
        EngineBuilder::on(g).k(2),
        ServeConfig {
            queue_updates: 64,
            burst: 128,
            log_window: 64, // small window: force checkpoint resyncs too
            first_seq: 0,
        },
    )
    .unwrap();

    // Two dedicated reader threads querying as fast as they can.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_threads: Vec<_> = (0..2)
        .map(|_| {
            let mut r = service.reader();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut queries = 0u64;
                let mut members = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if r.contains((queries % 512) as u32) {
                        members += 1;
                    }
                    let _ = r.len();
                    queries += 2;
                }
                (r, queries, members)
            })
        })
        .collect();

    // Feeder: mixed valid updates, every 50th doubled with an invalid
    // one whose ticket must carry the typed rejection.
    let mut tickets = Vec::new();
    let mut invalid = 0u64;
    for (i, u) in ups.iter().enumerate() {
        if i % 50 == 0 {
            let t = service.submit(Update::RemoveVertex(9_999)).unwrap();
            tickets.push((t, true));
            invalid += 1;
        }
        if i % 16 == 0 {
            let t = service.submit(u.clone()).unwrap();
            tickets.push((t, false));
        } else {
            service.submit_detached(u.clone()).unwrap();
        }
    }
    for (t, expect_reject) in tickets {
        match t.wait() {
            Ok(seq) => assert!(!expect_reject, "invalid update got applied at seq {seq}"),
            Err(ServeError::Rejected(e)) => {
                assert!(expect_reject, "valid update rejected: {e}")
            }
            Err(other) => panic!("unexpected ticket failure: {other}"),
        }
    }

    let report = service.shutdown();
    stop.store(true, Ordering::Relaxed);

    assert_eq!(report.stats.applied, STRESS_UPDATES as u64);
    assert_eq!(report.stats.rejected, invalid);
    assert_eq!(report.stats.queue_depth, 0, "shutdown flushed the queue");
    assert!(report.stats.desyncs == 0, "broadcast must never desync");

    // Every reader — the spawn-time one and the per-thread forks —
    // lands exactly on the engine's final solution.
    assert_eq!(reader0.snapshot(), report.solution);
    assert_eq!(reader0.seq(), report.head_seq);
    for h in reader_threads {
        let (mut r, queries, _members) = h.join().unwrap();
        assert!(queries > 0);
        assert_eq!(r.snapshot(), report.solution);
        assert!(r.last_desync().is_none());
    }
}

#[test]
fn shutdown_flushes_everything_already_queued() {
    let g = gnm(60, 150, 3);
    let ups = UpdateStream::new(&g, StreamConfig::edges_only(), 5).take_updates(1500);
    let (service, mut reader) = MisService::spawn(
        EngineBuilder::on(g),
        ServeConfig {
            queue_updates: 4096,
            burst: 64,
            log_window: 128,
            first_seq: 0,
        },
    )
    .unwrap();
    // Everything fire-and-forget; nothing waited on…
    for u in &ups {
        service.submit_detached(u.clone()).unwrap();
    }
    // …yet shutdown must apply the whole queue before returning.
    let report = service.shutdown();
    assert_eq!(report.stats.submitted, 1500);
    assert_eq!(report.stats.applied, 1500);
    assert_eq!(report.stats.rejected, 0);
    assert_eq!(report.stats.queue_depth, 0);
    assert_eq!(reader.snapshot(), report.solution);
    // The queue was saturated relative to the writer: adaptive batching
    // must have merged bursts (strictly fewer batches than updates).
    assert!(
        report.stats.batches < 1500,
        "expected merged batches, got {}",
        report.stats.batches
    );
}

/// An engine wrapper whose batch application blocks on a gate — makes
/// queue-full states deterministic instead of timing-dependent.
struct GatedEngine {
    inner: Box<dyn DynamicMis>,
    gate: Arc<Gate>,
}

#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    open: bool,
    entered: u64,
}

impl Gate {
    /// Writer side: announce entry, then wait for the gate to open.
    fn pass(&self) {
        let mut st = self.state.lock().unwrap();
        st.entered += 1;
        self.cv.notify_all();
        while !st.open {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Test side: wait until the writer is provably inside `pass`.
    fn wait_entered(&self, n: u64) {
        let mut st = self.state.lock().unwrap();
        while st.entered < n {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn open(&self) {
        let mut st = self.state.lock().unwrap();
        st.open = true;
        self.cv.notify_all();
    }
}

impl DynamicMis for GatedEngine {
    fn name(&self) -> &'static str {
        "GatedEngine"
    }
    fn graph(&self) -> &DynamicGraph {
        self.inner.graph()
    }
    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        self.gate.pass();
        self.inner.try_apply(u)
    }
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        self.gate.pass();
        self.inner.try_apply_batch(updates)
    }
    fn drain_delta(&mut self) -> SolutionDelta {
        self.inner.drain_delta()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn solution(&self) -> Vec<u32> {
        self.inner.solution()
    }
    fn contains(&self, v: u32) -> bool {
        self.inner.contains(v)
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[test]
fn bounded_queue_applies_backpressure() {
    let gate = Arc::new(Gate::default());
    let factory_gate = Arc::clone(&gate);
    let (service, _reader) = MisService::spawn_with(
        move || {
            let g = DynamicGraph::from_edges(6, &[(0, 1), (2, 3)]);
            Ok(Box::new(GatedEngine {
                inner: EngineBuilder::on(g).build()?,
                gate: factory_gate,
            }))
        },
        ServeConfig {
            queue_updates: 1,
            burst: 1,
            log_window: 16,
            first_seq: 0,
        },
    )
    .unwrap();

    // First submission: the writer dequeues it and blocks inside the
    // engine (provably — we wait for the gate entry).
    let t1 = service.submit(Update::InsertEdge(0, 2)).unwrap();
    gate.wait_entered(1);
    // Second submission parks in the queue's single slot.
    let t2 = service.submit(Update::InsertEdge(1, 3)).unwrap();
    // The queue is now full: the non-blocking path must say so.
    match service.try_submit(Update::InsertEdge(4, 5)) {
        Err(ServeError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert!(service.stats().queue_depth >= 1);

    // Open the gate: everything flows, tickets resolve in order.
    gate.open();
    t1.wait().unwrap();
    t2.wait().unwrap();
    // The rejected-by-backpressure update was never queued; submitting
    // it again (blocking) succeeds now.
    service
        .submit(Update::InsertEdge(4, 5))
        .unwrap()
        .wait()
        .unwrap();
    let report = service.shutdown();
    assert_eq!(report.stats.applied, 3);
    assert_eq!(report.engine, "GatedEngine");
}

/// An engine that waits at the gate, then panics — models a buggy
/// custom `DynamicMis` dying mid-apply.
struct PanickingEngine {
    inner: Box<dyn DynamicMis>,
    gate: Arc<Gate>,
}

impl DynamicMis for PanickingEngine {
    fn name(&self) -> &'static str {
        "PanickingEngine"
    }
    fn graph(&self) -> &DynamicGraph {
        self.inner.graph()
    }
    fn try_apply(&mut self, _u: &Update) -> Result<SolutionDelta, EngineError> {
        self.gate.pass();
        panic!("engine bug");
    }
    fn try_apply_batch(&mut self, _updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        self.gate.pass();
        panic!("engine bug");
    }
    fn drain_delta(&mut self) -> SolutionDelta {
        self.inner.drain_delta()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn solution(&self) -> Vec<u32> {
        self.inner.solution()
    }
    fn contains(&self, v: u32) -> bool {
        self.inner.contains(v)
    }
    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[test]
fn writer_panic_unblocks_parked_feeders() {
    let gate = Arc::new(Gate::default());
    let factory_gate = Arc::clone(&gate);
    let (service, _reader) = MisService::spawn_with(
        move || {
            let g = DynamicGraph::from_edges(6, &[(0, 1), (2, 3)]);
            Ok(Box::new(PanickingEngine {
                inner: EngineBuilder::on(g).build()?,
                gate: factory_gate,
            }))
        },
        ServeConfig {
            queue_updates: 1,
            burst: 1,
            log_window: 16,
            first_seq: 0,
        },
    )
    .unwrap();

    // First update: dequeued by the writer, which blocks at the gate.
    let t1 = service.submit(Update::InsertEdge(0, 2)).unwrap();
    gate.wait_entered(1);
    // Second update: occupies the queue's single slot.
    let t2 = service.submit(Update::InsertEdge(1, 3)).unwrap();
    // Third feeder: parks in the backpressure gate (or arrives after the
    // crash — either way it must FAIL, not hang forever).
    let ingest = service.ingest();
    let parked = thread::spawn(move || ingest.submit(Update::InsertEdge(4, 5)));
    // Let the engine "crash": the writer thread unwinds; the gate guard
    // must close the backpressure so the parked feeder wakes with
    // `Stopped`, and outstanding tickets resolve to `Stopped` too.
    gate.open();
    match parked.join().unwrap() {
        Err(ServeError::Stopped) => {}
        other => panic!("parked feeder should observe Stopped, got {other:?}"),
    }
    assert!(matches!(t1.wait(), Err(ServeError::Stopped)));
    assert!(matches!(t2.wait(), Err(ServeError::Stopped)));
    // `shutdown` would propagate the writer panic; dropping the handle
    // detaches instead — the dead service rejects any further submit.
    drop(service);
}

#[test]
fn batch_tickets_carry_per_update_verdicts() {
    let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    let (service, mut reader) =
        MisService::spawn(EngineBuilder::on(g).k(1), ServeConfig::default()).unwrap();
    let outcome = service
        .submit_batch(vec![
            Update::RemoveEdge(1, 2), // valid
            Update::InsertEdge(0, 1), // duplicate → rejected
            Update::InsertEdge(0, 2), // valid — still applied after the rejection
            Update::RemoveVertex(99), // dead → rejected
            Update::InsertEdge(2, 4), // valid
        ])
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(outcome.len(), 5);
    assert!(outcome[0].is_ok());
    assert_eq!(
        outcome[1].as_ref().unwrap_err(),
        &EngineError::DuplicateEdge(0, 1)
    );
    assert!(outcome[2].is_ok());
    assert!(matches!(
        outcome[3].as_ref().unwrap_err(),
        EngineError::Graph(_)
    ));
    assert!(outcome[4].is_ok());
    let report = service.shutdown();
    assert_eq!(report.stats.applied, 3);
    assert_eq!(report.stats.rejected, 2);
    assert_eq!(reader.snapshot(), report.solution);
}

#[test]
fn submitting_after_shutdown_reports_stopped() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(g), ServeConfig::default()).unwrap();
    let ingest = service.ingest();
    // Hold an extra ingest handle: shutdown still waits for the queue,
    // and the clone keeps working until dropped.
    ingest.submit(Update::InsertEdge(0, 2)).unwrap();
    let done = thread::spawn(move || service.shutdown());
    ingest
        .submit(Update::RemoveEdge(0, 2))
        .unwrap()
        .wait()
        .unwrap();
    drop(ingest);
    let report = done.join().unwrap();
    assert_eq!(report.stats.applied, 2);
}

#[test]
fn serves_the_adversarial_stream() {
    // The deletion-heavy worst case from `dynamis_gen::adversarial`,
    // end to end through the service.
    let g = gnm(120, 360, 17);
    let ups = AdversarialStream::new(
        &g,
        AdversarialConfig {
            burst: 48,
            targets: 12,
            replace: true,
        },
        23,
    )
    .take_updates(2000);
    let (service, mut reader) = MisService::spawn(
        EngineBuilder::on(g).k(2),
        ServeConfig {
            queue_updates: 128,
            burst: 64,
            log_window: 64,
            first_seq: 0,
        },
    )
    .unwrap();
    for u in ups {
        service.submit_detached(u).unwrap();
    }
    let report = service.shutdown();
    assert_eq!(report.stats.applied, 2000);
    assert_eq!(report.stats.rejected, 0, "adversarial stream is valid");
    assert_eq!(reader.snapshot(), report.solution);
}
