//! Serving a sharded engine: the serve layer's ingest machinery in
//! front of a [`ShardedEngine`], with per-shard delta logs behind a
//! merged [`ShardedReader`].
//!
//! The composition reuses `dynamis-serve` wholesale: one ingest pump
//! thread (backpressured queue, adaptive batching, tickets) drives the
//! coordinator, which fans each batch out to the `P` shard writer
//! threads. Every shard cell publishes its owned share of each epoch's
//! net delta to its own [`SharedLog`] — one entry per epoch, empty or
//! not, so the logs advance in lockstep — and readers merge the per-
//! shard mirrors at the newest consistent cut. The service's own merged
//! log (and [`ReaderHandle`]s from [`ShardedService::merged_reader`])
//! keeps working unchanged alongside.

use crate::ShardedEngine;
use dynamis_core::{DynamicMis, EngineBuilder, EngineError};
use dynamis_graph::Update;
use dynamis_serve::{
    BatchTicket, MisService, ReaderHandle, ServeConfig, ServiceHandle, ServiceReport, ServiceStats,
    ShardedReader, SharedLog, Ticket,
};
use std::sync::Arc;

/// A concurrently queryable sharded maintenance service.
///
/// ```
/// use dynamis_core::EngineBuilder;
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_serve::ServeConfig;
/// use dynamis_shard::ShardedService;
///
/// let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let (service, mut reader) =
///     ShardedService::spawn(EngineBuilder::on(g).k(2).shards(2), ServeConfig::default())
///         .unwrap();
///
/// service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().unwrap();
/// assert!(reader.len() >= 3);
///
/// let report = service.shutdown();
/// assert_eq!(reader.snapshot(), report.solution);
/// ```
pub struct ShardedService {
    inner: ServiceHandle,
    logs: Vec<Arc<SharedLog>>,
}

impl ShardedService {
    /// Spawns the ingest pump plus the engine's `P` shard writer threads
    /// (`P` = [`EngineBuilder::shards`]). Returns the service handle and
    /// a first merged-per-shard reader.
    pub fn spawn(
        builder: EngineBuilder,
        cfg: ServeConfig,
    ) -> Result<(ShardedService, ShardedReader), EngineError> {
        Self::spawn_wrapped(builder, cfg, Ok)
    }

    /// [`ShardedService::spawn`] with a hook that wraps the built engine
    /// inside the writer thread before serving starts — how a durability
    /// layer interposes on the coordinator's accepted update stream
    /// without the sharded plumbing knowing it exists.
    pub fn spawn_wrapped<W>(
        builder: EngineBuilder,
        cfg: ServeConfig,
        wrap: W,
    ) -> Result<(ShardedService, ShardedReader), EngineError>
    where
        W: FnOnce(Box<dyn DynamicMis>) -> Result<Box<dyn DynamicMis>, EngineError> + Send + 'static,
    {
        let shards = builder.shard_count();
        let logs: Vec<Arc<SharedLog>> = (0..shards)
            .map(|_| Arc::new(SharedLog::new(cfg.log_window)))
            .collect();
        let for_engine = logs.clone();
        let (inner, _merged) = MisService::spawn_with(
            move || {
                let engine = ShardedEngine::from_builder_with_logs(builder, for_engine)
                    .map(|e| Box::new(e) as Box<dyn DynamicMis>)?;
                wrap(engine)
            },
            cfg,
        )?;
        // Commit and drain exchanges are posted split-phase, so the
        // cells may still be publishing the bootstrap epoch when the
        // pump thread comes up. Wait for it here: a fresh reader must
        // see the bootstrap solution immediately.
        while logs.iter().any(|l| l.head() == 0) {
            std::thread::yield_now();
        }
        let reader = ShardedReader::new(logs.clone());
        Ok((ShardedService { inner, logs }, reader))
    }

    /// Number of per-shard delta logs (= shards).
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// Enqueues one update, blocking while the queue is full.
    pub fn submit(&self, update: Update) -> Result<Ticket, dynamis_serve::ServeError> {
        self.inner.submit(update)
    }

    /// Fire-and-forget single update.
    pub fn submit_detached(&self, update: Update) -> Result<(), dynamis_serve::ServeError> {
        self.inner.submit_detached(update)
    }

    /// Enqueues a pre-formed batch as one command.
    pub fn submit_batch(
        &self,
        updates: Vec<Update>,
    ) -> Result<BatchTicket, dynamis_serve::ServeError> {
        self.inner.submit_batch(updates)
    }

    /// Fire-and-forget batch.
    pub fn submit_batch_detached(
        &self,
        updates: Vec<Update>,
    ) -> Result<(), dynamis_serve::ServeError> {
        self.inner.submit_batch_detached(updates)
    }

    /// A new merged-per-shard reader (syncs to the newest epoch every
    /// shard has published).
    pub fn reader(&self) -> ShardedReader {
        ShardedReader::new(self.logs.clone())
    }

    /// A reader over the service's single merged log — the same view a
    /// plain [`MisService`] serves; useful to compare the two broadcast
    /// paths.
    pub fn merged_reader(&self) -> ReaderHandle {
        self.inner.reader()
    }

    /// Point-in-time counter snapshot of the ingest layer.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// A cloneable submit-only handle for feeder threads — what a
    /// network front end hands its session threads.
    pub fn ingest(&self) -> dynamis_serve::IngestHandle {
        self.inner.ingest()
    }

    /// The service's single merged broadcast log (the stream behind
    /// [`ShardedService::merged_reader`]) — what a network front end
    /// serializes for its subscribers, identical in shape to a plain
    /// [`MisService`] log.
    pub fn log(&self) -> Arc<SharedLog> {
        self.inner.log()
    }

    /// Graceful shutdown: flushes the queue through the coordinator and
    /// returns the final report (engine name, merged solution, stats).
    pub fn shutdown(self) -> ServiceReport {
        self.inner.shutdown()
    }
}
