//! # dynamis-shard — sharded parallel maintenance
//!
//! Partitions the dynamic MaxIS *write path* across `P` shards: the
//! vertex space is split by a degree-aware [`ShardMap`], each shard runs
//! its own maintenance cell — halo subgraph, exact counts and dependent
//! sets for its owned vertices, its own delta feed and broadcast log —
//! on its own writer thread, and a coordinator drives the cells through
//! barriered phases. Edges inside a shard are that shard's business;
//! an edge crossing shards resolves its count transitions on *each
//! endpoint's owner* and exchanges the resulting boundary repairs
//! through a two-phase (propose/commit) protocol:
//!
//! ```text
//!                         ┌──────────────────────────────┐
//!        update ─────────►│ coordinator                   │
//!   (validate on shadow)  │  route ops → owners           │──┐ fused round per
//!                         │  fill: poll / round / commit  │  │ phase, cells in
//!                         │  swap: fused scan / resolve / │  │ parallel, commits
//!                         │        wave-commit flips      │  │ posted pipelined
//!                         └──┬───────────┬───────────┬───┘◄─┘
//!                    Cmd/Reply│           │           │
//!                     ┌───────▼──┐  ┌─────▼────┐  ┌───▼──────┐
//!                     │ cell 0    │  │ cell 1   │  │ cell P-1 │   one writer
//!                     │ halo graph│  │          │  │          │   thread each
//!                     │ counts,¯I₁│  │   …      │  │    …     │
//!                     │ delta log │  │          │  │          │
//!                     └───────────┘  └──────────┘  └──────────┘
//! ```
//!
//! ## The canonical protocol
//!
//! The cells maintain the paper's swap framework (counts, `¯I₁`/`¯I₂`
//! dependent sets, maximality repair, FIND ONESWAP / FIND TWOSWAP), but
//! every choice the sequential engines make from incidental state —
//! which freed vertex enters first, which swap fires next, which pair
//! replaces an evicted vertex — is resolved here against **global vertex
//! ids**:
//!
//! * *Fill* (maximality repair) computes the unique priority-greedy
//!   extension of the solution: freed vertices enter in rounds of local
//!   minima of the freed-induced subgraph, with each round's boundary
//!   frontier exchanged between shards.
//! * *Swaps* commit in **fused rounds**: one `SwapScan` exchange
//!   collects every cell's actionable candidates, the merged list is
//!   resolved in ascending candidate order against the pre-round state
//!   (cell-locally when every adjacency test has an owned endpoint,
//!   through the coordinator's gather pipeline otherwise), and every
//!   resolved swap whose 1-hop footprint is disjoint from the ones
//!   accepted before it commits in the *same* round — one `Flips`
//!   broadcast per round, so coordination cost scales with conflicting
//!   swaps, not total swaps. Each replacement is the lexicographically
//!   smallest admissible pair/triple, and the acceptance order is the
//!   global candidate order, so the round's outcome is shard-count
//!   independent.
//!
//! The result: the maintained solution is a pure function of the update
//! sequence — independent, maximal, k-maximal (`k ∈ {1, 2}`), and
//! **identical for every shard count**. [`CanonicalMis`] is the same
//! protocol run sequentially in one cell; the equivalence proptests pin
//! `ShardedEngine{P = 1, 2, 4} == CanonicalMis` on random update
//! streams, with independence and k-maximality verified against the
//! brute-force checkers.
//!
//! This determinism is what a sharded *service* needs: scaling the shard
//! count up or down (or replaying a log into a differently-sharded
//! replica) cannot change answers. The residual price is coordination on
//! *conflicting* work: fused scans batch a whole round's validation into
//! one exchange, commit broadcasts are posted split-phase so cells apply
//! them while the coordinator builds the next phase
//! ([`EngineBuilder::pipeline`](dynamis_core::EngineBuilder::pipeline)),
//! and [`SwapRoundStats`] reports how much concurrency the
//! footprint-independence rule extracts (see the `shard` bench bin and
//! `BENCH_PR6.json`).
//!
//! ## Serving
//!
//! [`ShardedService`] puts the serve layer's backpressured ingest queue
//! in front of a [`ShardedEngine`]: each cell publishes its owned share
//! of every epoch's delta to its own per-shard log, and
//! [`dynamis_serve::ShardedReader`] merges the per-shard mirrors at the
//! newest consistent cut (a seq-vector of per-log positions).

mod cell;
mod engine;
mod protocol;
mod service;

pub use dynamis_graph::{Partitioner, ShardMap};
pub use engine::{CanonicalMis, ShardedEngine, SwapRoundStats};
pub use service::ShardedService;
