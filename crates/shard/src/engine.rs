//! The coordinator: canonical sharded maintenance over a set of cells.
//!
//! The [`Orchestrator`] drives the barriered phases described in
//! [`crate`]'s docs against any [`Transport`] — worker threads
//! ([`ShardedEngine`], one writer thread per shard) or direct calls
//! ([`CanonicalMis`], the sequential reference the equivalence tests
//! compare against). Every tie-break is resolved against global vertex
//! ids, so the maintained solution is a pure function of the update
//! sequence: the same for every shard count and for both transports.

use crate::cell::ShardCell;
use crate::protocol::{merge_minus, CellOp, Cmd, EndInfo, Note, Reply, ReplyData, SwapProposal};
use dynamis_core::{
    validate_update, BuildableEngine, DeltaFeed, DynamicMis, EngineBuilder, EngineError,
    EngineStats, SolutionDelta,
};
use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::{apply_update, DynamicGraph, Partitioner, ShardMap, Update};
use dynamis_serve::SharedLog;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How cell work is executed: inline (sequential reference) or on one
/// writer thread per shard.
pub(crate) trait Transport {
    fn shards(&self) -> usize;
    /// Sends the commands (grouped by shard, FIFO order preserved per
    /// shard — several commands to one shard are legal) and returns the
    /// replies in the same order. All addressed cells run concurrently
    /// under a threaded transport — this is the barrier.
    fn exchange(&mut self, cmds: Vec<(usize, Cmd)>) -> Vec<(usize, Reply)>;
}

/// Direct in-place execution (no threads): the sequential reference.
pub(crate) struct InlineCells {
    cells: Vec<ShardCell>,
}

impl Transport for InlineCells {
    fn shards(&self) -> usize {
        self.cells.len()
    }

    fn exchange(&mut self, cmds: Vec<(usize, Cmd)>) -> Vec<(usize, Reply)> {
        cmds.into_iter()
            .map(|(s, c)| (s, self.cells[s].handle(c)))
            .collect()
    }
}

/// One writer thread per shard, request/reply channels per cell.
pub(crate) struct ThreadCells {
    txs: Vec<mpsc::Sender<Cmd>>,
    rxs: Vec<mpsc::Receiver<Reply>>,
    joins: Vec<Option<JoinHandle<()>>>,
}

impl ThreadCells {
    fn spawn(cells: Vec<ShardCell>) -> Self {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        let mut joins = Vec::new();
        for (i, mut cell) in cells.into_iter().enumerate() {
            let (ctx, crx) = mpsc::channel::<Cmd>();
            let (rtx, rrx) = mpsc::channel::<Reply>();
            let join = std::thread::Builder::new()
                .name(format!("dynamis-shard-{i}"))
                .spawn(move || {
                    while let Ok(cmd) = crx.recv() {
                        if matches!(cmd, Cmd::Stop) {
                            break;
                        }
                        if rtx.send(cell.handle(cmd)).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn shard cell thread");
            txs.push(ctx);
            rxs.push(rrx);
            joins.push(Some(join));
        }
        ThreadCells { txs, rxs, joins }
    }
}

impl Transport for ThreadCells {
    fn shards(&self) -> usize {
        self.txs.len()
    }

    fn exchange(&mut self, cmds: Vec<(usize, Cmd)>) -> Vec<(usize, Reply)> {
        let order: Vec<usize> = cmds.iter().map(|&(s, _)| s).collect();
        for (s, c) in cmds {
            self.txs[s].send(c).expect("shard cell thread died");
        }
        order
            .into_iter()
            .map(|s| (s, self.rxs[s].recv().expect("shard cell thread died")))
            .collect()
    }
}

impl Drop for ThreadCells {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Stop);
        }
        for j in &mut self.joins {
            if let Some(j) = j.take() {
                let _ = j.join();
            }
        }
    }
}

/// Per-shard pending-work summary, refreshed from every [`Reply`]. A
/// cell's state changes only through commands, so the hint from its
/// latest reply is always current — phases with no hinted cell are
/// skipped without any exchange.
#[derive(Debug, Clone, Copy)]
struct Hints {
    freed: bool,
    dirty1: bool,
    dirty2: bool,
}

/// The phase driver. Owns the shadow graph (update validation, `graph()`
/// view), the global membership mirror, the merged delta feed, and the
/// [`ShardMap`]; everything per-vertex lives in the cells.
pub(crate) struct Orchestrator<T: Transport> {
    t: T,
    map: ShardMap,
    shadow: DynamicGraph,
    in_sol: Vec<bool>,
    size: usize,
    feed: DeltaFeed,
    stats: EngineStats,
    k2: bool,
    name: &'static str,
    hints: Vec<Hints>,
    /// Coordinator round-trips — the sharded architecture's unit of
    /// coordination cost (exposed through `coordination_stats`).
    exchanges: u64,
    cmds_sent: u64,
}

/// A batched run of membership-neutral structural ops, keyed per cell.
/// Built by [`Orchestrator::apply_updates`], shipped by
/// [`Orchestrator::flush_segment`] in one exchange.
struct Segment {
    per_cell: Vec<Vec<CellOp>>,
    /// Op ids of removed both-outsider edges, in op order (they feed
    /// the candidate rules after the flush).
    removed: Vec<u32>,
    next_op: u32,
    any: bool,
}

impl Segment {
    fn new(shards: usize) -> Self {
        Segment {
            per_cell: vec![Vec::new(); shards],
            removed: Vec::new(),
            next_op: 0,
            any: false,
        }
    }

    fn edge(&mut self, map: &ShardMap, insert: bool, u: u32, v: u32, u_in: bool, v_in: bool) {
        let op = self.next_op;
        self.next_op += 1;
        let cell_op = CellOp::Edge {
            op,
            insert,
            u,
            v,
            u_in,
            v_in,
        };
        let (ou, ov) = (map.owner(u), map.owner(v));
        self.per_cell[ou].push(cell_op.clone());
        if ov != ou {
            self.per_cell[ov].push(cell_op);
        }
        if !insert && !u_in && !v_in {
            self.removed.push(op);
        }
        self.any = true;
    }

    fn add_vertex(&mut self, id: u32, owner: u16, neighbors: Arc<Vec<(u32, bool)>>) {
        self.next_op += 1;
        for list in &mut self.per_cell {
            list.push(CellOp::AddVertex {
                id,
                owner,
                neighbors: Arc::clone(&neighbors),
            });
        }
        self.any = true;
    }

    fn rem_outsider(&mut self, v: u32) {
        self.next_op += 1;
        for list in &mut self.per_cell {
            list.push(CellOp::RemOutsider { v });
        }
        self.any = true;
    }

    fn reset(&mut self) {
        for list in &mut self.per_cell {
            list.clear();
        }
        self.removed.clear();
        self.next_op = 0;
        self.any = false;
    }
}

/// Builds the cells plus their bootstrap notes for the given session.
fn build_cells(
    shadow: &DynamicGraph,
    map: &ShardMap,
    initial: &[u32],
    k2: bool,
    logs: Option<&[Arc<SharedLog>]>,
) -> (Vec<ShardCell>, Vec<Note>) {
    let mut cells = Vec::new();
    let mut notes = Vec::new();
    for s in 0..map.shards() {
        let log = logs.map(|l| Arc::clone(&l[s]));
        let (cell, mut n) = ShardCell::new(s, k2, shadow, map, initial, log);
        cells.push(cell);
        notes.append(&mut n);
    }
    (cells, notes)
}

impl<T: Transport> Orchestrator<T> {
    fn new(
        t: T,
        map: ShardMap,
        shadow: DynamicGraph,
        initial: &[u32],
        k2: bool,
        name: &'static str,
        bootstrap_notes: Vec<Note>,
    ) -> Self {
        let mut in_sol = vec![false; shadow.capacity()];
        let mut feed = DeltaFeed::default();
        for &v in initial {
            in_sol[v as usize] = true;
            feed.record_in(v);
        }
        let shards = t.shards();
        let mut o = Orchestrator {
            t,
            map,
            shadow,
            size: initial.len(),
            in_sol,
            feed,
            stats: EngineStats::default(),
            k2,
            name,
            // Conservative until each cell's first reply arrives.
            hints: vec![
                Hints {
                    freed: true,
                    dirty1: true,
                    dirty2: true,
                };
                shards
            ],
            exchanges: 0,
            cmds_sent: 0,
        };
        o.route_notes(bootstrap_notes);
        o.settle();
        // Close the bootstrap span: the first update's delta must not
        // absorb it, while the drainable feed still replays it. (Cell
        // feeds close their spans lazily, at `Drain`.)
        let _ = o.feed.finish_update();
        o
    }

    #[inline]
    fn owner(&self, v: u32) -> usize {
        self.map.owner(v)
    }

    /// The barriered exchange, recording every reply's work hints.
    fn exchange(&mut self, cmds: Vec<(usize, Cmd)>) -> Vec<(usize, Reply)> {
        self.exchanges += 1;
        self.cmds_sent += cmds.len() as u64;
        let replies = self.t.exchange(cmds);
        for (s, r) in &replies {
            self.hints[*s] = Hints {
                freed: r.freed,
                dirty1: r.dirty1,
                dirty2: r.dirty2,
            };
        }
        replies
    }

    /// One command to every shard; replies come back in shard order.
    fn bcast(&mut self, mk: impl Fn() -> Cmd) -> Vec<Reply> {
        let cmds = (0..self.t.shards()).map(|s| (s, mk())).collect();
        self.exchange(cmds).into_iter().map(|(_, r)| r).collect()
    }

    /// One command to each of the given shards (ascending).
    fn multicast(&mut self, shards: &[usize], mk: impl Fn() -> Cmd) -> Vec<(usize, Reply)> {
        let cmds = shards.iter().map(|&s| (s, mk())).collect();
        self.exchange(cmds)
    }

    /// One command to one shard; queries must not emit notes.
    fn query(&mut self, shard: usize, cmd: Cmd) -> ReplyData {
        let mut replies = self.exchange(vec![(shard, cmd)]);
        let (_, reply) = replies.pop().expect("one reply per command");
        debug_assert!(reply.notes.is_empty(), "queries are read-only");
        reply.data
    }

    fn collect_notes(replies: Vec<Reply>) -> Vec<Note> {
        replies.into_iter().flat_map(|r| r.notes).collect()
    }

    /// Routes dependent-set notes to the owners of the solution vertices
    /// they describe. One exchange; note handling emits nothing further.
    fn route_notes(&mut self, notes: Vec<Note>) {
        if notes.is_empty() {
            return;
        }
        let p = self.t.shards();
        let mut per: Vec<Vec<Note>> = vec![Vec::new(); p];
        for n in notes {
            match n {
                Note::Dep1Add { p: pa, .. } | Note::Dep1Del { p: pa, .. } => {
                    per[self.owner(pa)].push(n)
                }
                Note::Dep2Add { a, b, .. } | Note::Dep2Del { a, b, .. } => {
                    let (oa, ob) = (self.owner(a), self.owner(b));
                    per[oa].push(n);
                    if ob != oa {
                        per[ob].push(n);
                    }
                }
                Note::Dirty1 { v } | Note::Dirty2 { v } => per[self.owner(v)].push(n),
            }
        }
        let cmds: Vec<(usize, Cmd)> = per
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(s, v)| (s, Cmd::Notes(v)))
            .collect();
        if cmds.is_empty() {
            return;
        }
        for (_, r) in self.exchange(cmds) {
            debug_assert!(r.notes.is_empty(), "note handling is terminal");
        }
    }

    /// Commits membership flips: mirror + merged feed first, then the
    /// flip delivery, then the resulting count-transition notes. Flips
    /// are routed to exactly the cells that can observe them — each
    /// flipped vertex's owner plus the owners of its neighbors; any
    /// other cell re-syncs membership when an `Edge` command first
    /// connects it to the vertex.
    fn apply_flips(&mut self, flips: Vec<(u32, bool)>) {
        let mut shards: Vec<usize> = Vec::new();
        for &(v, enter) in &flips {
            debug_assert_ne!(self.in_sol[v as usize], enter, "redundant flip of {v}");
            self.in_sol[v as usize] = enter;
            if enter {
                self.feed.record_in(v);
                self.size += 1;
            } else {
                self.feed.record_out(v);
                self.size -= 1;
            }
            shards.push(self.owner(v));
            shards.extend(self.shadow.neighbors(v).map(|w| self.owner(w)));
        }
        shards.sort_unstable();
        shards.dedup();
        let arc = Arc::new(flips);
        let replies = self.multicast(&shards, || Cmd::Flips(Arc::clone(&arc)));
        let notes = replies.into_iter().flat_map(|(_, r)| r.notes).collect();
        self.route_notes(notes);
    }

    /// Shards whose latest reply hinted pending work of the given kind.
    fn hinted(&self, f: impl Fn(&Hints) -> bool) -> Vec<usize> {
        self.hints
            .iter()
            .enumerate()
            .filter(|(_, h)| f(h))
            .map(|(s, _)| s)
            .collect()
    }

    /// Maximality repair to quiescence: the unique priority-greedy fill
    /// of the freed set, computed in local-minima rounds with the
    /// boundary frontiers exchanged between rounds. Only cells hinting
    /// freed vertices participate in a round.
    fn fill_loop(&mut self) {
        loop {
            let who = self.hinted(|h| h.freed);
            if who.is_empty() {
                return;
            }
            let mut bnd: Vec<u32> = Vec::new();
            let mut round: Vec<usize> = Vec::new();
            for (s, r) in self.multicast(&who, || Cmd::FillPoll) {
                if let ReplyData::Fill { any, boundary } = r.data {
                    if any {
                        round.push(s);
                    }
                    bnd.extend(boundary);
                } else {
                    unreachable!("FillPoll reply");
                }
            }
            if round.is_empty() {
                return;
            }
            bnd.sort_unstable();
            let arc = Arc::new(bnd);
            let mut entered: Vec<u32> = Vec::new();
            for (_, r) in self.multicast(&round, || Cmd::FillRound(Arc::clone(&arc))) {
                if let ReplyData::Entered(e) = r.data {
                    entered.extend(e);
                } else {
                    unreachable!("FillRound reply");
                }
            }
            // The globally smallest freed vertex is always a local
            // minimum, so every round makes progress.
            debug_assert!(!entered.is_empty(), "fill round must progress");
            entered.sort_unstable();
            self.stats.repairs += entered.len() as u64;
            self.apply_flips(entered.into_iter().map(|v| (v, true)).collect());
        }
    }

    /// Minimum actionable swap candidate across the hinted shards —
    /// resolved locally by its owner cell when possible. `clear` rides
    /// along to drop a just-refuted candidate from its owner's set.
    fn global_swap_scan(&mut self, two: bool, clear: Option<u32>) -> Option<SwapProposal> {
        let mut who = self.hinted(|h| if two { h.dirty2 } else { h.dirty1 });
        if let Some(c) = clear {
            let owner = self.owner(c);
            if !who.contains(&owner) {
                who.push(owner);
                who.sort_unstable();
            }
        }
        if who.is_empty() {
            return None;
        }
        self.multicast(&who, || Cmd::SwapScan { two, clear })
            .into_iter()
            .filter_map(|(_, r)| match r.data {
                ReplyData::Swap(p) => p,
                _ => unreachable!("SwapScan reply"),
            })
            .min_by_key(|p| p.key())
    }

    fn clear_dirty(&mut self, two: bool, v: u32) {
        let owner = self.owner(v);
        let _ = self.query(owner, Cmd::ClearDirty { two, v });
    }

    /// Edges among `list` (sorted, deduplicated), as pair keys: each
    /// member's owner reports its incident edges within the list.
    fn adj_among(&mut self, list: &Arc<Vec<u32>>) -> FxHashSet<u64> {
        let mut shards: Vec<usize> = list.iter().map(|&v| self.owner(v)).collect();
        shards.sort_unstable();
        shards.dedup();
        let cmds = shards
            .into_iter()
            .map(|s| (s, Cmd::AdjAmong(Arc::clone(list))))
            .collect();
        let mut adj = FxHashSet::default();
        for (_, r) in self.exchange(cmds) {
            debug_assert!(r.notes.is_empty());
            if let ReplyData::Edges(edges) = r.data {
                adj.extend(edges.into_iter().map(|(a, b)| pair_key(a, b)));
            } else {
                unreachable!("AdjAmong reply");
            }
        }
        adj
    }

    /// Scans 1-swap candidates in ascending order and commits the first
    /// real one: the candidate vertex leaves, the lexicographically
    /// smallest non-adjacent pair of its `¯I₁` enters. Locally-resolved
    /// proposals commit directly; cross-shard candidates go through the
    /// gather/validate pipeline.
    fn try_one_swap(&mut self) -> bool {
        let mut clear = None;
        while let Some(proposal) = self.global_swap_scan(false, clear.take()) {
            match proposal {
                SwapProposal::One { v, u1, u2 } => {
                    self.stats.one_swaps += 1;
                    // v leaves I; the stale dirty entry prunes itself.
                    self.apply_flips(vec![(v, false), (u1, true), (u2, true)]);
                    return true;
                }
                SwapProposal::Global { v, bar1 } => {
                    let d = Arc::new(bar1);
                    debug_assert!(d.len() >= 2, "SwapScan pre-validates |¯I₁| ≥ 2");
                    let adj = self.adj_among(&d);
                    let mut found = None;
                    'pair: for i in 0..d.len() {
                        for j in i + 1..d.len() {
                            if !adj.contains(&pair_key(d[i], d[j])) {
                                found = Some((d[i], d[j]));
                                break 'pair;
                            }
                        }
                    }
                    if let Some((u1, u2)) = found {
                        // v leaves I; its dirty entry prunes itself.
                        self.stats.one_swaps += 1;
                        self.apply_flips(vec![(v, false), (u1, true), (u2, true)]);
                        return true;
                    }
                    // Refuted: the clear rides on the next scan.
                    clear = Some(v);
                }
                SwapProposal::Two { .. } => unreachable!("1-swap scan yields 1-swap proposals"),
            }
        }
        if let Some(v) = clear {
            self.clear_dirty(false, v);
        }
        false
    }

    /// Scans 2-swap candidates in ascending order: for the smallest
    /// dirty solution vertex, its pairs `(a, b)` in lexicographic order,
    /// each pair's pivots `x` ascending, and the first admissible
    /// `(y, z)` in lexicographic order. Commits `{a, b} → {x, y, z}`.
    fn try_two_swap(&mut self) -> bool {
        let mut clear = None;
        while let Some(proposal) = self.global_swap_scan(true, clear.take()) {
            match proposal {
                SwapProposal::Two { a, b, x, y, z, .. } => {
                    self.stats.two_swaps += 1;
                    self.apply_flips(vec![
                        (a, false),
                        (b, false),
                        (x, true),
                        (y, true),
                        (z, true),
                    ]);
                    return true;
                }
                SwapProposal::Global { v, .. } => {
                    if self.attempt_two_swap_at(v) {
                        // v (= one of the evicted pair) leaves I; its
                        // dirty entry prunes itself.
                        return true;
                    }
                    clear = Some(v);
                }
                SwapProposal::One { .. } => unreachable!("2-swap scan yields 2-swap proposals"),
            }
        }
        if let Some(v) = clear {
            self.clear_dirty(true, v);
        }
        false
    }

    fn attempt_two_swap_at(&mut self, v: u32) -> bool {
        let owner = self.owner(v);
        let pairs = match self.query(owner, Cmd::PairsOf(v)) {
            ReplyData::Pairs(p) => p,
            _ => unreachable!("PairsOf reply"),
        };
        for (a, b) in pairs {
            debug_assert!(
                self.in_sol[a as usize] && self.in_sol[b as usize],
                "dep2 rows are exact"
            );
            // One exchange for the pair's three lists (FIFO per shard
            // keeps multiple commands to one owner in order).
            let (oa, ob) = (self.owner(a), self.owner(b));
            let replies = self.exchange(vec![
                (oa, Cmd::Pivots { a, b }),
                (oa, Cmd::Bar1(a)),
                (ob, Cmd::Bar1(b)),
            ]);
            let mut lists = replies.into_iter().map(|(_, r)| match r.data {
                ReplyData::List(l) => l,
                _ => unreachable!("list reply"),
            });
            let piv = lists.next().unwrap();
            let b1a = lists.next().unwrap();
            let b1b = lists.next().unwrap();
            if piv.is_empty() {
                continue;
            }
            // One exchange for every pivot's neighborhood.
            let nbr_cmds: Vec<(usize, Cmd)> = piv
                .iter()
                .map(|&x| (self.owner(x), Cmd::NbrsOf(x)))
                .collect();
            let nbrs: Vec<Vec<u32>> = self
                .exchange(nbr_cmds)
                .into_iter()
                .map(|(_, r)| match r.data {
                    ReplyData::List(l) => l,
                    _ => unreachable!("NbrsOf reply"),
                })
                .collect();
            for (&x, nx) in piv.iter().zip(&nbrs) {
                // Cy = (¯I₁(a) ∪ ¯I₂) − N[x]; Cz = (¯I₁(b) ∪ ¯I₂) − N[x].
                let cy = merge_minus(&b1a, &piv, |w| w == x || nx.binary_search(&w).is_ok());
                if cy.is_empty() {
                    continue;
                }
                let cz = merge_minus(&b1b, &piv, |w| w == x || nx.binary_search(&w).is_ok());
                if cz.is_empty() {
                    continue;
                }
                let mut all: Vec<u32> = cy.iter().chain(cz.iter()).copied().collect();
                all.sort_unstable();
                all.dedup();
                let all = Arc::new(all);
                let adj = self.adj_among(&all);
                for &y in &cy {
                    for &z in &cz {
                        if z != y && !adj.contains(&pair_key(y, z)) {
                            self.stats.two_swaps += 1;
                            self.apply_flips(vec![
                                (a, false),
                                (b, false),
                                (x, true),
                                (y, true),
                                (z, true),
                            ]);
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Restores the full invariant: maximality (fill), then no 1-swap,
    /// then (k = 2) no 2-swap — re-filling and re-scanning after every
    /// committed swap, exactly like Algorithm 1's main loop. Terminates
    /// because every committed swap grows |I| by at least one.
    fn settle(&mut self) {
        loop {
            self.fill_loop();
            if self.try_one_swap() {
                continue;
            }
            if self.k2 && self.try_two_swap() {
                continue;
            }
            break;
        }
    }

    /// Applies a run of updates. Membership-neutral structural ops —
    /// every edge flip except an insert between two solution vertices,
    /// vertex inserts, outsider removals — accumulate into per-cell
    /// [`CellOp`] segments and reach the cells in **one** exchange per
    /// segment; only the updates that flip membership at dispatch time
    /// (conflict inserts, solution-vertex removals) are phase
    /// boundaries. Counts stay exact throughout because the cells' case
    /// analysis is membership-driven, not maximality-driven; fill and
    /// swap settling are the caller's business. Returns the first
    /// rejection, with the valid prefix applied.
    fn apply_updates(&mut self, updates: &[Update]) -> Option<(usize, EngineError)> {
        let mut seg = Segment::new(self.t.shards());
        for (index, u) in updates.iter().enumerate() {
            if let Err(e) = validate_update(&self.shadow, u) {
                self.flush_segment(&mut seg);
                return Some((index, e));
            }
            self.stats.updates += 1;
            match u {
                Update::InsertEdge(a, b)
                    if self.in_sol[*a as usize] && self.in_sol[*b as usize] =>
                {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.insert_edge(a, b).expect("validated");
                    seg.edge(&self.map, true, a, b, true, true);
                    self.flush_segment(&mut seg);
                    self.conflict_evict(a, b);
                }
                Update::InsertEdge(a, b) => {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.insert_edge(a, b).expect("validated");
                    let (a_in, b_in) = (self.in_sol[a as usize], self.in_sol[b as usize]);
                    seg.edge(&self.map, true, a, b, a_in, b_in);
                }
                Update::RemoveEdge(a, b) => {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.remove_edge(a, b).expect("validated");
                    let (a_in, b_in) = (self.in_sol[a as usize], self.in_sol[b as usize]);
                    seg.edge(&self.map, false, a, b, a_in, b_in);
                }
                Update::InsertVertex { id, neighbors } => {
                    apply_update(&mut self.shadow, u).expect("validated");
                    let owner = self.map.assign_fresh_near(*id, neighbors) as u16;
                    if self.in_sol.len() < self.shadow.capacity() {
                        self.in_sol.resize(self.shadow.capacity(), false);
                    }
                    self.in_sol[*id as usize] = false;
                    let with_sol = Arc::new(
                        neighbors
                            .iter()
                            .map(|&n| (n, self.in_sol[n as usize]))
                            .collect::<Vec<_>>(),
                    );
                    seg.add_vertex(*id, owner, with_sol);
                }
                Update::RemoveVertex(v) => {
                    let v = *v;
                    self.stats.entry_hash_probes += self.shadow.degree(v) as u64;
                    self.shadow.remove_vertex(v).expect("validated");
                    if self.in_sol[v as usize] {
                        // Boundary: the removal flips membership.
                        self.flush_segment(&mut seg);
                        self.in_sol[v as usize] = false;
                        self.feed.record_out(v);
                        self.size -= 1;
                        let replies = self.bcast(|| Cmd::RemSolVertex { v });
                        let notes = Self::collect_notes(replies);
                        self.route_notes(notes);
                    } else {
                        seg.rem_outsider(v);
                    }
                }
            }
        }
        self.flush_segment(&mut seg);
        None
    }

    /// Ships the accumulated segment to the cells (one exchange),
    /// routes the resulting notes, and fires the outsider-edge-removal
    /// dirty rules in op order.
    fn flush_segment(&mut self, seg: &mut Segment) {
        if !seg.any {
            return;
        }
        let cmds: Vec<(usize, Cmd)> = seg
            .per_cell
            .iter_mut()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(s, l)| (s, Cmd::Ops(std::mem::take(l))))
            .collect();
        let replies = self.exchange(cmds);
        let mut notes = Vec::new();
        let mut infos: Vec<(u32, Option<EndInfo>, Option<EndInfo>)> = Vec::new();
        for (_, r) in replies {
            notes.extend(r.notes);
            if let ReplyData::OpsInfo(rows) = r.data {
                infos.extend(rows);
            }
        }
        if !seg.removed.is_empty() {
            // Merge the (up to two) per-cell rows of each removed edge.
            infos.sort_unstable_by_key(|&(op, _, _)| op);
            for &op in &seg.removed {
                let lo = infos.partition_point(|&(o, _, _)| o < op);
                let (mut ia, mut ib) = (None, None);
                for row in infos[lo..].iter().take_while(|&&(o, _, _)| o == op) {
                    ia = ia.or(row.1);
                    ib = ib.or(row.2);
                }
                self.outsider_removal_dirty(ia, ib, &mut notes);
            }
        }
        seg.reset();
        self.route_notes(notes);
    }

    /// The paper's eviction rule for an edge inserted between two
    /// solution vertices: evict the endpoint whose `¯I₁` promises a
    /// refill, preferring `b`; fall back to higher degree.
    fn conflict_evict(&mut self, a: u32, b: u32) {
        let peek = |o: &mut Self, v: u32| -> bool {
            let owner = o.owner(v);
            match o.query(owner, Cmd::DepPeek(v)) {
                ReplyData::Peek { nonempty } => nonempty,
                _ => unreachable!("DepPeek reply"),
            }
        };
        let loser = if peek(self, b) {
            b
        } else if peek(self, a) {
            a
        } else if self.shadow.degree(b) >= self.shadow.degree(a) {
            b
        } else {
            a
        };
        self.apply_flips(vec![(loser, false)]);
    }

    /// The paper's "edge removed between two outsiders" candidate rules
    /// (the only update changing bucket adjacency without a count
    /// transition): re-arm the affected solution vertices/pairs.
    fn outsider_removal_dirty(
        &mut self,
        ia: Option<EndInfo>,
        ib: Option<EndInfo>,
        notes: &mut Vec<Note>,
    ) {
        let (ia, ib) = match (ia, ib) {
            (Some(ia), Some(ib)) => (ia, ib),
            _ => unreachable!("every outsider endpoint has exactly one owner"),
        };
        if ia.count == 1 && ib.count == 1 {
            let (pa, pb) = (ia.parents[0], ib.parents[0]);
            if pa == pb {
                notes.push(Note::Dirty1 { v: pa });
            } else if self.k2 {
                notes.push(Note::Dirty2 { v: pa });
                notes.push(Note::Dirty2 { v: pb });
            }
        }
        if self.k2 {
            for (info, other) in [(&ia, &ib), (&ib, &ia)] {
                if info.count == 2 && (1..=2).contains(&other.count) {
                    notes.push(Note::Dirty2 { v: info.parents[0] });
                    notes.push(Note::Dirty2 { v: info.parents[1] });
                }
            }
        }
    }

    // ---- DynamicMis backing ------------------------------------------

    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        if let Some((_, cause)) = self.apply_updates(std::slice::from_ref(u)) {
            // Validation precedes every mutation: state untouched.
            return Err(cause);
        }
        self.settle();
        let mut delta = self.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        Ok(delta)
    }

    /// Batch: one deferred fill + swap drain for the whole burst (same
    /// contract as the eager engines' deferred-drain batch — the final
    /// state is identically k-maximal, cascades of intermediate states
    /// are skipped). On rejection the valid prefix stays applied with
    /// the invariant re-established and the error names the index.
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        let failure = self.apply_updates(updates);
        self.settle();
        let mut delta = self.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        match failure {
            None => Ok(delta),
            Some((index, cause)) => Err(cause.in_batch(index)),
        }
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        // Cells drain (and publish to their per-shard logs) in the same
        // epoch as the merged drain.
        self.bcast(|| Cmd::Drain);
        self.feed.drain()
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.in_sol.len() as u32)
            .filter(|&v| self.in_sol[v as usize])
            .collect()
    }

    fn heap_bytes(&mut self) -> usize {
        let cells: usize = self
            .bcast(|| Cmd::HeapBytes)
            .into_iter()
            .map(|r| match r.data {
                ReplyData::Bytes(b) => b,
                _ => unreachable!("HeapBytes reply"),
            })
            .sum();
        self.shadow.heap_bytes() + self.in_sol.capacity() + cells
    }

    /// Exhaustive cross-shard audit (test use): every cell's local state
    /// recomputed from scratch, the merged solution checked independent
    /// and maximal against the shadow graph, and the distributed
    /// dependent sets compared against a global recount.
    fn check_consistency(&mut self) -> Result<(), String> {
        self.shadow.check_consistency()?;
        for (s, r) in self.bcast(|| Cmd::Audit).into_iter().enumerate() {
            if let ReplyData::Check(res) = r.data {
                res.map_err(|e| format!("cell {s}: {e}"))?;
            }
        }
        if self.size != self.in_sol.iter().filter(|&&b| b).count() {
            return Err("size counter out of sync".into());
        }
        // Global recount of the dependent sets.
        let mut exp1: Vec<Vec<u32>> = vec![Vec::new(); self.shadow.capacity()];
        let mut exp2: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shadow.capacity()];
        for u in self.shadow.vertices() {
            if self.in_sol[u as usize] {
                if let Some(w) = self.shadow.neighbors(u).find(|&w| self.in_sol[w as usize]) {
                    return Err(format!("merged solution not independent: ({u}, {w})"));
                }
                continue;
            }
            let parents: Vec<u32> = self
                .shadow
                .neighbors(u)
                .filter(|&w| self.in_sol[w as usize])
                .collect();
            match parents.len() {
                0 => return Err(format!("merged solution not maximal: {u} is free")),
                1 => exp1[parents[0] as usize].push(u),
                2 if self.k2 => {
                    let (a, b) = (parents[0].min(parents[1]), parents[0].max(parents[1]));
                    exp2[a as usize].push((b, u));
                    exp2[b as usize].push((a, u));
                }
                _ => {}
            }
        }
        let mut got1: Vec<Vec<u32>> = vec![Vec::new(); self.shadow.capacity()];
        let mut got2: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shadow.capacity()];
        for r in self.bcast(|| Cmd::DumpState) {
            if let ReplyData::Dump(rows) = r.data {
                for (v, d1, d2) in rows {
                    got1[v as usize] = d1;
                    got2[v as usize] = d2;
                }
            }
        }
        for v in 0..self.shadow.capacity() {
            exp1[v].sort_unstable();
            exp2[v].sort_unstable();
            if exp1[v] != got1[v] {
                return Err(format!(
                    "¯I₁({v}) drift: expected {:?}, cells hold {:?}",
                    exp1[v], got1[v]
                ));
            }
            if exp2[v] != got2[v] {
                return Err(format!(
                    "¯I₂ rows of {v} drift: expected {:?}, cells hold {:?}",
                    exp2[v], got2[v]
                ));
            }
        }
        Ok(())
    }
}

/// Validates a builder for the canonical sharded engines and splits it
/// into its parts. `k ≤ 2`: the lazy `GenericKSwap` collection mode has
/// no canonical sharded counterpart.
fn canonical_session(
    builder: EngineBuilder,
) -> Result<(DynamicGraph, Vec<u32>, bool, usize, Partitioner), EngineError> {
    let shards = builder.shard_count();
    let partitioner = builder.partitioner_choice();
    let session = builder.into_session()?;
    if session.k > 2 {
        return Err(EngineError::BadParameter(
            "sharded maintenance supports k ∈ {1, 2}",
        ));
    }
    Ok((
        session.graph,
        session.initial,
        session.k == 2,
        shards,
        partitioner,
    ))
}

macro_rules! delegate_dynamic_mis {
    ($ty:ty) => {
        impl DynamicMis for $ty {
            fn name(&self) -> &'static str {
                self.inner.name
            }
            fn graph(&self) -> &DynamicGraph {
                &self.inner.shadow
            }
            fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
                self.inner.try_apply(u)
            }
            fn try_apply_batch(
                &mut self,
                updates: &[Update],
            ) -> Result<SolutionDelta, EngineError> {
                self.inner.try_apply_batch(updates)
            }
            fn drain_delta(&mut self) -> SolutionDelta {
                self.inner.drain_delta()
            }
            fn size(&self) -> usize {
                self.inner.size
            }
            fn solution(&self) -> Vec<u32> {
                self.inner.solution()
            }
            fn contains(&self, v: u32) -> bool {
                self.inner.in_sol.get(v as usize).copied().unwrap_or(false)
            }
            fn heap_bytes(&self) -> usize {
                // `heap_bytes` needs a cell round-trip, which needs
                // `&mut`; report the coordinator-resident state only for
                // the immutable trait call.
                self.inner.shadow.heap_bytes() + self.inner.in_sol.capacity()
            }
        }
    };
}

/// Sharded parallel maintenance: `P` degree-aware vertex-space shards,
/// each with its own maintenance cell on its own writer thread, driven
/// through the canonical two-phase boundary protocol.
///
/// The maintained solution is globally independent, maximal, and
/// k-maximal (`k ∈ {1, 2}`), and — because every protocol decision is
/// resolved against global vertex ids — **identical for every shard
/// count**, including the sequential reference [`CanonicalMis`].
///
/// ```
/// use dynamis_core::{DynamicMis, EngineBuilder};
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_shard::{CanonicalMis, ShardedEngine};
///
/// let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
/// let mut sharded: ShardedEngine =
///     EngineBuilder::on(g.clone()).k(2).shards(3).build_as().unwrap();
/// let mut reference: CanonicalMis = EngineBuilder::on(g).k(2).build_as().unwrap();
///
/// for u in [Update::RemoveEdge(2, 3), Update::InsertEdge(0, 2)] {
///     sharded.try_apply(&u).unwrap();
///     reference.try_apply(&u).unwrap();
/// }
/// assert_eq!(sharded.solution(), reference.solution());
/// ```
pub struct ShardedEngine {
    inner: Orchestrator<ThreadCells>,
}

delegate_dynamic_mis!(ShardedEngine);

impl ShardedEngine {
    fn build(
        builder: EngineBuilder,
        logs: Option<Vec<Arc<SharedLog>>>,
    ) -> Result<Self, EngineError> {
        let (shadow, initial, k2, shards, partitioner) = canonical_session(builder)?;
        let map = ShardMap::with_partitioner(&shadow, shards, partitioner);
        let (cells, notes) = build_cells(&shadow, &map, &initial, k2, logs.as_deref());
        let name = if k2 {
            "ShardedTwoSwap"
        } else {
            "ShardedOneSwap"
        };
        let t = ThreadCells::spawn(cells);
        Ok(ShardedEngine {
            inner: Orchestrator::new(t, map, shadow, &initial, k2, name, notes),
        })
    }

    /// Builds with per-shard broadcast logs attached: each cell
    /// publishes its owned share of every epoch's delta to its own log
    /// (see [`dynamis_serve::ShardedReader`]).
    pub fn from_builder_with_logs(
        builder: EngineBuilder,
        logs: Vec<Arc<SharedLog>>,
    ) -> Result<Self, EngineError> {
        assert_eq!(
            logs.len(),
            builder.shard_count(),
            "one log per shard required"
        );
        Self::build(builder, Some(logs))
    }

    /// Number of shards (writer threads) this engine runs.
    pub fn shards(&self) -> usize {
        self.inner.t.shards()
    }

    /// The partitioning strategy behind this engine's [`ShardMap`].
    pub fn partitioner(&self) -> Partitioner {
        self.inner.map.partitioner()
    }

    /// Cut size and per-shard degree loads of the current partition.
    pub fn partition_stats(&self) -> (usize, Vec<u64>) {
        (
            self.inner.map.cut_edges(&self.inner.shadow),
            self.inner.map.degree_loads(&self.inner.shadow),
        )
    }

    /// `(exchanges, commands)` the coordinator has issued — the unit of
    /// coordination cost (one exchange = one barriered round-trip to a
    /// set of cells).
    pub fn coordination_stats(&self) -> (u64, u64) {
        (self.inner.exchanges, self.inner.cmds_sent)
    }

    /// Exhaustive cross-shard audit — recomputes every cell's state from
    /// scratch and verifies the merged solution plus the distributed
    /// dependent sets. Test/debug use: O(n + m) plus a cell round-trip.
    pub fn check_consistency(&mut self) -> Result<(), String> {
        self.inner.check_consistency()
    }

    /// Heap footprint including every cell's state (needs the cell
    /// round-trip the trait's `&self` method cannot perform).
    pub fn heap_bytes_full(&mut self) -> usize {
        self.inner.heap_bytes()
    }
}

impl BuildableEngine for ShardedEngine {
    /// Honors [`EngineBuilder::shards`] (default 1) and `k ∈ {1, 2}`.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        Self::build(builder, None)
    }
}

/// The sequential reference for the sharded protocol: one cell, no
/// threads, direct calls — the same canonical decision rules, so its
/// solution is *identical* to [`ShardedEngine`]'s at any shard count.
/// The cross-shard equivalence proptests pin that.
pub struct CanonicalMis {
    inner: Orchestrator<InlineCells>,
}

delegate_dynamic_mis!(CanonicalMis);

impl CanonicalMis {
    /// Exhaustive audit; see [`ShardedEngine::check_consistency`].
    pub fn check_consistency(&mut self) -> Result<(), String> {
        self.inner.check_consistency()
    }
}

impl BuildableEngine for CanonicalMis {
    /// Ignores [`EngineBuilder::shards`] — the reference is always a
    /// single inline cell.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        let (shadow, initial, k2, _, _) = canonical_session(builder)?;
        let map = ShardMap::degree_aware(&shadow, 1);
        let (cells, notes) = build_cells(&shadow, &map, &initial, k2, None);
        let name = if k2 { "CanonTwoSwap" } else { "CanonOneSwap" };
        let t = InlineCells { cells };
        Ok(CanonicalMis {
            inner: Orchestrator::new(t, map, shadow, &initial, k2, name, notes),
        })
    }
}
