//! The coordinator: canonical sharded maintenance over a set of cells.
//!
//! The [`Orchestrator`] drives the barriered phases described in
//! [`crate`]'s docs against any [`Transport`] — worker threads
//! ([`ShardedEngine`], one writer thread per shard) or direct calls
//! ([`CanonicalMis`], the sequential reference the equivalence tests
//! compare against). Every tie-break is resolved against global vertex
//! ids, so the maintained solution is a pure function of the update
//! sequence: the same for every shard count and for both transports.

use crate::cell::ShardCell;
use crate::protocol::{merge_minus, CellOp, Cmd, EndInfo, Note, Reply, ReplyData, SwapProposal};
use dynamis_core::{
    validate_update, BuildableEngine, DeltaFeed, DynamicMis, EngineBuilder, EngineError,
    EngineStats, SolutionDelta,
};
use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::{apply_update, DynamicGraph, Partitioner, ShardMap, Update};
use dynamis_obs::{Counter, Stage};
use dynamis_serve::SharedLog;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How cell work is executed: inline (sequential reference) or on one
/// writer thread per shard. The exchange is split into its two halves
/// so the coordinator can *pipeline*: post a commit broadcast, keep
/// building the next phase on its own shadow state, and collect the
/// replies only when it next needs cell answers.
pub(crate) trait Transport {
    fn shards(&self) -> usize;
    /// Sends the commands (grouped by shard, FIFO order preserved per
    /// shard — several commands to one shard are legal). All addressed
    /// cells run concurrently under a threaded transport.
    fn submit(&mut self, cmds: Vec<(usize, Cmd)>);
    /// Collects one reply per submitted command, in submission order.
    /// `submit` immediately followed by `collect` is the classic
    /// barriered exchange.
    fn collect(&mut self, order: &[usize]) -> Vec<(usize, Reply)>;
}

/// Direct in-place execution (no threads): the sequential reference.
/// Commands execute eagerly at `submit`; the buffered replies make the
/// split-phase protocol observationally identical to the barriered one.
pub(crate) struct InlineCells {
    cells: Vec<ShardCell>,
    queued: Vec<std::collections::VecDeque<Reply>>,
}

impl InlineCells {
    fn new(cells: Vec<ShardCell>) -> Self {
        let queued = (0..cells.len())
            .map(|_| std::collections::VecDeque::new())
            .collect();
        InlineCells { cells, queued }
    }
}

impl Transport for InlineCells {
    fn shards(&self) -> usize {
        self.cells.len()
    }

    fn submit(&mut self, cmds: Vec<(usize, Cmd)>) {
        for (s, c) in cmds {
            let reply = self.cells[s].handle(c);
            self.queued[s].push_back(reply);
        }
    }

    fn collect(&mut self, order: &[usize]) -> Vec<(usize, Reply)> {
        order
            .iter()
            .map(|&s| {
                (
                    s,
                    self.queued[s].pop_front().expect("one reply per command"),
                )
            })
            .collect()
    }
}

/// One writer thread per shard, request/reply channels per cell.
pub(crate) struct ThreadCells {
    txs: Vec<mpsc::Sender<Cmd>>,
    rxs: Vec<mpsc::Receiver<Reply>>,
    joins: Vec<Option<JoinHandle<()>>>,
}

impl ThreadCells {
    fn spawn(cells: Vec<ShardCell>) -> Self {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        let mut joins = Vec::new();
        for (i, mut cell) in cells.into_iter().enumerate() {
            let (ctx, crx) = mpsc::channel::<Cmd>();
            let (rtx, rrx) = mpsc::channel::<Reply>();
            let join = std::thread::Builder::new()
                .name(format!("dynamis-shard-{i}"))
                .spawn(move || {
                    // Per-cell phase timing: how long this cell spends
                    // executing commands, across all phases (gated).
                    let handle_ns = Stage::global(&format!("shard_cell{i}_handle_ns"));
                    while let Ok(cmd) = crx.recv() {
                        if matches!(cmd, Cmd::Stop) {
                            break;
                        }
                        let t = handle_ns.begin();
                        let reply = cell.handle(cmd);
                        handle_ns.end(t);
                        if rtx.send(reply).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn shard cell thread");
            txs.push(ctx);
            rxs.push(rrx);
            joins.push(Some(join));
        }
        ThreadCells { txs, rxs, joins }
    }
}

impl Transport for ThreadCells {
    fn shards(&self) -> usize {
        self.txs.len()
    }

    fn submit(&mut self, cmds: Vec<(usize, Cmd)>) {
        for (s, c) in cmds {
            self.txs[s].send(c).expect("shard cell thread died");
        }
    }

    fn collect(&mut self, order: &[usize]) -> Vec<(usize, Reply)> {
        order
            .iter()
            .map(|&s| (s, self.rxs[s].recv().expect("shard cell thread died")))
            .collect()
    }
}

impl Drop for ThreadCells {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Stop);
        }
        for j in &mut self.joins {
            if let Some(j) = j.take() {
                let _ = j.join();
            }
        }
    }
}

/// Per-shard pending-work summary, refreshed from every [`Reply`]. A
/// cell's state changes only through commands, so the hint from its
/// latest reply is always current — phases with no hinted cell are
/// skipped without any exchange.
#[derive(Debug, Clone, Copy)]
struct Hints {
    freed: bool,
    dirty1: bool,
    dirty2: bool,
}

/// Counters of the fused swap rounds — how much concurrency the
/// footprint-independence rule actually extracts. Exposed through
/// [`ShardedEngine::swap_round_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapRoundStats {
    /// Fused rounds that committed at least one swap.
    pub rounds: u64,
    /// Swaps committed in total (so `swaps / rounds` is the mean wave).
    pub swaps: u64,
    /// Largest number of swaps co-committed in one round.
    pub max_wave: u64,
    /// Proposals deferred to a later round by a footprint conflict
    /// (or by the [`EngineBuilder::swap_wave`] cap).
    pub deferred: u64,
}

/// Knobs + identity of one orchestrator, split off the builder.
struct OrchConfig {
    k2: bool,
    name: &'static str,
    /// Max swaps co-committed per fused round (`usize::MAX` = no cap).
    wave: usize,
    /// Split-phase commit exchanges (overlap cell application with
    /// coordinator-side work). Observationally neutral.
    pipeline: bool,
}

/// The phase driver. Owns the shadow graph (update validation, `graph()`
/// view), the global membership mirror, the merged delta feed, and the
/// [`ShardMap`]; everything per-vertex lives in the cells.
pub(crate) struct Orchestrator<T: Transport> {
    t: T,
    map: ShardMap,
    shadow: DynamicGraph,
    in_sol: Vec<bool>,
    size: usize,
    feed: DeltaFeed,
    stats: EngineStats,
    swap_stats: SwapRoundStats,
    k2: bool,
    name: &'static str,
    /// Max swaps accepted per fused round; part of the canonical
    /// function (any fixed value is shard-count independent).
    wave: usize,
    /// Post commit broadcasts split-phase and collect lazily.
    pipeline: bool,
    /// Shard order of the one in-flight posted exchange, if any. Every
    /// exchange and every hint read `sync`s first, so cells always see
    /// the same command stream as in the fully barriered protocol.
    pending: Option<Vec<usize>>,
    /// Globally-refuted swap candidates awaiting a dirty-set clear,
    /// valid only while no commit intervenes (see
    /// [`Orchestrator::swap_round`]).
    clears1: Vec<u32>,
    clears2: Vec<u32>,
    hints: Vec<Hints>,
    /// Coordinator round-trips — the sharded architecture's unit of
    /// coordination cost (exposed through `coordination_stats`).
    exchanges: u64,
    cmds_sent: u64,
    obs: ShardObs,
}

/// Cached telemetry handles for the coordinator: the three sharded
/// stage timers (gated — see [`dynamis_obs::Stage`]) plus the always-on
/// exchange/command counters mirroring `coordination_stats`.
struct ShardObs {
    exchange: Stage,
    resolve: Stage,
    commit: Stage,
    exchanges: Arc<Counter>,
    cmds: Arc<Counter>,
}

impl ShardObs {
    fn new() -> Self {
        let g = dynamis_obs::global();
        ShardObs {
            exchange: Stage::global("shard_exchange_ns"),
            resolve: Stage::global("shard_resolve_ns"),
            commit: Stage::global("shard_commit_ns"),
            exchanges: g.counter("shard_exchanges_total"),
            cmds: g.counter("shard_cmds_total"),
        }
    }
}

/// A batched run of membership-neutral structural ops, keyed per cell.
/// Built by [`Orchestrator::apply_updates`], shipped by
/// [`Orchestrator::flush_segment`] in one exchange.
struct Segment {
    per_cell: Vec<Vec<CellOp>>,
    /// Op ids of removed both-outsider edges, in op order (they feed
    /// the candidate rules after the flush).
    removed: Vec<u32>,
    next_op: u32,
    any: bool,
}

impl Segment {
    fn new(shards: usize) -> Self {
        Segment {
            per_cell: vec![Vec::new(); shards],
            removed: Vec::new(),
            next_op: 0,
            any: false,
        }
    }

    fn edge(&mut self, map: &ShardMap, insert: bool, u: u32, v: u32, u_in: bool, v_in: bool) {
        let op = self.next_op;
        self.next_op += 1;
        let cell_op = CellOp::Edge {
            op,
            insert,
            u,
            v,
            u_in,
            v_in,
        };
        let (ou, ov) = (map.owner(u), map.owner(v));
        self.per_cell[ou].push(cell_op.clone());
        if ov != ou {
            self.per_cell[ov].push(cell_op);
        }
        if !insert && !u_in && !v_in {
            self.removed.push(op);
        }
        self.any = true;
    }

    fn add_vertex(&mut self, id: u32, owner: u16, neighbors: Arc<Vec<(u32, bool)>>) {
        self.next_op += 1;
        for list in &mut self.per_cell {
            list.push(CellOp::AddVertex {
                id,
                owner,
                neighbors: Arc::clone(&neighbors),
            });
        }
        self.any = true;
    }

    fn rem_outsider(&mut self, v: u32) {
        self.next_op += 1;
        for list in &mut self.per_cell {
            list.push(CellOp::RemOutsider { v });
        }
        self.any = true;
    }

    fn reset(&mut self) {
        for list in &mut self.per_cell {
            list.clear();
        }
        self.removed.clear();
        self.next_op = 0;
        self.any = false;
    }
}

/// Builds the cells plus their bootstrap notes for the given session.
fn build_cells(
    shadow: &DynamicGraph,
    map: &ShardMap,
    initial: &[u32],
    k2: bool,
    logs: Option<&[Arc<SharedLog>]>,
) -> (Vec<ShardCell>, Vec<Note>) {
    let mut cells = Vec::new();
    let mut notes = Vec::new();
    for s in 0..map.shards() {
        let log = logs.map(|l| Arc::clone(&l[s]));
        let (cell, mut n) = ShardCell::new(s, k2, shadow, map, initial, log);
        cells.push(cell);
        notes.append(&mut n);
    }
    (cells, notes)
}

impl<T: Transport> Orchestrator<T> {
    fn new(
        t: T,
        map: ShardMap,
        shadow: DynamicGraph,
        initial: &[u32],
        cfg: OrchConfig,
        bootstrap_notes: Vec<Note>,
    ) -> Self {
        let mut in_sol = vec![false; shadow.capacity()];
        let mut feed = DeltaFeed::default();
        for &v in initial {
            in_sol[v as usize] = true;
            feed.record_in(v);
        }
        let shards = t.shards();
        let mut o = Orchestrator {
            t,
            map,
            shadow,
            size: initial.len(),
            in_sol,
            feed,
            stats: EngineStats::default(),
            swap_stats: SwapRoundStats::default(),
            k2: cfg.k2,
            name: cfg.name,
            wave: cfg.wave,
            pipeline: cfg.pipeline,
            pending: None,
            clears1: Vec::new(),
            clears2: Vec::new(),
            // Conservative until each cell's first reply arrives.
            hints: vec![
                Hints {
                    freed: true,
                    dirty1: true,
                    dirty2: true,
                };
                shards
            ],
            exchanges: 0,
            cmds_sent: 0,
            obs: ShardObs::new(),
        };
        o.route_notes(bootstrap_notes);
        o.settle();
        // Close the bootstrap span: the first update's delta must not
        // absorb it, while the drainable feed still replays it. (Cell
        // feeds close their spans lazily, at `Drain`.)
        let _ = o.feed.finish_update();
        o
    }

    #[inline]
    fn owner(&self, v: u32) -> usize {
        self.map.owner(v)
    }

    /// Collects (and fully absorbs) the pending posted exchange, if
    /// any: hints refresh and the replies' notes are routed before
    /// anything else is read or sent. Every exchange and every hint
    /// read syncs first, so pipelining never changes what the protocol
    /// observes — only when the coordinator waits.
    fn sync(&mut self) {
        let Some(order) = self.pending.take() else {
            return;
        };
        let replies = self.t.collect(&order);
        let mut notes = Vec::new();
        for (s, r) in replies {
            self.hints[s] = Hints {
                freed: r.freed,
                dirty1: r.dirty1,
                dirty2: r.dirty2,
            };
            notes.extend(r.notes);
        }
        self.route_notes(notes);
    }

    /// The barriered exchange, recording every reply's work hints.
    fn exchange(&mut self, cmds: Vec<(usize, Cmd)>) -> Vec<(usize, Reply)> {
        self.sync();
        self.exchanges += 1;
        self.cmds_sent += cmds.len() as u64;
        self.obs.exchanges.inc();
        self.obs.cmds.add(cmds.len() as u64);
        let t = self.obs.exchange.begin();
        let order: Vec<usize> = cmds.iter().map(|&(s, _)| s).collect();
        self.t.submit(cmds);
        let replies = self.t.collect(&order);
        self.obs.exchange.end(t);
        for (s, r) in &replies {
            self.hints[*s] = Hints {
                freed: r.freed,
                dirty1: r.dirty1,
                dirty2: r.dirty2,
            };
        }
        replies
    }

    /// Fire-and-forget exchange for commands whose replies carry only
    /// notes and hints (flip broadcasts, solution-vertex removals,
    /// drains). Under `pipeline` the collect half is deferred to the
    /// next [`Orchestrator::sync`], overlapping the cells' application
    /// (and per-shard epoch publication) with the coordinator's
    /// shadow-side work on the next segment or scan.
    fn post(&mut self, cmds: Vec<(usize, Cmd)>) {
        self.sync();
        self.exchanges += 1;
        self.cmds_sent += cmds.len() as u64;
        self.obs.exchanges.inc();
        self.obs.cmds.add(cmds.len() as u64);
        let order: Vec<usize> = cmds.iter().map(|&(s, _)| s).collect();
        self.t.submit(cmds);
        self.pending = Some(order);
        if !self.pipeline {
            self.sync();
        }
    }

    /// One command to every shard; replies come back in shard order.
    fn bcast(&mut self, mk: impl Fn() -> Cmd) -> Vec<Reply> {
        let cmds = (0..self.t.shards()).map(|s| (s, mk())).collect();
        self.exchange(cmds).into_iter().map(|(_, r)| r).collect()
    }

    /// One command to each of the given shards (ascending).
    fn multicast(&mut self, shards: &[usize], mk: impl Fn() -> Cmd) -> Vec<(usize, Reply)> {
        let cmds = shards.iter().map(|&s| (s, mk())).collect();
        self.exchange(cmds)
    }

    /// Routes dependent-set notes to the owners of the solution vertices
    /// they describe. One exchange; note handling emits nothing further.
    fn route_notes(&mut self, notes: Vec<Note>) {
        if notes.is_empty() {
            return;
        }
        let p = self.t.shards();
        let mut per: Vec<Vec<Note>> = vec![Vec::new(); p];
        for n in notes {
            match n {
                Note::Dep1Add { p: pa, .. } | Note::Dep1Del { p: pa, .. } => {
                    per[self.owner(pa)].push(n)
                }
                Note::Dep2Add { a, b, .. } | Note::Dep2Del { a, b, .. } => {
                    let (oa, ob) = (self.owner(a), self.owner(b));
                    per[oa].push(n);
                    if ob != oa {
                        per[ob].push(n);
                    }
                }
                Note::Dirty1 { v } | Note::Dirty2 { v } => per[self.owner(v)].push(n),
            }
        }
        let cmds: Vec<(usize, Cmd)> = per
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(s, v)| (s, Cmd::Notes(v)))
            .collect();
        if cmds.is_empty() {
            return;
        }
        for (_, r) in self.exchange(cmds) {
            debug_assert!(r.notes.is_empty(), "note handling is terminal");
        }
    }

    /// Commits membership flips: mirror + merged feed first, then the
    /// flip delivery (posted split-phase — its count-transition notes
    /// route at the next sync). Flips are routed to exactly the cells
    /// that can observe them — each flipped vertex's owner plus the
    /// owners of its neighbors; any other cell re-syncs membership when
    /// an `Edge` command first connects it to the vertex.
    fn apply_flips(&mut self, flips: Vec<(u32, bool)>) {
        let t_commit = self.obs.commit.begin();
        // Any commit invalidates pending refutation clears: these flips
        // may re-arm a refuted candidate for real, so the dirty entries
        // stay and re-resolve instead of riding a now-unsound clear.
        self.clears1.clear();
        self.clears2.clear();
        let mut shards: Vec<usize> = Vec::new();
        for &(v, enter) in &flips {
            debug_assert_ne!(self.in_sol[v as usize], enter, "redundant flip of {v}");
            self.in_sol[v as usize] = enter;
            if enter {
                self.feed.record_in(v);
                self.size += 1;
            } else {
                self.feed.record_out(v);
                self.size -= 1;
            }
            shards.push(self.owner(v));
            shards.extend(self.shadow.neighbors(v).map(|w| self.owner(w)));
        }
        shards.sort_unstable();
        shards.dedup();
        let arc = Arc::new(flips);
        let cmds: Vec<(usize, Cmd)> = shards
            .into_iter()
            .map(|s| (s, Cmd::Flips(Arc::clone(&arc))))
            .collect();
        self.post(cmds);
        self.obs.commit.end(t_commit);
    }

    /// Shards whose latest reply hinted pending work of the given kind.
    /// Syncs first: a posted commit still in flight may free or dirty
    /// vertices, and a stale `false` hint would skip a required phase.
    fn hinted(&mut self, f: impl Fn(&Hints) -> bool) -> Vec<usize> {
        self.sync();
        self.hints
            .iter()
            .enumerate()
            .filter(|(_, h)| f(h))
            .map(|(s, _)| s)
            .collect()
    }

    /// Maximality repair to quiescence: the unique priority-greedy fill
    /// of the freed set, computed in local-minima rounds with the
    /// boundary frontiers exchanged between rounds. Only cells hinting
    /// freed vertices participate in a round.
    fn fill_loop(&mut self) {
        loop {
            let who = self.hinted(|h| h.freed);
            if who.is_empty() {
                return;
            }
            // A single freed cell needs no frontier poll: the foreign
            // half of the frontier union is empty (no other cell holds
            // a freed vertex) and a cell looks its own freed set up
            // locally — the round command's union can be empty. Always
            // the case at P = 1, and the common case under a locality
            // partition. The hint may be conservatively stale (cells
            // start hinted until their first reply), so an empty round
            // here means "nothing freed after all", not a stall.
            let single = who.len() == 1;
            let (round, arc) = if single {
                (who, Arc::new(Vec::new()))
            } else {
                let mut bnd: Vec<u32> = Vec::new();
                let mut round: Vec<usize> = Vec::new();
                for (s, r) in self.multicast(&who, || Cmd::FillPoll) {
                    if let ReplyData::Fill { any, boundary } = r.data {
                        if any {
                            round.push(s);
                        }
                        bnd.extend(boundary);
                    } else {
                        unreachable!("FillPoll reply");
                    }
                }
                if round.is_empty() {
                    return;
                }
                bnd.sort_unstable();
                (round, Arc::new(bnd))
            };
            let mut entered: Vec<u32> = Vec::new();
            for (_, r) in self.multicast(&round, || Cmd::FillRound(Arc::clone(&arc))) {
                if let ReplyData::Entered(e) = r.data {
                    entered.extend(e);
                } else {
                    unreachable!("FillRound reply");
                }
            }
            if single && entered.is_empty() {
                // Stale hint: the round reply refreshed it; re-check.
                continue;
            }
            // The globally smallest freed vertex is always a local
            // minimum, so every polled round makes progress.
            debug_assert!(!entered.is_empty(), "fill round must progress");
            entered.sort_unstable();
            self.stats.repairs += entered.len() as u64;
            self.apply_flips(entered.into_iter().map(|v| (v, true)).collect());
        }
    }

    /// Queues one `AdjAmong` probe over `list` (sorted, deduplicated) —
    /// one command per owner shard — and returns the reply span.
    fn queue_adj_among(
        cmds: &mut Vec<(usize, Cmd)>,
        list: Vec<u32>,
        owner: impl Fn(u32) -> usize,
    ) -> (usize, usize) {
        let at = cmds.len();
        let mut shards: Vec<usize> = list.iter().map(|&v| owner(v)).collect();
        shards.sort_unstable();
        shards.dedup();
        let n = shards.len();
        let arc = Arc::new(list);
        cmds.extend(
            shards
                .into_iter()
                .map(|s| (s, Cmd::AdjAmong(Arc::clone(&arc)))),
        );
        (at, n)
    }

    /// Unions an `AdjAmong` reply span into a pair-key set.
    fn merge_adj(replies: &[ReplyData]) -> FxHashSet<u64> {
        let mut adj = FxHashSet::default();
        for r in replies {
            if let ReplyData::Edges(edges) = r {
                adj.extend(edges.iter().map(|&(a, b)| pair_key(a, b)));
            } else {
                unreachable!("AdjAmong reply");
            }
        }
        adj
    }

    /// One fused swap round. One `SwapScan` exchange collects *every*
    /// actionable candidate from the hinted cells; the merged list is
    /// walked in ascending candidate order (keys are unique — one owner
    /// per candidate — so the order is total and shard-count
    /// independent), each entry resolved against the *pre-round* state:
    /// ready proposals directly, `Global` ones through at most two
    /// round-fused gather exchanges (see
    /// [`Orchestrator::resolve_round`]), so a round's coordination cost
    /// does not grow with its candidate count. Every resolved proposal
    /// whose 1-hop footprint is
    /// disjoint from the ones already accepted (up to the `wave` cap)
    /// commits; all accepted flips post in **one** `Flips` broadcast.
    /// Conflicting proposals stay dirty and re-resolve next round
    /// against the post-commit state, so the exchange count scales with
    /// the number of *conflicting* swaps, not the number of swaps.
    ///
    /// Refuted candidates — whether a cell refuted them locally or the
    /// coordinator's pipeline did — stay dirty and are queued as clears
    /// flushed at settle exit; any intervening commit drops the queue
    /// (see [`Orchestrator::apply_flips`]) because its flips may have
    /// re-armed the candidate for real. Treating both refutation kinds
    /// identically keeps the dirty sets' evolution — and therefore the
    /// candidate order of every later round — shard-count independent.
    fn swap_round(&mut self, two: bool) -> bool {
        let who = self.hinted(|h| if two { h.dirty2 } else { h.dirty1 });
        if who.is_empty() {
            return false;
        }
        let cmds: Vec<(usize, Cmd)> = who.iter().map(|&s| (s, Cmd::SwapScan { two })).collect();
        let mut proposals: Vec<SwapProposal> = Vec::new();
        for (_, r) in self.exchange(cmds) {
            match r.data {
                ReplyData::Swaps {
                    proposals: p,
                    refuted,
                } => {
                    proposals.extend(p);
                    let queue = if two {
                        &mut self.clears2
                    } else {
                        &mut self.clears1
                    };
                    queue.extend(refuted);
                }
                _ => unreachable!("SwapScan reply"),
            }
        }
        proposals.sort_unstable_by_key(SwapProposal::key);
        let deferred_before = self.swap_stats.deferred;
        let t_resolve = self.obs.resolve.begin();
        let resolved = self.resolve_round(&proposals);
        self.obs.resolve.end(t_resolve);
        let mut flips: Vec<(u32, bool)> = Vec::new();
        let mut marks: FxHashSet<u32> = FxHashSet::default();
        let mut accepted: u64 = 0;
        for (p, res) in proposals.iter().zip(resolved) {
            if accepted as usize >= self.wave {
                // Capped: the remainder stays dirty for the next round.
                self.swap_stats.deferred += 1;
                continue;
            }
            // A candidate already inside an accepted footprint clashes
            // no matter how it resolves (it leaves in its own proposal),
            // so defer it without consuming its resolution.
            if marks.contains(&p.key()) {
                self.swap_stats.deferred += 1;
                continue;
            }
            let Some(fl) = res else {
                // Refuted against the pre-round state; cleared only if
                // that state survives to the next scan. Only candidates
                // the walk actually reaches queue a clear — deferred
                // ones re-resolve against the post-commit state, where
                // the same refutation need not hold.
                match *p {
                    SwapProposal::GlobalOne { v, .. } => self.clears1.push(v),
                    SwapProposal::GlobalTwo { v, .. } => self.clears2.push(v),
                    _ => unreachable!("ready proposals always resolve"),
                }
                continue;
            };
            if self.wave_admits(&fl, &mut marks) {
                if two {
                    self.stats.two_swaps += 1;
                } else {
                    self.stats.one_swaps += 1;
                }
                accepted += 1;
                flips.extend(fl);
            } else {
                self.swap_stats.deferred += 1;
            }
        }
        let deferred = self.swap_stats.deferred - deferred_before;
        if deferred > 0 {
            dynamis_obs::event(
                "swap_deferral",
                format!(
                    "{}-swap round deferred {deferred} of {} proposals",
                    if two { 2 } else { 1 },
                    proposals.len()
                ),
            );
        }
        if accepted == 0 {
            return false;
        }
        self.swap_stats.rounds += 1;
        self.swap_stats.swaps += accepted;
        self.swap_stats.max_wave = self.swap_stats.max_wave.max(accepted);
        // Committed candidates leave the solution, so their dirty
        // entries prune themselves at the next scan.
        self.apply_flips(flips);
        true
    }

    /// Footprint-independence test for one resolved proposal, on the
    /// coordinator's shadow (zero exchanges). A proposal's footprint is
    /// its enterers' closed 1-hop balls plus its leaver *vertices*: an
    /// enterer's solution parents are exactly its own proposal's
    /// leavers, so an edge between an enterer and a foreign leaver is
    /// impossible and leaver balls would only over-block (a hub leaving
    /// would veto every swap around it). A proposal is admissible iff
    /// none of its flips and none of its enterers' neighbors are inside
    /// an accepted footprint; admitting marks its own. The first
    /// resolved proposal of a round always admits, so every committing
    /// round makes progress.
    fn wave_admits(&self, flips: &[(u32, bool)], marks: &mut FxHashSet<u32>) -> bool {
        let clash = flips.iter().any(|&(v, enter)| {
            marks.contains(&v) || (enter && self.shadow.neighbors(v).any(|w| marks.contains(&w)))
        });
        if clash {
            return false;
        }
        for &(v, enter) in flips {
            marks.insert(v);
            if enter {
                marks.extend(self.shadow.neighbors(v));
            }
        }
        true
    }

    /// Resolves every candidate of a round against the pre-round state
    /// in at most **two** batched exchanges, independent of candidate
    /// count. Resolution is read-only — flips post only at round end —
    /// so every candidate's gather reads the same frozen state and they
    /// all fuse: exchange one carries each 2-swap candidate's partner
    /// `¯I₁` rows and pivot neighborhoods plus each 1-swap candidate's
    /// `AdjAmong` probe; exchange two carries the surviving 2-swap
    /// candidates' `AdjAmong` probes (their replacement sets depend on
    /// exchange one). Replies align positionally with commands, so each
    /// candidate recovers its slice by span.
    ///
    /// Per candidate the outcome is canonical: a 1-swap takes the
    /// lexicographically smallest non-adjacent pair of `¯I₁(v)`; a
    /// 2-swap walks its pairs `(a, b)` in lexicographic order, each
    /// pair's pivots `x` ascending, and takes the first admissible
    /// `(y, z)` in lexicographic order — `{a, b}` leave, `{x, y, z}`
    /// enter. A 2-swap whose probes carry no pivots refutes with zero
    /// exchange share. Candidates the walk later defers (wave cap or
    /// marked footprint) are resolved here too and their results
    /// discarded — wasted payload, but resolving lazily would cost one
    /// exchange per candidate, exactly the round-count-independent cost
    /// this path exists to avoid.
    fn resolve_round(&mut self, proposals: &[SwapProposal]) -> Vec<Option<Vec<(u32, bool)>>> {
        enum Plan {
            Ready(Vec<(u32, bool)>),
            Refuted,
            One { at: usize, n: usize },
            Two { at: usize, live: Vec<usize> },
        }
        let mut cmds: Vec<(usize, Cmd)> = Vec::new();
        let mut plans: Vec<Plan> = Vec::with_capacity(proposals.len());
        for p in proposals {
            match p {
                SwapProposal::One { v, u1, u2 } => {
                    plans.push(Plan::Ready(vec![(*v, false), (*u1, true), (*u2, true)]));
                }
                SwapProposal::Two { a, b, x, y, z, .. } => {
                    plans.push(Plan::Ready(vec![
                        (*a, false),
                        (*b, false),
                        (*x, true),
                        (*y, true),
                        (*z, true),
                    ]));
                }
                SwapProposal::GlobalOne { bar1, .. } => {
                    debug_assert!(bar1.len() >= 2, "SwapScan pre-validates |¯I₁| ≥ 2");
                    let (at, n) = Self::queue_adj_among(&mut cmds, bar1.clone(), |v| self.owner(v));
                    plans.push(Plan::One { at, n });
                }
                SwapProposal::GlobalTwo { v, pairs, .. } => {
                    let live: Vec<usize> = (0..pairs.len())
                        .filter(|&i| !pairs[i].piv.is_empty())
                        .collect();
                    if live.is_empty() {
                        plans.push(Plan::Refuted);
                        continue;
                    }
                    let at = cmds.len();
                    // Partners' ¯I₁ rows first, then every pivot's open
                    // neighborhood, in canonical pair order.
                    for &i in &live {
                        let pr = &pairs[i];
                        let o = if pr.a == *v { pr.b } else { pr.a };
                        cmds.push((self.owner(o), Cmd::Bar1(o)));
                    }
                    for &i in &live {
                        for &x in &pairs[i].piv {
                            cmds.push((self.owner(x), Cmd::NbrsOf(x)));
                        }
                    }
                    plans.push(Plan::Two { at, live });
                }
            }
        }
        let replies: Vec<ReplyData> = if cmds.is_empty() {
            Vec::new()
        } else {
            self.exchange(cmds)
                .into_iter()
                .map(|(_, r)| r.data)
                .collect()
        };
        let list = |r: &ReplyData| -> Vec<u32> {
            if let ReplyData::List(l) = r {
                l.clone()
            } else {
                unreachable!("list reply")
            }
        };
        struct PendingTwo {
            slot: usize,
            at: usize,
            n: usize,
            // (pair index, pivot, Cy, Cz) in canonical order.
            sets: Vec<(usize, u32, Vec<u32>, Vec<u32>)>,
        }
        let mut out: Vec<Option<Vec<(u32, bool)>>> = Vec::with_capacity(proposals.len());
        let mut cmds_b: Vec<(usize, Cmd)> = Vec::new();
        let mut pending: Vec<PendingTwo> = Vec::new();
        for (slot, (p, plan)) in proposals.iter().zip(plans).enumerate() {
            match plan {
                Plan::Ready(fl) => out.push(Some(fl)),
                Plan::Refuted => out.push(None),
                Plan::One { at, n } => {
                    let SwapProposal::GlobalOne { v, bar1 } = p else {
                        unreachable!()
                    };
                    let adj = Self::merge_adj(&replies[at..at + n]);
                    let mut fl = None;
                    'one: for i in 0..bar1.len() {
                        for j in i + 1..bar1.len() {
                            if !adj.contains(&pair_key(bar1[i], bar1[j])) {
                                fl = Some(vec![(*v, false), (bar1[i], true), (bar1[j], true)]);
                                break 'one;
                            }
                        }
                    }
                    out.push(fl);
                }
                Plan::Two { at, live } => {
                    let SwapProposal::GlobalTwo { v, bar1, pairs } = p else {
                        unreachable!()
                    };
                    let mut sets: Vec<(usize, u32, Vec<u32>, Vec<u32>)> = Vec::new();
                    let mut all: Vec<u32> = Vec::new();
                    let mut nx_at = at + live.len();
                    for (li, &i) in live.iter().enumerate() {
                        let pr = &pairs[i];
                        debug_assert!(
                            self.in_sol[pr.a as usize] && self.in_sol[pr.b as usize],
                            "dep2 rows are exact"
                        );
                        let partner = list(&replies[at + li]);
                        let (b1a, b1b) = if pr.a == *v {
                            (bar1, &partner)
                        } else {
                            (&partner, bar1)
                        };
                        for &x in &pr.piv {
                            let nx = list(&replies[nx_at]);
                            nx_at += 1;
                            // Cy = ¯I₁(a) − pivots − N[x]; Cz likewise for b.
                            let cy = merge_minus(b1a, &pr.piv, |w| {
                                w == x || nx.binary_search(&w).is_ok()
                            });
                            if cy.is_empty() {
                                continue;
                            }
                            let cz = merge_minus(b1b, &pr.piv, |w| {
                                w == x || nx.binary_search(&w).is_ok()
                            });
                            if cz.is_empty() {
                                continue;
                            }
                            all.extend(cy.iter().chain(cz.iter()));
                            sets.push((i, x, cy, cz));
                        }
                    }
                    if sets.is_empty() {
                        out.push(None);
                        continue;
                    }
                    all.sort_unstable();
                    all.dedup();
                    let (b_at, n) = Self::queue_adj_among(&mut cmds_b, all, |v| self.owner(v));
                    out.push(None);
                    pending.push(PendingTwo {
                        slot,
                        at: b_at,
                        n,
                        sets,
                    });
                }
            }
        }
        let replies_b: Vec<ReplyData> = if cmds_b.is_empty() {
            Vec::new()
        } else {
            self.exchange(cmds_b)
                .into_iter()
                .map(|(_, r)| r.data)
                .collect()
        };
        for pd in pending {
            let adj = Self::merge_adj(&replies_b[pd.at..pd.at + pd.n]);
            let SwapProposal::GlobalTwo { pairs, .. } = &proposals[pd.slot] else {
                unreachable!()
            };
            'two: for (i, x, cy, cz) in pd.sets {
                let pr = &pairs[i];
                for &y in &cy {
                    for &z in &cz {
                        if z != y && !adj.contains(&pair_key(y, z)) {
                            out[pd.slot] = Some(vec![
                                (pr.a, false),
                                (pr.b, false),
                                (x, true),
                                (y, true),
                                (z, true),
                            ]);
                            break 'two;
                        }
                    }
                }
            }
        }
        out
    }

    /// Drops globally-refuted candidates from their owners' dirty sets
    /// in one batched exchange, so the dirty hints quiesce. Called at
    /// settle exit only: nothing committed since the refutations (a
    /// commit drops the queue), so "no swap at v" still holds.
    fn flush_clears(&mut self, two: bool) {
        let pending = std::mem::take(if two {
            &mut self.clears2
        } else {
            &mut self.clears1
        });
        if pending.is_empty() {
            return;
        }
        let mut per: Vec<Vec<u32>> = vec![Vec::new(); self.t.shards()];
        for c in pending {
            per[self.owner(c)].push(c);
        }
        let cmds: Vec<(usize, Cmd)> = per
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(s, list)| (s, Cmd::ClearDirty { two, list }))
            .collect();
        for (_, r) in self.exchange(cmds) {
            debug_assert!(r.notes.is_empty(), "clears are terminal");
        }
    }

    /// Restores the full invariant: maximality (fill), then no 1-swap,
    /// then (k = 2) no 2-swap — re-filling and re-scanning after every
    /// committed *round*, exactly like Algorithm 1's main loop with each
    /// round committing a whole wave of footprint-independent swaps.
    /// Terminates because every committed swap grows |I| by at least
    /// one. Exits with the refutation queues flushed (dirty hints
    /// quiescent) and no posted exchange outstanding.
    fn settle(&mut self) {
        loop {
            self.fill_loop();
            if self.swap_round(false) {
                continue;
            }
            if self.k2 && self.swap_round(true) {
                continue;
            }
            break;
        }
        self.flush_clears(false);
        if self.k2 {
            self.flush_clears(true);
        }
    }

    /// Applies a run of updates. Membership-neutral structural ops —
    /// every edge flip except an insert between two solution vertices,
    /// vertex inserts, outsider removals — accumulate into per-cell
    /// [`CellOp`] segments and reach the cells in **one** exchange per
    /// segment; only the updates that flip membership at dispatch time
    /// (conflict inserts, solution-vertex removals) are phase
    /// boundaries. Counts stay exact throughout because the cells' case
    /// analysis is membership-driven, not maximality-driven; fill and
    /// swap settling are the caller's business. Returns the first
    /// rejection, with the valid prefix applied.
    fn apply_updates(&mut self, updates: &[Update]) -> Option<(usize, EngineError)> {
        let mut seg = Segment::new(self.t.shards());
        for (index, u) in updates.iter().enumerate() {
            if let Err(e) = validate_update(&self.shadow, u) {
                self.flush_segment(&mut seg);
                return Some((index, e));
            }
            self.stats.updates += 1;
            match u {
                Update::InsertEdge(a, b)
                    if self.in_sol[*a as usize] && self.in_sol[*b as usize] =>
                {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.insert_edge(a, b).expect("validated");
                    seg.edge(&self.map, true, a, b, true, true);
                    self.flush_segment(&mut seg);
                    self.conflict_evict(a, b);
                }
                Update::InsertEdge(a, b) => {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.insert_edge(a, b).expect("validated");
                    let (a_in, b_in) = (self.in_sol[a as usize], self.in_sol[b as usize]);
                    seg.edge(&self.map, true, a, b, a_in, b_in);
                }
                Update::RemoveEdge(a, b) => {
                    let (a, b) = (*a, *b);
                    self.stats.entry_hash_probes += 2;
                    self.shadow.remove_edge(a, b).expect("validated");
                    let (a_in, b_in) = (self.in_sol[a as usize], self.in_sol[b as usize]);
                    seg.edge(&self.map, false, a, b, a_in, b_in);
                }
                Update::InsertVertex { id, neighbors } => {
                    apply_update(&mut self.shadow, u).expect("validated");
                    let owner = self.map.assign_fresh_near(*id, neighbors) as u16;
                    if self.in_sol.len() < self.shadow.capacity() {
                        self.in_sol.resize(self.shadow.capacity(), false);
                    }
                    self.in_sol[*id as usize] = false;
                    let with_sol = Arc::new(
                        neighbors
                            .iter()
                            .map(|&n| (n, self.in_sol[n as usize]))
                            .collect::<Vec<_>>(),
                    );
                    seg.add_vertex(*id, owner, with_sol);
                }
                Update::RemoveVertex(v) => {
                    let v = *v;
                    self.stats.entry_hash_probes += self.shadow.degree(v) as u64;
                    self.shadow.remove_vertex(v).expect("validated");
                    if self.in_sol[v as usize] {
                        // Boundary: the removal flips membership.
                        self.flush_segment(&mut seg);
                        self.in_sol[v as usize] = false;
                        self.feed.record_out(v);
                        self.size -= 1;
                        // Posted: the removal's count-transition notes
                        // route at the next sync, before any exchange.
                        let cmds = (0..self.t.shards())
                            .map(|s| (s, Cmd::RemSolVertex { v }))
                            .collect();
                        self.post(cmds);
                    } else {
                        seg.rem_outsider(v);
                    }
                }
            }
        }
        self.flush_segment(&mut seg);
        None
    }

    /// Ships the accumulated segment to the cells (one exchange),
    /// routes the resulting notes, and fires the outsider-edge-removal
    /// dirty rules in op order.
    fn flush_segment(&mut self, seg: &mut Segment) {
        if !seg.any {
            return;
        }
        let cmds: Vec<(usize, Cmd)> = seg
            .per_cell
            .iter_mut()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(s, l)| (s, Cmd::Ops(std::mem::take(l))))
            .collect();
        let replies = self.exchange(cmds);
        let mut notes = Vec::new();
        let mut infos: Vec<(u32, Option<EndInfo>, Option<EndInfo>)> = Vec::new();
        for (_, r) in replies {
            notes.extend(r.notes);
            if let ReplyData::OpsInfo(rows) = r.data {
                infos.extend(rows);
            }
        }
        if !seg.removed.is_empty() {
            // Merge the (up to two) per-cell rows of each removed edge.
            infos.sort_unstable_by_key(|&(op, _, _)| op);
            for &op in &seg.removed {
                let lo = infos.partition_point(|&(o, _, _)| o < op);
                let (mut ia, mut ib) = (None, None);
                for row in infos[lo..].iter().take_while(|&&(o, _, _)| o == op) {
                    ia = ia.or(row.1);
                    ib = ib.or(row.2);
                }
                self.outsider_removal_dirty(ia, ib, &mut notes);
            }
        }
        seg.reset();
        self.route_notes(notes);
    }

    /// The paper's eviction rule for an edge inserted between two
    /// solution vertices: evict the endpoint whose `¯I₁` promises a
    /// refill, preferring `b`; fall back to higher degree.
    fn conflict_evict(&mut self, a: u32, b: u32) {
        // Both peeks travel in one exchange — the decision may need
        // either answer, and fusing them halves the rule's round-trips.
        let (oa, ob) = (self.owner(a), self.owner(b));
        let replies = self.exchange(vec![(ob, Cmd::DepPeek(b)), (oa, Cmd::DepPeek(a))]);
        let mut peeks = replies.into_iter().map(|(_, r)| match r.data {
            ReplyData::Peek { nonempty } => nonempty,
            _ => unreachable!("DepPeek reply"),
        });
        let (peek_b, peek_a) = (peeks.next().unwrap(), peeks.next().unwrap());
        let loser = if peek_b {
            b
        } else if peek_a {
            a
        } else if self.shadow.degree(b) >= self.shadow.degree(a) {
            b
        } else {
            a
        };
        self.apply_flips(vec![(loser, false)]);
    }

    /// The paper's "edge removed between two outsiders" candidate rules
    /// (the only update changing bucket adjacency without a count
    /// transition): re-arm the affected solution vertices/pairs.
    fn outsider_removal_dirty(
        &mut self,
        ia: Option<EndInfo>,
        ib: Option<EndInfo>,
        notes: &mut Vec<Note>,
    ) {
        let (ia, ib) = match (ia, ib) {
            (Some(ia), Some(ib)) => (ia, ib),
            _ => unreachable!("every outsider endpoint has exactly one owner"),
        };
        if ia.count == 1 && ib.count == 1 {
            let (pa, pb) = (ia.parents[0], ib.parents[0]);
            if pa == pb {
                notes.push(Note::Dirty1 { v: pa });
            } else if self.k2 {
                notes.push(Note::Dirty2 { v: pa });
                notes.push(Note::Dirty2 { v: pb });
            }
        }
        if self.k2 {
            for (info, other) in [(&ia, &ib), (&ib, &ia)] {
                if info.count == 2 && (1..=2).contains(&other.count) {
                    notes.push(Note::Dirty2 { v: info.parents[0] });
                    notes.push(Note::Dirty2 { v: info.parents[1] });
                }
            }
        }
    }

    // ---- DynamicMis backing ------------------------------------------

    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        if let Some((_, cause)) = self.apply_updates(std::slice::from_ref(u)) {
            // Validation precedes every mutation: state untouched.
            return Err(cause);
        }
        self.settle();
        let mut delta = self.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        Ok(delta)
    }

    /// Batch: one deferred fill + swap drain for the whole burst (same
    /// contract as the eager engines' deferred-drain batch — the final
    /// state is identically k-maximal, cascades of intermediate states
    /// are skipped). On rejection the valid prefix stays applied with
    /// the invariant re-established and the error names the index.
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        let failure = self.apply_updates(updates);
        self.settle();
        let mut delta = self.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        match failure {
            None => Ok(delta),
            Some((index, cause)) => Err(cause.in_batch(index)),
        }
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        // Cells drain (and publish to their per-shard logs) in the same
        // epoch as the merged drain. Posted: the merged delta returns
        // while cells publish in the background — a sharded reader's
        // min-head cut tolerates per-shard publication lag.
        let cmds = (0..self.t.shards()).map(|s| (s, Cmd::Drain)).collect();
        self.post(cmds);
        self.feed.drain()
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.in_sol.len() as u32)
            .filter(|&v| self.in_sol[v as usize])
            .collect()
    }

    fn heap_bytes(&mut self) -> usize {
        let cells: usize = self
            .bcast(|| Cmd::HeapBytes)
            .into_iter()
            .map(|r| match r.data {
                ReplyData::Bytes(b) => b,
                _ => unreachable!("HeapBytes reply"),
            })
            .sum();
        self.shadow.heap_bytes() + self.in_sol.capacity() + cells
    }

    /// Exhaustive cross-shard audit (test use): every cell's local state
    /// recomputed from scratch, the merged solution checked independent
    /// and maximal against the shadow graph, and the distributed
    /// dependent sets compared against a global recount.
    fn check_consistency(&mut self) -> Result<(), String> {
        self.shadow.check_consistency()?;
        for (s, r) in self.bcast(|| Cmd::Audit).into_iter().enumerate() {
            if let ReplyData::Check(res) = r.data {
                res.map_err(|e| format!("cell {s}: {e}"))?;
            }
        }
        if self.size != self.in_sol.iter().filter(|&&b| b).count() {
            return Err("size counter out of sync".into());
        }
        // Global recount of the dependent sets.
        let mut exp1: Vec<Vec<u32>> = vec![Vec::new(); self.shadow.capacity()];
        let mut exp2: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shadow.capacity()];
        for u in self.shadow.vertices() {
            if self.in_sol[u as usize] {
                if let Some(w) = self.shadow.neighbors(u).find(|&w| self.in_sol[w as usize]) {
                    return Err(format!("merged solution not independent: ({u}, {w})"));
                }
                continue;
            }
            let parents: Vec<u32> = self
                .shadow
                .neighbors(u)
                .filter(|&w| self.in_sol[w as usize])
                .collect();
            match parents.len() {
                0 => return Err(format!("merged solution not maximal: {u} is free")),
                1 => exp1[parents[0] as usize].push(u),
                2 if self.k2 => {
                    let (a, b) = (parents[0].min(parents[1]), parents[0].max(parents[1]));
                    exp2[a as usize].push((b, u));
                    exp2[b as usize].push((a, u));
                }
                _ => {}
            }
        }
        let mut got1: Vec<Vec<u32>> = vec![Vec::new(); self.shadow.capacity()];
        let mut got2: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.shadow.capacity()];
        for r in self.bcast(|| Cmd::DumpState) {
            if let ReplyData::Dump(rows) = r.data {
                for (v, d1, d2) in rows {
                    got1[v as usize] = d1;
                    got2[v as usize] = d2;
                }
            }
        }
        for v in 0..self.shadow.capacity() {
            exp1[v].sort_unstable();
            exp2[v].sort_unstable();
            if exp1[v] != got1[v] {
                return Err(format!(
                    "¯I₁({v}) drift: expected {:?}, cells hold {:?}",
                    exp1[v], got1[v]
                ));
            }
            if exp2[v] != got2[v] {
                return Err(format!(
                    "¯I₂ rows of {v} drift: expected {:?}, cells hold {:?}",
                    exp2[v], got2[v]
                ));
            }
        }
        Ok(())
    }
}

/// Everything the canonical sharded engines pull out of a builder.
struct ShardSpec {
    shadow: DynamicGraph,
    initial: Vec<u32>,
    k2: bool,
    shards: usize,
    partitioner: Partitioner,
    wave: usize,
    pipeline: bool,
}

/// Validates a builder for the canonical sharded engines and splits it
/// into its parts. `k ≤ 2`: the lazy `GenericKSwap` collection mode has
/// no canonical sharded counterpart.
fn canonical_session(builder: EngineBuilder) -> Result<ShardSpec, EngineError> {
    let shards = builder.shard_count();
    let partitioner = builder.partitioner_choice();
    let wave = builder.swap_wave_limit();
    let pipeline = builder.pipeline_enabled();
    let session = builder.into_session()?;
    if session.k > 2 {
        return Err(EngineError::BadParameter(
            "sharded maintenance supports k ∈ {1, 2}",
        ));
    }
    Ok(ShardSpec {
        shadow: session.graph,
        initial: session.initial,
        k2: session.k == 2,
        shards,
        partitioner,
        wave,
        pipeline,
    })
}

macro_rules! delegate_dynamic_mis {
    ($ty:ty) => {
        impl DynamicMis for $ty {
            fn name(&self) -> &'static str {
                self.inner.name
            }
            fn graph(&self) -> &DynamicGraph {
                &self.inner.shadow
            }
            fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
                self.inner.try_apply(u)
            }
            fn try_apply_batch(
                &mut self,
                updates: &[Update],
            ) -> Result<SolutionDelta, EngineError> {
                self.inner.try_apply_batch(updates)
            }
            fn drain_delta(&mut self) -> SolutionDelta {
                self.inner.drain_delta()
            }
            fn size(&self) -> usize {
                self.inner.size
            }
            fn solution(&self) -> Vec<u32> {
                self.inner.solution()
            }
            fn contains(&self, v: u32) -> bool {
                self.inner.in_sol.get(v as usize).copied().unwrap_or(false)
            }
            fn heap_bytes(&self) -> usize {
                // `heap_bytes` needs a cell round-trip, which needs
                // `&mut`; report the coordinator-resident state only for
                // the immutable trait call.
                self.inner.shadow.heap_bytes() + self.inner.in_sol.capacity()
            }
        }
    };
}

/// Sharded parallel maintenance: `P` degree-aware vertex-space shards,
/// each with its own maintenance cell on its own writer thread, driven
/// through the canonical two-phase boundary protocol.
///
/// The maintained solution is globally independent, maximal, and
/// k-maximal (`k ∈ {1, 2}`), and — because every protocol decision is
/// resolved against global vertex ids — **identical for every shard
/// count**, including the sequential reference [`CanonicalMis`].
///
/// ```
/// use dynamis_core::{DynamicMis, EngineBuilder};
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_shard::{CanonicalMis, ShardedEngine};
///
/// let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
/// let mut sharded: ShardedEngine =
///     EngineBuilder::on(g.clone()).k(2).shards(3).build_as().unwrap();
/// let mut reference: CanonicalMis = EngineBuilder::on(g).k(2).build_as().unwrap();
///
/// for u in [Update::RemoveEdge(2, 3), Update::InsertEdge(0, 2)] {
///     sharded.try_apply(&u).unwrap();
///     reference.try_apply(&u).unwrap();
/// }
/// assert_eq!(sharded.solution(), reference.solution());
/// ```
pub struct ShardedEngine {
    inner: Orchestrator<ThreadCells>,
}

delegate_dynamic_mis!(ShardedEngine);

impl ShardedEngine {
    fn build(
        builder: EngineBuilder,
        logs: Option<Vec<Arc<SharedLog>>>,
    ) -> Result<Self, EngineError> {
        let spec = canonical_session(builder)?;
        let map = ShardMap::with_partitioner(&spec.shadow, spec.shards, spec.partitioner);
        let (cells, notes) =
            build_cells(&spec.shadow, &map, &spec.initial, spec.k2, logs.as_deref());
        let cfg = OrchConfig {
            k2: spec.k2,
            name: if spec.k2 {
                "ShardedTwoSwap"
            } else {
                "ShardedOneSwap"
            },
            wave: spec.wave,
            pipeline: spec.pipeline,
        };
        let t = ThreadCells::spawn(cells);
        Ok(ShardedEngine {
            inner: Orchestrator::new(t, map, spec.shadow, &spec.initial, cfg, notes),
        })
    }

    /// Builds with per-shard broadcast logs attached: each cell
    /// publishes its owned share of every epoch's delta to its own log
    /// (see [`dynamis_serve::ShardedReader`]).
    pub fn from_builder_with_logs(
        builder: EngineBuilder,
        logs: Vec<Arc<SharedLog>>,
    ) -> Result<Self, EngineError> {
        assert_eq!(
            logs.len(),
            builder.shard_count(),
            "one log per shard required"
        );
        Self::build(builder, Some(logs))
    }

    /// Number of shards (writer threads) this engine runs.
    pub fn shards(&self) -> usize {
        self.inner.t.shards()
    }

    /// The partitioning strategy behind this engine's [`ShardMap`].
    pub fn partitioner(&self) -> Partitioner {
        self.inner.map.partitioner()
    }

    /// Cut size and per-shard degree loads of the current partition.
    pub fn partition_stats(&self) -> (usize, Vec<u64>) {
        (
            self.inner.map.cut_edges(&self.inner.shadow),
            self.inner.map.degree_loads(&self.inner.shadow),
        )
    }

    /// `(exchanges, commands)` the coordinator has issued — the unit of
    /// coordination cost (one exchange = one barriered round-trip to a
    /// set of cells).
    pub fn coordination_stats(&self) -> (u64, u64) {
        (self.inner.exchanges, self.inner.cmds_sent)
    }

    /// Counters of the fused swap rounds: how many swaps co-committed
    /// per round and how many proposals a footprint conflict (or the
    /// wave cap) pushed to a later round.
    pub fn swap_round_stats(&self) -> SwapRoundStats {
        self.inner.swap_stats
    }

    /// Exhaustive cross-shard audit — recomputes every cell's state from
    /// scratch and verifies the merged solution plus the distributed
    /// dependent sets. Test/debug use: O(n + m) plus a cell round-trip.
    pub fn check_consistency(&mut self) -> Result<(), String> {
        self.inner.check_consistency()
    }

    /// Heap footprint including every cell's state (needs the cell
    /// round-trip the trait's `&self` method cannot perform).
    pub fn heap_bytes_full(&mut self) -> usize {
        self.inner.heap_bytes()
    }
}

impl BuildableEngine for ShardedEngine {
    /// Honors [`EngineBuilder::shards`] (default 1) and `k ∈ {1, 2}`.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        Self::build(builder, None)
    }
}

/// The sequential reference for the sharded protocol: one cell, no
/// threads, direct calls — the same canonical decision rules, so its
/// solution is *identical* to [`ShardedEngine`]'s at any shard count.
/// The cross-shard equivalence proptests pin that.
pub struct CanonicalMis {
    inner: Orchestrator<InlineCells>,
}

delegate_dynamic_mis!(CanonicalMis);

impl CanonicalMis {
    /// Exhaustive audit; see [`ShardedEngine::check_consistency`].
    pub fn check_consistency(&mut self) -> Result<(), String> {
        self.inner.check_consistency()
    }

    /// Counters of the fused swap rounds; see
    /// [`ShardedEngine::swap_round_stats`].
    pub fn swap_round_stats(&self) -> SwapRoundStats {
        self.inner.swap_stats
    }
}

impl BuildableEngine for CanonicalMis {
    /// Ignores [`EngineBuilder::shards`] — the reference is always a
    /// single inline cell. Honors the wave / pipeline knobs, so a
    /// reference engine can be built for any configuration under test.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        let spec = canonical_session(builder)?;
        let map = ShardMap::degree_aware(&spec.shadow, 1);
        let (cells, notes) = build_cells(&spec.shadow, &map, &spec.initial, spec.k2, None);
        let cfg = OrchConfig {
            k2: spec.k2,
            name: if spec.k2 {
                "CanonTwoSwap"
            } else {
                "CanonOneSwap"
            },
            wave: spec.wave,
            pipeline: spec.pipeline,
        };
        let t = InlineCells::new(cells);
        Ok(CanonicalMis {
            inner: Orchestrator::new(t, map, spec.shadow, &spec.initial, cfg, notes),
        })
    }
}
