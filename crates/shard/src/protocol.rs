//! The coordinator ⇄ cell wire protocol.
//!
//! Every phase of the sharded maintenance is a *barriered exchange*:
//! the coordinator sends a batch of [`Cmd`]s (FIFO order preserved per
//! shard), every addressed cell computes in parallel and answers each
//! command with exactly one [`Reply`]. Replies carry the cell's phase
//! payload, the [`Note`]s it emitted — cross-shard count-transition
//! bookkeeping the coordinator routes to the owning cells in the next
//! exchange — and pending-work hints that let whole phases be skipped.
//! The two-phase shape of the boundary repair (fill rounds, swap
//! propose/commit) is visible directly in the command vocabulary:
//! `FillPoll`/`FillRound` propose and commit maximality repairs,
//! `SwapScan` proposes a whole *round* of swap candidates at once
//! (each resolved cell-locally when possible, validated via
//! `Bar1`/`NbrsOf`/`AdjAmong` otherwise); the coordinator
//! accepts every footprint-independent candidate of the round and
//! commits them together through one `Flips` broadcast, so the number
//! of exchanges scales with conflicting work, not total work.

use std::sync::Arc;

/// Sorted, deduplicated union of two sorted lists, minus the vertices
/// the predicate marks. Both the cell-local and the coordinator-global
/// 2-swap pipelines build their candidate sets (`Cy`, `Cz`) through
/// this one helper — the canonical equivalence depends on the two
/// sides computing identical sets.
pub(crate) fn merge_minus(a: &[u32], b: &[u32], marked: impl Fn(u32) -> bool) -> Vec<u32> {
    let mut out: Vec<u32> = a
        .iter()
        .chain(b.iter())
        .copied()
        .filter(|&w| !marked(w))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One `DumpState` row: an owned solution vertex with its `¯I₁` and
/// `¯I₂` rows.
pub(crate) type DumpRow = (u32, Vec<u32>, Vec<(u32, u32)>);

/// Cross-shard bookkeeping emitted by a cell when an *owned* vertex's
/// count transitions, addressed (by the coordinator) to the owner of the
/// named solution vertex. `Dep1`/`Dep2` keep each solution vertex's
/// exact dependent sets — `¯I₁(p)` and the `¯I₂` pivots — across shard
/// boundaries; `Dirty*` re-arm the swap scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Note {
    /// `u` became a count-1 dependent of solution vertex `p`.
    Dep1Add { p: u32, u: u32 },
    /// `u` is no longer a count-1 dependent of `p`.
    Dep1Del { p: u32, u: u32 },
    /// `u` became a count-2 pivot with parents `{a, b}` (`a < b`).
    Dep2Add { a: u32, b: u32, u: u32 },
    /// `u` is no longer a count-2 pivot of `{a, b}`.
    Dep2Del { a: u32, b: u32, u: u32 },
    /// Re-examine solution vertex `v` for a 1-swap (adjacency inside
    /// `¯I₁(v)` changed without a count transition).
    Dirty1 { v: u32 },
    /// Re-examine pairs involving solution vertex `v` for a 2-swap.
    Dirty2 { v: u32 },
}

/// One entry of a cell's answer to a `SwapScan`: an actionable swap
/// candidate. The coordinator merges every cell's list, walks it in
/// ascending `v` (the canonical global order), accepts ready proposals
/// whose 1-hop footprints are pairwise disjoint, and runs the
/// cross-shard validation pipeline for `Global` ones. A cell resolves
/// a candidate locally when every adjacency test it needs has an owned
/// endpoint — always true at P = 1, and for most candidates under a
/// locality-friendly partition — so the swap phase costs exchanges
/// only for genuinely cross-shard candidates and commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SwapProposal {
    /// 1-swap candidate `v` needing the coordinator's cross-shard
    /// pipeline. `bar1` ships the owner's exact `¯I₁(v)` (sorted), so
    /// resolution costs exactly one `AdjAmong` exchange.
    GlobalOne { v: u32, bar1: Vec<u32> },
    /// 2-swap candidate `v` needing the cross-shard pipeline. The owner
    /// ships everything it holds exactly — `¯I₁(v)` (sorted) and every
    /// still-undecided pair of `v` with its pivot list (the `¯I₂` rows
    /// of `v`'s pairs are mirrored at `v`'s owner) — so the coordinator
    /// only gathers what is genuinely foreign: the partners' `¯I₁` rows
    /// and the pivots' neighborhoods, all in one batched exchange, plus
    /// at most one `AdjAmong`. Pairs the owner already refuted locally
    /// are omitted (the candidate's canonical walk skips them either
    /// way); a probe list whose pivot sets are all empty refutes with
    /// zero exchanges.
    GlobalTwo {
        v: u32,
        bar1: Vec<u32>,
        pairs: Vec<PairProbe>,
    },
    /// Ready 1-swap: `v` leaves, `{u1, u2}` enter.
    One { v: u32, u1: u32, u2: u32 },
    /// Ready 2-swap at dirty vertex `v`: `{a, b}` leave, `{x, y, z}`
    /// enter.
    Two {
        v: u32,
        a: u32,
        b: u32,
        x: u32,
        y: u32,
        z: u32,
    },
}

impl SwapProposal {
    /// The canonical ordering key: the dirty solution vertex.
    pub fn key(&self) -> u32 {
        match *self {
            SwapProposal::GlobalOne { v, .. }
            | SwapProposal::GlobalTwo { v, .. }
            | SwapProposal::One { v, .. }
            | SwapProposal::Two { v, .. } => v,
        }
    }
}

/// One undecided pair of a [`SwapProposal::GlobalTwo`] candidate: the
/// solution pair `(a, b)` (lexicographic, one of them the candidate
/// itself) and its count-2 pivots, sorted ascending — exact at the
/// proposing owner because `¯I₂` rows are mirrored at both members'
/// owners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PairProbe {
    pub a: u32,
    pub b: u32,
    pub piv: Vec<u32>,
}

/// Post-removal classification of one owned endpoint of a deleted edge,
/// reported so the coordinator can fire the paper's "edge removed
/// between two outsiders" candidate rules (the only update that changes
/// bucket adjacency without a count transition).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EndInfo {
    /// The endpoint's count after the removal.
    pub count: u32,
    /// Its (up to two) solution parents, `u32::MAX`-padded.
    pub parents: [u32; 2],
}

/// One structural operation inside a batched segment. A segment is a
/// run of updates that provably flip no membership at dispatch time —
/// the coordinator checks its exact mirror — so cells can apply a whole
/// run in one exchange. `op` is the operation's index within the
/// segment: removal replies key their [`EndInfo`] on it.
#[derive(Debug, Clone)]
pub(crate) enum CellOp {
    /// Insert (`true`) or remove an edge. `u_in`/`v_in` refresh the
    /// endpoints' membership from the coordinator's exact mirror —
    /// flips are routed only to cells that already border the flipped
    /// vertex, so a cell meeting an endpoint for the first time syncs
    /// here.
    Edge {
        op: u32,
        insert: bool,
        u: u32,
        v: u32,
        u_in: bool,
        v_in: bool,
    },
    /// A fresh vertex with its initial `(neighbor, in I)` list and its
    /// (coordinator-assigned, stable) owner shard. Every cell allocates
    /// the slot (id-space parity); membership of the named neighbors is
    /// refreshed like on `Edge`.
    AddVertex {
        id: u32,
        owner: u16,
        neighbors: Arc<Vec<(u32, bool)>>,
    },
    /// Remove a vertex that is *not* in the solution.
    RemOutsider { v: u32 },
}

/// One coordinator → cell command. See the module docs for phasing.
#[derive(Debug)]
pub(crate) enum Cmd {
    /// A segment of membership-neutral structural operations, applied in
    /// order. The reply carries per-op [`EndInfo`] rows for removed
    /// edges with owned outsider endpoints (`OpsInfo`).
    Ops(Vec<CellOp>),
    /// Broadcast: remove a vertex that was in the solution (a phase
    /// boundary — outsider removals travel in `Ops` segments).
    RemSolVertex { v: u32 },
    /// Broadcast: committed membership flips, in order.
    Flips(Arc<Vec<(u32, bool)>>),
    /// Routed cross-shard bookkeeping (see [`Note`]).
    Notes(Vec<Note>),
    /// Fill phase, propose: do you hold freed vertices, and which of
    /// them border another shard?
    FillPoll,
    /// Fill phase, resolve: given every shard's boundary-freed frontier,
    /// which owned freed vertices are local minima (and thus enter)?
    FillRound(Arc<Vec<u32>>),
    /// Is `¯I₁(v)` non-empty? (Conflict-eviction rule.)
    DepPeek(u32),
    /// The exact `¯I₁(v)`, sorted.
    Bar1(u32),
    /// Edges among the given sorted vertex list with an owned endpoint.
    AdjAmong(Arc<Vec<u32>>),
    /// Sorted open neighborhood of owned vertex `v`.
    NbrsOf(u32),
    /// Scan this cell's *whole* dirty set (`two` selects the 2-swap
    /// set) in ascending order: prune invalid entries, resolve
    /// candidates whose relevant sets are (near-)local into ready
    /// [`SwapProposal`]s, and report every actionable candidate in one
    /// reply — the fused validation round. Locally-refuted candidates
    /// stay dirty and are *reported* refuted instead of pruned: the
    /// coordinator decides their fate exactly as it does for globally-
    /// refuted ones (cleared only if the round commits nothing), so the
    /// dirty sets evolve identically at every shard count.
    SwapScan { two: bool },
    /// Remove the listed vertices from the dirty set (validated: no
    /// swap exists at them).
    ClearDirty { two: bool, list: Vec<u32> },
    /// Drain the cell's delta feed; publish to the attached per-shard
    /// log (always, even when empty — epoch alignment).
    Drain,
    /// Approximate heap footprint.
    HeapBytes,
    /// Debug: local state dump for the coordinator's consistency check.
    DumpState,
    /// Debug: recompute-from-scratch audit of the cell's local state.
    Audit,
    /// Terminate the cell thread.
    Stop,
}

/// Payload of one cell reply.
#[derive(Debug, Default)]
pub(crate) enum ReplyData {
    #[default]
    None,
    /// `FillPoll`: any freed vertex at all + the boundary frontier.
    Fill { any: bool, boundary: Vec<u32> },
    /// `FillRound`: owned freed local minima (they enter).
    Entered(Vec<u32>),
    /// `Bar1` / `NbrsOf`: a sorted id list.
    List(Vec<u32>),
    /// `AdjAmong`: normalized `(min, max)` edges found.
    Edges(Vec<(u32, u32)>),
    /// `SwapScan`: every actionable candidate (ascending by key), plus
    /// the locally-refuted ones (still dirty; the coordinator queues
    /// their clears).
    Swaps {
        proposals: Vec<SwapProposal>,
        refuted: Vec<u32>,
    },
    /// `DepPeek`.
    Peek { nonempty: bool },
    /// `Ops`: per removed edge (keyed by op index), post-removal info
    /// for the owned outsider endpoints `(u, v)`.
    OpsInfo(Vec<(u32, Option<EndInfo>, Option<EndInfo>)>),
    /// `HeapBytes`.
    Bytes(usize),
    /// `DumpState`: `(owned solution vertex, dep1 row, dep2 row)` for
    /// every owned vertex with a non-empty row.
    Dump(Vec<DumpRow>),
    /// `Audit`.
    Check(Result<(), String>),
}

/// One cell → coordinator reply: the phase payload, emitted notes, and
/// a summary of the cell's pending-work state. The hints let the
/// coordinator skip whole phases (no freed vertex anywhere → no fill
/// exchange; no dirty vertex anywhere → no swap scan) and address the
/// remaining ones only to the cells that have work — the common
/// no-repair update costs a single exchange with at most two cells.
#[derive(Debug, Default)]
pub(crate) struct Reply {
    pub notes: Vec<Note>,
    pub data: ReplyData,
    /// The cell holds freed (count-0) vertices awaiting fill.
    pub freed: bool,
    /// The cell's 1-swap / 2-swap dirty sets are non-empty.
    pub dirty1: bool,
    pub dirty2: bool,
}
