//! One shard's worth of maintenance state: the halo graph, exact counts
//! and dependent sets for owned vertices, and the per-shard delta feed.
//!
//! A cell owns a subset of the vertex space (per the shared
//! [`ShardMap`]) and stores exactly the edges incident to an owned
//! vertex — its *1-hop halo*. That is enough to give the cell the full
//! adjacency of every owned vertex, so every count transition of an
//! owned vertex is computed **locally** on the cell's writer thread; the
//! only things that cross shards are membership flips (broadcast) and
//! the dependent-set bookkeeping [`Note`]s addressed to the owner of the
//! affected solution vertex. Cut edges are stored twice (once per
//! endpoint owner); intra-shard edges once.
//!
//! A cell never decides anything by itself: it answers the coordinator's
//! phase commands ([`Cmd`]) with local facts, and applies the membership
//! flips the coordinator commits. All tie-breaking (fill order, swap
//! order, swap pair choice) happens in the coordinator against global
//! vertex ids — which is what makes the maintained solution independent
//! of the shard count.

use crate::protocol::{
    merge_minus, CellOp, Cmd, EndInfo, Note, PairProbe, Reply, ReplyData, SwapProposal,
};
use dynamis_core::DeltaFeed;
use dynamis_graph::collections::StampSet;
use dynamis_graph::{DynamicGraph, ShardMap};
use dynamis_serve::SharedLog;
use std::collections::BTreeSet;
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// Result of a cell-local swap resolution attempt.
enum LocalOutcome {
    /// A ready, canonical proposal.
    Swap(SwapProposal),
    /// Every relevant set was local and no swap exists.
    NoSwap,
    /// An adjacency test would need data this cell does not hold. For
    /// 2-swap candidates the punt carries the still-undecided pairs
    /// with their (owner-exact) pivot lists, so the coordinator never
    /// re-queries what this cell already holds.
    NonLocal(Vec<PairProbe>),
}

/// Per-shard maintenance state. See the module docs.
#[derive(Debug)]
pub(crate) struct ShardCell {
    me: u16,
    k2: bool,
    /// Halo graph: all vertex slots, edges incident to an owned vertex.
    g: DynamicGraph,
    /// Vertex → owner shard, kept in lockstep with the coordinator's
    /// [`ShardMap`] through `AddVertex` commands.
    owners: Vec<u16>,
    /// Global solution membership (exact for every vertex this cell can
    /// ever read: owned vertices and their neighbors).
    in_sol: Vec<bool>,
    /// For owned outsiders: |N(v) ∩ I|. 0 for members and foreigners.
    count: Vec<u32>,
    /// For owned outsiders with count ≤ 2: the solution parents,
    /// `NONE`-padded. Stale (unused) at count ≥ 3.
    par: Vec<[u32; 2]>,
    /// For owned solution vertices: the exact `¯I₁(v)` (count-1
    /// dependents), cross-shard members included via routed notes.
    dep1: Vec<Vec<u32>>,
    /// For owned solution vertices: `(other parent, pivot)` rows — the
    /// count-2 pivots this vertex co-parents (k = 2 only).
    dep2: Vec<Vec<(u32, u32)>>,
    /// Owned, alive, count-0 outsiders awaiting the fill phase.
    freed: BTreeSet<u32>,
    /// Owned solution vertices to re-examine for a 1-swap / 2-swap.
    dirty1: BTreeSet<u32>,
    dirty2: BTreeSet<u32>,
    /// Flips of owned vertices only — the shard's delta stream.
    feed: DeltaFeed,
    /// Per-shard broadcast log (service mode), published on `Drain`.
    log: Option<Arc<SharedLog>>,
    stamp: StampSet,
    scratch: Vec<u32>,
}

impl ShardCell {
    /// Builds the cell over the session graph: halo edges, initial
    /// membership, counts. Returns the cell plus the dependent-set notes
    /// its owned outsiders generate at bootstrap (the coordinator routes
    /// them like any others).
    pub fn new(
        me: usize,
        k2: bool,
        full: &DynamicGraph,
        map: &ShardMap,
        initial: &[u32],
        log: Option<Arc<SharedLog>>,
    ) -> (Self, Vec<Note>) {
        let cap = full.capacity();
        let me16 = me as u16;
        let mut g = DynamicGraph::with_capacity(cap);
        for v in full.vertices() {
            g.ensure_vertex(v);
        }
        for (u, v) in full.edges() {
            if map.owner(u) == me || map.owner(v) == me {
                g.insert_edge(u, v).expect("halo endpoints are alive");
            }
        }
        let mut cell = ShardCell {
            me: me16,
            k2,
            g,
            owners: (0..cap as u32).map(|v| map.owner(v) as u16).collect(),
            in_sol: vec![false; cap],
            count: vec![0; cap],
            par: vec![[NONE, NONE]; cap],
            dep1: vec![Vec::new(); cap],
            dep2: vec![Vec::new(); cap],
            freed: BTreeSet::new(),
            dirty1: BTreeSet::new(),
            dirty2: BTreeSet::new(),
            feed: DeltaFeed::default(),
            log,
            stamp: StampSet::with_capacity(cap),
            scratch: Vec::new(),
        };
        for &v in initial {
            cell.in_sol[v as usize] = true;
            if cell.owns(v) {
                cell.feed.record_in(v);
            }
        }
        let mut notes = Vec::new();
        for v in full.vertices() {
            if cell.owns(v) && !cell.in_sol[v as usize] {
                cell.recount(v, &mut notes);
            }
        }
        (cell, notes)
    }

    #[inline]
    fn owns(&self, v: u32) -> bool {
        self.owners[v as usize] == self.me
    }

    #[inline]
    fn stores_edge(&self, u: u32, v: u32) -> bool {
        self.owns(u) || self.owns(v)
    }

    fn ensure_capacity(&mut self, cap: usize) {
        if self.in_sol.len() < cap {
            self.in_sol.resize(cap, false);
            self.count.resize(cap, 0);
            self.par.resize(cap, [NONE, NONE]);
            self.dep1.resize_with(cap, Vec::new);
            self.dep2.resize_with(cap, Vec::new);
            self.stamp = StampSet::with_capacity(cap);
        }
    }

    /// Recomputes `count`/`par` of owned outsider `v` from scratch and
    /// emits its dependent-set notes. Used at bootstrap and when a
    /// vertex leaves the solution (its count was implicitly 0 while in).
    fn recount(&mut self, v: u32, notes: &mut Vec<Note>) {
        let mut c = 0u32;
        let mut ps = [NONE, NONE];
        for w in self.g.neighbors(v) {
            if self.in_sol[w as usize] {
                if c < 2 {
                    ps[c as usize] = w;
                }
                c += 1;
            }
        }
        self.count[v as usize] = c;
        self.par[v as usize] = if c <= 2 { ps } else { [NONE, NONE] };
        match c {
            0 => {
                self.freed.insert(v);
            }
            1 => notes.push(Note::Dep1Add { p: ps[0], u: v }),
            2 if self.k2 => {
                let (a, b) = (ps[0].min(ps[1]), ps[0].max(ps[1]));
                notes.push(Note::Dep2Add { a, b, u: v });
            }
            _ => {}
        }
    }

    /// Owned outsider `u` gained solution neighbor `by`.
    fn inc_count(&mut self, u: u32, by: u32, notes: &mut Vec<Note>) {
        let c = self.count[u as usize];
        self.count[u as usize] = c + 1;
        match c {
            0 => {
                self.par[u as usize] = [by, NONE];
                self.freed.remove(&u);
                notes.push(Note::Dep1Add { p: by, u });
            }
            1 => {
                let p0 = self.par[u as usize][0];
                self.par[u as usize][1] = by;
                notes.push(Note::Dep1Del { p: p0, u });
                if self.k2 {
                    notes.push(Note::Dep2Add {
                        a: p0.min(by),
                        b: p0.max(by),
                        u,
                    });
                }
            }
            2 => {
                if self.k2 {
                    let [p0, p1] = self.par[u as usize];
                    notes.push(Note::Dep2Del {
                        a: p0.min(p1),
                        b: p0.max(p1),
                        u,
                    });
                }
                self.par[u as usize] = [NONE, NONE];
            }
            _ => {}
        }
    }

    /// Owned outsider `u` lost solution neighbor `leaving` (already
    /// flagged out of `in_sol` — the count-3 rescan relies on that).
    fn dec_count(&mut self, u: u32, leaving: u32, notes: &mut Vec<Note>) {
        let c = self.count[u as usize];
        debug_assert!(c > 0, "dec_count underflow at {u}");
        self.count[u as usize] = c - 1;
        match c {
            1 => {
                self.par[u as usize] = [NONE, NONE];
                notes.push(Note::Dep1Del { p: leaving, u });
                self.freed.insert(u);
            }
            2 => {
                let [p0, p1] = self.par[u as usize];
                let p = if p0 == leaving { p1 } else { p0 };
                debug_assert!(p != NONE);
                self.par[u as usize] = [p, NONE];
                if self.k2 {
                    notes.push(Note::Dep2Del {
                        a: p0.min(p1),
                        b: p0.max(p1),
                        u,
                    });
                }
                notes.push(Note::Dep1Add { p, u });
            }
            3 => {
                // Parents were untracked at count 3: rescan for the two
                // remaining ones (`leaving` is already out of `in_sol`).
                let mut ps = [NONE, NONE];
                let mut n = 0;
                for w in self.g.neighbors(u) {
                    if self.in_sol[w as usize] {
                        if n < 2 {
                            ps[n] = w;
                        }
                        n += 1;
                    }
                }
                debug_assert_eq!(n, 2, "count 3→2 must leave two parents");
                self.par[u as usize] = ps;
                if self.k2 {
                    notes.push(Note::Dep2Add {
                        a: ps[0].min(ps[1]),
                        b: ps[0].max(ps[1]),
                        u,
                    });
                }
            }
            _ => {}
        }
    }

    fn apply_flips(&mut self, flips: &[(u32, bool)], notes: &mut Vec<Note>) {
        for &(v, enter) in flips {
            self.in_sol[v as usize] = enter;
            if self.owns(v) {
                if enter {
                    debug_assert_eq!(self.count[v as usize], 0, "entering vertex must be free");
                    self.feed.record_in(v);
                    self.freed.remove(&v);
                    self.par[v as usize] = [NONE, NONE];
                } else {
                    self.feed.record_out(v);
                    self.recount(v, notes);
                }
            }
            // Count transitions of owned outsider neighbors.
            self.scratch.clear();
            self.scratch.extend(
                self.g
                    .neighbors(v)
                    .filter(|&w| self.owners[w as usize] == self.me && !self.in_sol[w as usize]),
            );
            let mut moved = std::mem::take(&mut self.scratch);
            for &w in &moved {
                if enter {
                    self.inc_count(w, v, notes);
                } else {
                    self.dec_count(w, v, notes);
                }
            }
            moved.clear();
            self.scratch = moved;
        }
    }

    fn apply_notes(&mut self, notes: Vec<Note>) {
        for note in notes {
            match note {
                Note::Dep1Add { p, u } => {
                    debug_assert!(self.owns(p));
                    self.dep1[p as usize].push(u);
                    self.dirty1.insert(p);
                    if self.k2 {
                        // A new ¯I₁(p) member can unlock 2-swaps at any
                        // pair involving p (the FIND ONESWAP promotion).
                        self.dirty2.insert(p);
                    }
                }
                Note::Dep1Del { p, u } => {
                    if self.owns(p) {
                        if let Some(i) = self.dep1[p as usize].iter().position(|&x| x == u) {
                            self.dep1[p as usize].swap_remove(i);
                        }
                    }
                }
                Note::Dep2Add { a, b, u } => {
                    for (mine, other) in [(a, b), (b, a)] {
                        if self.owns(mine) {
                            self.dep2[mine as usize].push((other, u));
                            self.dirty2.insert(mine);
                        }
                    }
                }
                Note::Dep2Del { a, b, u } => {
                    for (mine, other) in [(a, b), (b, a)] {
                        if self.owns(mine) {
                            if let Some(i) = self.dep2[mine as usize]
                                .iter()
                                .position(|&e| e == (other, u))
                            {
                                self.dep2[mine as usize].swap_remove(i);
                            }
                        }
                    }
                }
                Note::Dirty1 { v } => {
                    if self.owns(v) {
                        self.dirty1.insert(v);
                    }
                }
                Note::Dirty2 { v } => {
                    if self.owns(v) && self.k2 {
                        self.dirty2.insert(v);
                    }
                }
            }
        }
    }

    /// Applies one segment of membership-neutral structural ops in
    /// order, collecting the [`EndInfo`] rows of removed edges whose
    /// owned endpoints are outsiders.
    fn apply_ops(&mut self, ops: &[CellOp], reply: &mut Reply) {
        let mut notes = std::mem::take(&mut reply.notes);
        let mut rows: Vec<(u32, Option<EndInfo>, Option<EndInfo>)> = Vec::new();
        for cell_op in ops {
            match *cell_op {
                CellOp::Edge {
                    op,
                    insert,
                    u,
                    v,
                    u_in,
                    v_in,
                } => {
                    debug_assert!(self.stores_edge(u, v), "ops are routed to storing cells");
                    // Refresh endpoint membership from the coordinator's
                    // mirror: flips are routed only to cells already
                    // bordering a vertex, so this may be the first time
                    // this cell meets `u` or `v`.
                    self.in_sol[u as usize] = u_in;
                    self.in_sol[v as usize] = v_in;
                    if insert {
                        self.g.insert_edge(u, v).expect("validated by coordinator");
                        for (x, o, o_in) in [(u, v, v_in), (v, u, u_in)] {
                            if self.owns(x) && !self.in_sol[x as usize] && o_in {
                                self.inc_count(x, o, &mut notes);
                            }
                        }
                    } else {
                        // Remove first: the count-3 parent rescan must
                        // not see the deleted edge.
                        self.g.remove_edge(u, v).expect("validated by coordinator");
                        let mut infos = (None, None);
                        for (x, o, o_in) in [(u, v, v_in), (v, u, u_in)] {
                            if self.owns(x) && !self.in_sol[x as usize] {
                                if o_in {
                                    self.dec_count(x, o, &mut notes);
                                }
                                let info = EndInfo {
                                    count: self.count[x as usize],
                                    parents: self.par[x as usize],
                                };
                                if x == u {
                                    infos.0 = Some(info);
                                } else {
                                    infos.1 = Some(info);
                                }
                            }
                        }
                        // Only both-outsider removals feed the dirty
                        // rules; skip rows the coordinator won't read.
                        if !u_in && !v_in && (infos.0.is_some() || infos.1.is_some()) {
                            rows.push((op, infos.0, infos.1));
                        }
                    }
                }
                CellOp::AddVertex {
                    id,
                    owner,
                    ref neighbors,
                } => {
                    let neighbors = Arc::clone(neighbors);
                    self.apply_add_vertex(id, owner, &neighbors, &mut notes);
                }
                CellOp::RemOutsider { v } => self.apply_rem_outsider(v, &mut notes),
            }
        }
        reply.notes = notes;
        if !rows.is_empty() {
            reply.data = ReplyData::OpsInfo(rows);
        }
    }

    fn apply_add_vertex(
        &mut self,
        id: u32,
        owner: u16,
        neighbors: &[(u32, bool)],
        notes: &mut Vec<Note>,
    ) {
        let idx = id as usize;
        if self.owners.len() <= idx {
            self.owners.resize(idx + 1, u16::MAX);
        }
        self.owners[idx] = owner;
        self.g.ensure_vertex(id);
        self.ensure_capacity(self.g.capacity().max(idx + 1));
        self.in_sol[idx] = false;
        for &(n, n_in) in neighbors {
            if self.stores_edge(id, n) {
                // Membership refresh, as on `Edge` (targeted flips).
                self.in_sol[n as usize] = n_in;
                self.g.insert_edge(id, n).expect("validated neighbors");
            }
        }
        if self.owns(id) {
            self.recount(id, notes);
        }
        // Owned outsider neighbors: `id` is not in the solution, so
        // their counts are unchanged.
    }

    /// Removes a vertex that was in the solution (phase boundary).
    fn apply_rem_sol_vertex(&mut self, v: u32, notes: &mut Vec<Note>) {
        self.in_sol[v as usize] = false;
        if self.owns(v) {
            self.feed.record_out(v);
        }
        self.scratch.clear();
        self.scratch.extend(
            self.g
                .neighbors(v)
                .filter(|&w| self.owners[w as usize] == self.me && !self.in_sol[w as usize]),
        );
        let mut moved = std::mem::take(&mut self.scratch);
        for &w in &moved {
            self.dec_count(w, v, notes);
        }
        moved.clear();
        self.scratch = moved;
        self.clear_vertex_state(v);
    }

    /// Removes an outsider vertex (membership-neutral, segment op).
    fn apply_rem_outsider(&mut self, v: u32, notes: &mut Vec<Note>) {
        self.in_sol[v as usize] = false;
        if self.owns(v) {
            // Retract v's dependent-set membership before it disappears.
            match self.count[v as usize] {
                1 => notes.push(Note::Dep1Del {
                    p: self.par[v as usize][0],
                    u: v,
                }),
                2 if self.k2 => {
                    let [p0, p1] = self.par[v as usize];
                    notes.push(Note::Dep2Del {
                        a: p0.min(p1),
                        b: p0.max(p1),
                        u: v,
                    });
                }
                _ => {}
            }
        }
        self.clear_vertex_state(v);
    }

    fn clear_vertex_state(&mut self, v: u32) {
        if self.owns(v) {
            self.count[v as usize] = 0;
            self.par[v as usize] = [NONE, NONE];
            self.freed.remove(&v);
            self.dirty1.remove(&v);
            self.dirty2.remove(&v);
            // dep rows referencing v drain through the routed Dep*Del
            // notes the dependents' owners emit for this same removal.
        }
        if self.g.is_alive(v) {
            self.g.remove_vertex(v).expect("alive checked");
        }
    }

    fn fill_poll(&self) -> ReplyData {
        let boundary: Vec<u32> = self
            .freed
            .iter()
            .copied()
            .filter(|&v| {
                self.g
                    .neighbors(v)
                    .any(|w| self.owners[w as usize] != self.me)
            })
            .collect();
        ReplyData::Fill {
            any: !self.freed.is_empty(),
            boundary,
        }
    }

    /// One fill round: owned freed vertices that are local minima of the
    /// freed-induced subgraph enter. `all_bnd` is the sorted union of
    /// every shard's boundary-freed frontier, which covers exactly the
    /// foreign freed vertices adjacent to this cell's owned ones.
    fn fill_round(&self, all_bnd: &[u32]) -> ReplyData {
        let mut entered = Vec::new();
        for &v in self.freed.iter() {
            let is_min = self.g.neighbors(v).all(|w| {
                let w_freed = if self.owners[w as usize] == self.me {
                    self.freed.contains(&w)
                } else {
                    all_bnd.binary_search(&w).is_ok()
                };
                !w_freed || w > v
            });
            if is_min {
                entered.push(v);
            }
        }
        ReplyData::Entered(entered)
    }

    /// Fused ascending scan of the *whole* dirty set: prune invalid
    /// entries, resolve what is local, report **every** actionable
    /// candidate in one reply. Proposed candidates stay dirty — a
    /// proposal the coordinator defers (footprint conflict with an
    /// earlier accepted swap) is re-resolved against the post-round
    /// state on the next scan. Locally-refuted candidates *also* stay
    /// dirty and are reported: whether a refuted candidate's entry
    /// survives must be the coordinator's call (this round's commits
    /// can re-arm it for real), and it must be the same call at every
    /// shard count — a cell that can refute locally knows no more about
    /// the future than one that punts to the global pipeline.
    fn swap_scan(&mut self, two: bool) -> (Vec<SwapProposal>, Vec<u32>) {
        let set = if two { &self.dirty2 } else { &self.dirty1 };
        let cands: Vec<u32> = set.iter().copied().collect();
        let mut out = Vec::new();
        let mut refuted = Vec::new();
        for v in cands {
            let valid = self.in_sol[v as usize]
                && if two {
                    !self.dep2[v as usize].is_empty()
                } else {
                    self.dep1[v as usize].len() >= 2
                };
            if valid {
                let outcome = if two {
                    self.try_local_two(v)
                } else {
                    self.try_local_one(v)
                };
                match outcome {
                    LocalOutcome::Swap(p) => {
                        out.push(p);
                        continue;
                    }
                    LocalOutcome::NonLocal(pairs) => {
                        let mut bar1 = self.dep1[v as usize].clone();
                        bar1.sort_unstable();
                        out.push(if two {
                            SwapProposal::GlobalTwo { v, bar1, pairs }
                        } else {
                            SwapProposal::GlobalOne { v, bar1 }
                        });
                        continue;
                    }
                    LocalOutcome::NoSwap => {
                        refuted.push(v);
                        continue;
                    }
                }
            }
            // Invalid (left the solution, or the dependent row can no
            // longer support a swap): prune. Validity is a function of
            // exact owner-side state, so this prunes the same entries
            // at every shard count.
            if two {
                self.dirty2.remove(&v);
            } else {
                self.dirty1.remove(&v);
            }
        }
        (out, refuted)
    }

    /// Whether this cell can test adjacency of `(a, b)` (the halo holds
    /// every edge of an owned vertex).
    #[inline]
    fn can_test(&self, a: u32, b: u32) -> bool {
        self.owns(a) || self.owns(b)
    }

    /// FIND ONESWAP at `v`, locally: possible when at most one `¯I₁(v)`
    /// member is foreign (then every pair has an owned endpoint).
    fn try_local_one(&mut self, v: u32) -> LocalOutcome {
        let foreign = self.dep1[v as usize]
            .iter()
            .filter(|&&u| !self.owns(u))
            .count();
        if foreign >= 2 {
            return LocalOutcome::NonLocal(Vec::new());
        }
        let mut d = self.dep1[v as usize].clone();
        d.sort_unstable();
        for i in 0..d.len() {
            for j in i + 1..d.len() {
                debug_assert!(self.can_test(d[i], d[j]));
                if !self.g.has_edge(d[i], d[j]) {
                    return LocalOutcome::Swap(SwapProposal::One {
                        v,
                        u1: d[i],
                        u2: d[j],
                    });
                }
            }
        }
        LocalOutcome::NoSwap
    }

    /// FIND TWOSWAP over the pairs of `v`, locally: a pair is local when
    /// its other parent, every pivot, and (up to one exception) every
    /// replacement candidate are owned. The first pair that cannot be
    /// decided locally punts the candidate to the coordinator with the
    /// undecided tail of the pair list (earlier pairs are *decided*
    /// refutations — the canonical walk skips them at every shard
    /// count) and each pair's owner-exact pivot list.
    fn try_local_two(&mut self, v: u32) -> LocalOutcome {
        let mut pairs: Vec<(u32, u32)> = self.dep2[v as usize]
            .iter()
            .map(|&(o, _)| (v.min(o), v.max(o)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            let o = if a == v { b } else { a };
            if !self.owns(o) {
                return LocalOutcome::NonLocal(self.pair_probes(v, &pairs[idx..]));
            }
            let mut piv: Vec<u32> = self.dep2[v as usize]
                .iter()
                .filter(|&&(other, _)| other == o)
                .map(|&(_, x)| x)
                .collect();
            piv.sort_unstable();
            if piv.iter().any(|&x| !self.owns(x)) {
                return LocalOutcome::NonLocal(self.pair_probes(v, &pairs[idx..]));
            }
            let mut b1a = self.dep1[a as usize].clone();
            b1a.sort_unstable();
            let mut b1b = self.dep1[b as usize].clone();
            b1b.sort_unstable();
            for &x in &piv {
                // Mark N[x] (owned pivot: full adjacency available).
                self.stamp.clear();
                self.stamp.mark(x);
                for w in self.g.neighbors(x) {
                    self.stamp.mark(w);
                }
                let cy: Vec<u32> = merge_minus(&b1a, &piv, |w| self.stamp.is_marked(w));
                if cy.is_empty() {
                    continue;
                }
                let cz: Vec<u32> = merge_minus(&b1b, &piv, |w| self.stamp.is_marked(w));
                if cz.is_empty() {
                    continue;
                }
                let foreign = cy
                    .iter()
                    .chain(cz.iter())
                    .filter(|&&w| !self.owns(w))
                    .count();
                if foreign >= 2 {
                    return LocalOutcome::NonLocal(self.pair_probes(v, &pairs[idx..]));
                }
                for &y in &cy {
                    for &z in &cz {
                        if z != y {
                            debug_assert!(self.can_test(y, z));
                            if !self.g.has_edge(y, z) {
                                return LocalOutcome::Swap(SwapProposal::Two { v, a, b, x, y, z });
                            }
                        }
                    }
                }
            }
        }
        LocalOutcome::NoSwap
    }

    /// The [`PairProbe`] payload of a 2-swap punt: each still-undecided
    /// pair with its pivots, sorted — all read off `v`'s own `¯I₂` row.
    fn pair_probes(&self, v: u32, rest: &[(u32, u32)]) -> Vec<PairProbe> {
        rest.iter()
            .map(|&(a, b)| {
                let o = if a == v { b } else { a };
                let mut piv: Vec<u32> = self.dep2[v as usize]
                    .iter()
                    .filter(|&&(other, _)| other == o)
                    .map(|&(_, x)| x)
                    .collect();
                piv.sort_unstable();
                PairProbe { a, b, piv }
            })
            .collect()
    }

    fn adj_among(&mut self, list: &[u32]) -> ReplyData {
        self.stamp.clear();
        for &v in list {
            self.stamp.mark(v);
        }
        let mut edges = Vec::new();
        for &u in list {
            if self.owns(u) && self.g.is_alive(u) {
                for w in self.g.neighbors(u) {
                    if self.stamp.is_marked(w) {
                        edges.push((u.min(w), u.max(w)));
                    }
                }
            }
        }
        ReplyData::Edges(edges)
    }

    /// Dispatches one coordinator command. Every command produces
    /// exactly one reply, stamped with the cell's pending-work hints.
    pub fn handle(&mut self, cmd: Cmd) -> Reply {
        let mut reply = Reply::default();
        match cmd {
            Cmd::Ops(ops) => self.apply_ops(&ops, &mut reply),
            Cmd::RemSolVertex { v } => self.apply_rem_sol_vertex(v, &mut reply.notes),
            Cmd::Flips(flips) => self.apply_flips(&flips, &mut reply.notes),
            Cmd::Notes(notes) => self.apply_notes(notes),
            Cmd::FillPoll => reply.data = self.fill_poll(),
            Cmd::FillRound(bnd) => reply.data = self.fill_round(&bnd),
            Cmd::DepPeek(v) => {
                reply.data = ReplyData::Peek {
                    nonempty: !self.dep1[v as usize].is_empty(),
                }
            }
            Cmd::Bar1(v) => {
                let mut d = self.dep1[v as usize].clone();
                d.sort_unstable();
                reply.data = ReplyData::List(d);
            }
            Cmd::AdjAmong(list) => reply.data = self.adj_among(&list),
            Cmd::NbrsOf(v) => {
                let mut n: Vec<u32> = self.g.neighbors(v).collect();
                n.sort_unstable();
                reply.data = ReplyData::List(n);
            }
            Cmd::SwapScan { two } => {
                let (proposals, refuted) = self.swap_scan(two);
                reply.data = ReplyData::Swaps { proposals, refuted };
            }
            Cmd::ClearDirty { two, list } => {
                for v in list {
                    if two {
                        self.dirty2.remove(&v);
                    } else {
                        self.dirty1.remove(&v);
                    }
                }
            }
            Cmd::Drain => {
                // Close the open span lazily — per-update closes would
                // cost one broadcast each and the drain nets anyway.
                let _ = self.feed.finish_update();
                let delta = self.feed.drain();
                if let Some(log) = &self.log {
                    // Publish even when empty: per-shard logs advance in
                    // lockstep so readers can cut at min(head).
                    log.publish(delta);
                }
            }
            Cmd::HeapBytes => {
                let deps: usize = self
                    .dep1
                    .iter()
                    .map(|d| d.capacity() * 4)
                    .chain(self.dep2.iter().map(|d| d.capacity() * 8))
                    .sum();
                reply.data = ReplyData::Bytes(
                    self.g.heap_bytes()
                        + self.in_sol.capacity()
                        + self.count.capacity() * 4
                        + self.par.capacity() * 8
                        + deps
                        + self.feed.heap_bytes(),
                );
            }
            Cmd::DumpState => {
                let mut rows = Vec::new();
                for v in 0..self.dep1.len() as u32 {
                    if self.owns(v)
                        && (!self.dep1[v as usize].is_empty() || !self.dep2[v as usize].is_empty())
                    {
                        let mut d1 = self.dep1[v as usize].clone();
                        d1.sort_unstable();
                        let mut d2 = self.dep2[v as usize].clone();
                        d2.sort_unstable();
                        rows.push((v, d1, d2));
                    }
                }
                reply.data = ReplyData::Dump(rows);
            }
            Cmd::Audit => reply.data = ReplyData::Check(self.check_local()),
            Cmd::Stop => unreachable!("Stop is handled by the transport loop"),
        }
        reply.freed = !self.freed.is_empty();
        reply.dirty1 = !self.dirty1.is_empty();
        reply.dirty2 = !self.dirty2.is_empty();
        reply
    }

    /// Local invariant audit (tests): counts, parents, and freed status
    /// recomputed from scratch must match the incrementally maintained
    /// state, and the halo graph must be internally consistent.
    pub fn check_local(&self) -> Result<(), String> {
        self.g.check_consistency()?;
        for v in self.g.vertices() {
            if !self.owns(v) {
                continue;
            }
            if self.in_sol[v as usize] {
                // The halo holds every edge of an owned vertex, so this
                // is a full independence check around v.
                if let Some(w) = self.g.neighbors(v).find(|&w| self.in_sol[w as usize]) {
                    return Err(format!("solution edge ({v}, {w})"));
                }
                continue;
            }
            let c = self
                .g
                .neighbors(v)
                .filter(|&w| self.in_sol[w as usize])
                .count() as u32;
            if c != self.count[v as usize] {
                return Err(format!(
                    "count[{v}] = {} but recount = {c}",
                    self.count[v as usize]
                ));
            }
            if (c == 0) != self.freed.contains(&v) {
                return Err(format!("freed status of {v} wrong at count {c}"));
            }
            if (1..=2).contains(&c) {
                for slot in 0..c as usize {
                    let p = self.par[v as usize][slot];
                    if p == NONE || !self.in_sol[p as usize] || !self.g.has_edge(v, p) {
                        return Err(format!("parent slot {slot} of {v} is stale ({p})"));
                    }
                }
            }
        }
        Ok(())
    }
}
