//! Cut-quality regression: on planted-community graphs the
//! locality-aware partition must beat degree-greedy — a strictly smaller
//! edge cut at P ∈ {2, 4}, and accordingly fewer coordination exchanges
//! per update on the sharded write path — while (pinned separately by
//! the equivalence suite, re-asserted here) never changing the
//! maintained solution.

use dynamis_core::{DynamicMis, EngineBuilder, Partitioner};
use dynamis_gen::structured::planted_communities;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::ShardMap;
use dynamis_shard::ShardedEngine;

#[test]
fn locality_cut_beats_degree_greedy_on_planted_communities() {
    // 12 blocks of 50, ~8 intra-degree, 150 planted crossing edges:
    // the cut share of a block-respecting partition is a few percent,
    // while degree balance cuts ~1 − 1/P of all edges.
    let g = planted_communities(12, 50, 8, 150, 11);
    for p in [2usize, 4] {
        let greedy = ShardMap::degree_aware(&g, p);
        let local = ShardMap::locality_aware(&g, p);
        let (gc, lc) = (greedy.cut_edges(&g), local.cut_edges(&g));
        assert!(
            lc < gc,
            "P = {p}: locality cut {lc} must be strictly below greedy cut {gc}"
        );
        // Not just lower — actually small: locality must find (most of)
        // the planted structure, not shave a few edges off random.
        assert!(
            (lc as f64) < 0.25 * g.num_edges() as f64,
            "P = {p}: locality cut {lc} of {} edges is not local",
            g.num_edges()
        );
    }
}

#[test]
fn locality_reduces_coordination_exchanges_per_update() {
    let g = planted_communities(8, 40, 8, 80, 5);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 0x5eed).take_updates(600);
    for p in [2usize, 4] {
        let mut runs = Vec::new();
        for part in [Partitioner::DegreeGreedy, Partitioner::Locality] {
            let mut e: ShardedEngine = EngineBuilder::on(g.clone())
                .k(2)
                .shards(p)
                .partitioner(part)
                .build_as()
                .unwrap();
            assert_eq!(e.partitioner(), part);
            for u in &ups {
                e.try_apply(u).unwrap();
            }
            e.check_consistency().unwrap();
            runs.push((e.coordination_stats(), e.solution()));
        }
        let ((g_ex, g_cmds), ref g_sol) = runs[0];
        let ((l_ex, l_cmds), ref l_sol) = runs[1];
        // The partition may only change coordination cost, never the
        // solution: same update stream, same independent set.
        assert_eq!(l_sol, g_sol, "P = {p}: partitioner changed the solution");
        assert!(
            l_ex < g_ex,
            "P = {p}: locality exchanges {l_ex} must drop below greedy's {g_ex}"
        );
        assert!(
            l_cmds < g_cmds,
            "P = {p}: locality commands {l_cmds} must drop below greedy's {g_cmds}"
        );
    }
}
