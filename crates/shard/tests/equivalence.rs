//! Cross-shard equivalence: the canonical protocol makes the maintained
//! solution a pure function of the update sequence, so `ShardedEngine`
//! at P ∈ {1, 2, 4} (threaded cells, two-phase boundary queues) — under
//! **both** partitioners, degree-greedy and locality-aware — and the
//! sequential single-cell `CanonicalMis` must produce **identical**
//! solutions — equal size included — on arbitrary update streams, while
//! staying independent, maximal, and k-maximal on the full graph.

use dynamis_core::{DynamicMis, EngineBuilder, Partitioner, SolutionMirror};
use dynamis_gen::uniform::gnm;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, Update};
use dynamis_shard::{CanonicalMis, ShardedEngine};
use dynamis_static::verify::{is_independent_dynamic, is_k_maximal_dynamic, is_maximal_dynamic};
use proptest::prelude::*;

/// The subjects of the equivalence claim for swap depth `k`: the
/// sequential reference plus the sharded engine at P ∈ {1, 2, 4} under
/// each partitioner — all on the default fused, pipelined write path —
/// plus one barriered (`pipeline(false)`) engine: commit pipelining
/// only overlaps the exchange with coordinator-side work, so it must be
/// observationally invisible. The partition decides who owns what —
/// never what the solution is — so one generator pins both strategies.
fn subjects(g: &DynamicGraph, k: usize) -> Vec<Box<dyn DynamicMis>> {
    let on = |p: usize, part: Partitioner| {
        EngineBuilder::on(g.clone())
            .k(k)
            .shards(p)
            .partitioner(part)
    };
    let mut v: Vec<Box<dyn DynamicMis>> = vec![Box::new(
        on(1, Partitioner::DegreeGreedy)
            .build_as::<CanonicalMis>()
            .unwrap(),
    )];
    for part in [Partitioner::DegreeGreedy, Partitioner::Locality] {
        for p in [1usize, 2, 4] {
            v.push(Box::new(on(p, part).build_as::<ShardedEngine>().unwrap()));
        }
    }
    v.push(Box::new(
        on(3, Partitioner::DegreeGreedy)
            .pipeline(false)
            .build_as::<ShardedEngine>()
            .unwrap(),
    ));
    v
}

/// Subjects for the serialized-commit variant: `swap_wave(1)` caps every
/// round at one commit, which changes *which* canonical function runs —
/// so wave-1 engines are compared among themselves (every shard count
/// and the sequential reference must still agree), never against the
/// fused default.
fn wave1_subjects(g: &DynamicGraph, k: usize) -> Vec<Box<dyn DynamicMis>> {
    let on = |p: usize, part: Partitioner| {
        EngineBuilder::on(g.clone())
            .k(k)
            .shards(p)
            .partitioner(part)
            .swap_wave(1)
    };
    let mut v: Vec<Box<dyn DynamicMis>> = vec![Box::new(
        on(1, Partitioner::DegreeGreedy)
            .build_as::<CanonicalMis>()
            .unwrap(),
    )];
    for part in [Partitioner::DegreeGreedy, Partitioner::Locality] {
        for p in [2usize, 4] {
            v.push(Box::new(on(p, part).build_as::<ShardedEngine>().unwrap()));
        }
    }
    v
}

fn assert_all_equal(engines: &[Box<dyn DynamicMis>], context: &str) -> Vec<u32> {
    let reference = engines[0].solution();
    for e in &engines[1..] {
        assert_eq!(
            e.solution(),
            reference,
            "{} diverged from {} {context}",
            e.name(),
            engines[0].name()
        );
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Random streams over random graphs: identical solutions after
    /// every update at k = 1, invariants verified on the final state.
    #[test]
    fn sharded_matches_sequential_k1(
        seed in 0u64..10_000,
        n in 6usize..34,
        steps in 5usize..120,
    ) {
        run_equivalence(seed, n, steps, 1)?;
    }

    /// Same property at k = 2 (2-swap pipeline included).
    #[test]
    fn sharded_matches_sequential_k2(
        seed in 0u64..10_000,
        n in 6usize..30,
        steps in 5usize..90,
    ) {
        run_equivalence(seed, n, steps, 2)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The serialized-commit family: with `swap_wave(1)` every engine —
    /// sequential reference included — commits at most one swap per
    /// round, and the whole family must still agree per update. This
    /// pins the wave cap as a *shared* canonical-function parameter:
    /// capping commits changes the answer deterministically, never
    /// per shard count.
    #[test]
    fn wave1_family_matches_sequential(
        seed in 0u64..10_000,
        n in 6usize..28,
        steps in 5usize..70,
    ) {
        let m = (n * (n - 1) / 4).min(3 * n);
        let g = gnm(n, m, seed);
        let ups =
            UpdateStream::new(&g, StreamConfig::default(), seed ^ 0x3a7e).take_updates(steps);
        let mut engines = wave1_subjects(&g, 2);
        assert_all_equal(&engines, "at bootstrap (wave = 1)");
        for (i, u) in ups.iter().enumerate() {
            for e in engines.iter_mut() {
                e.try_apply(u)
                    .map_err(|err| TestCaseError::fail(format!("{}: {u:?}: {err}", e.name())))?;
            }
            let sol = assert_all_equal(&engines, &format!("after update {i} ({u:?}, wave = 1)"));
            let graph = engines[0].graph();
            prop_assert!(
                is_independent_dynamic(graph, &sol),
                "not independent after {u:?}"
            );
            prop_assert!(is_maximal_dynamic(graph, &sol), "not maximal after {u:?}");
        }
    }
}

fn run_equivalence(seed: u64, n: usize, steps: usize, k: usize) -> Result<(), TestCaseError> {
    let m = (n * (n - 1) / 4).min(3 * n);
    let g = gnm(n, m, seed);
    let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xabcd).take_updates(steps);
    let mut engines = subjects(&g, k);
    assert_all_equal(&engines, "at bootstrap");
    for (i, u) in ups.iter().enumerate() {
        for e in engines.iter_mut() {
            e.try_apply(u)
                .map_err(|err| TestCaseError::fail(format!("{}: {u:?}: {err}", e.name())))?;
        }
        let sol = assert_all_equal(&engines, &format!("after update {i} ({u:?})"));
        let graph = engines[0].graph();
        prop_assert!(
            is_independent_dynamic(graph, &sol),
            "not independent after {u:?}"
        );
        prop_assert!(is_maximal_dynamic(graph, &sol), "not maximal after {u:?}");
    }
    // Brute-force k-maximality on the final state (exponential checker —
    // the graphs are proptest-sized).
    let sol = engines[0].solution();
    prop_assert!(
        is_k_maximal_dynamic(engines[0].graph(), &sol, k),
        "final solution is not {k}-maximal"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The per-update deltas of a sharded engine replay into a mirror
    /// that tracks `solution()` exactly — the session-API contract holds
    /// through the coordinator's merged feed.
    #[test]
    fn sharded_deltas_mirror_the_solution(
        seed in 0u64..10_000,
        n in 6usize..30,
        steps in 5usize..90,
    ) {
        let g = gnm(n, 2 * n, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0x51ed).take_updates(steps);
        let mut e: ShardedEngine = EngineBuilder::on(g).k(2).shards(3).build_as().unwrap();
        let mut mirror = SolutionMirror::new();
        mirror
            .apply(&e.drain_delta())
            .map_err(|err| TestCaseError::fail(err.to_string()))?;
        prop_assert_eq!(mirror.solution(), e.solution(), "bootstrap");
        for u in &ups {
            let delta = e.try_apply(u).unwrap();
            mirror
                .apply(&delta)
                .map_err(|err| TestCaseError::fail(err.to_string()))?;
            prop_assert_eq!(mirror.solution(), e.solution(), "after {:?}", u);
        }
        e.check_consistency().map_err(TestCaseError::fail)?;
    }

    /// The distributed dependent sets never drift from a global recount,
    /// and the partition audit passes mid-stream, not just at the end.
    #[test]
    fn cross_shard_state_audit(
        seed in 0u64..10_000,
        n in 6usize..30,
        steps in 4usize..24,
    ) {
        let g = gnm(n, 2 * n, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0x417).take_updates(steps);
        let mut e: ShardedEngine = EngineBuilder::on(g).k(2).shards(4).build_as().unwrap();
        e.check_consistency().map_err(TestCaseError::fail)?;
        for u in &ups {
            e.try_apply(u).unwrap();
            e.check_consistency().map_err(TestCaseError::fail)?;
        }
    }
}

/// Boundary-heavy regression: a bipartite-ish cut graph whose every edge
/// crosses sides, driven through a deletion-heavy schedule. With a
/// degree-balanced 2/4-way partition, most repairs cross shards.
#[test]
fn bipartite_cut_boundary_regression() {
    let sides = 7u32;
    let mut edges = Vec::new();
    for l in 0..sides {
        for r in 0..sides {
            edges.push((l, sides + r));
        }
    }
    // A light tail so degrees are not uniform.
    edges.push((2 * sides, 0));
    edges.push((2 * sides + 1, sides));
    let g = DynamicGraph::from_edges(2 * sides as usize + 2, &edges);

    for k in [1usize, 2] {
        let mut engines = subjects(&g, k);
        // Deterministic deletion-heavy schedule: strip one left vertex's
        // edges (freeing the other side), re-insert some, remove a hub.
        let mut schedule: Vec<Update> = (0..sides)
            .map(|r| Update::RemoveEdge(0, sides + r))
            .collect();
        schedule.push(Update::InsertEdge(0, sides));
        schedule.push(Update::RemoveVertex(1));
        schedule.extend((0..sides).map(|r| Update::RemoveEdge(2, sides + r)));
        schedule.push(Update::InsertVertex {
            id: 1,
            neighbors: vec![0, 2, sides + 1],
        });
        schedule.push(Update::RemoveEdge(3, sides + 2));
        for (i, u) in schedule.iter().enumerate() {
            for e in engines.iter_mut() {
                e.try_apply(u)
                    .unwrap_or_else(|err| panic!("{} step {i} {u:?}: {err}", e.name()));
            }
            let sol = assert_all_equal(&engines, &format!("at step {i} (k = {k})"));
            assert!(is_independent_dynamic(engines[0].graph(), &sol));
            assert!(is_maximal_dynamic(engines[0].graph(), &sol));
        }
        let sol = engines[0].solution();
        assert!(
            is_k_maximal_dynamic(engines[0].graph(), &sol, k),
            "cut graph final solution not {k}-maximal"
        );
    }
}

/// A star admits the classic 1-swap: the hub leaves, two leaves enter —
/// across a partition that separates hub and leaves.
#[test]
fn one_swap_fires_across_the_boundary() {
    let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[0])
            .shards(p)
            .build_as()
            .unwrap();
        assert_eq!(
            e.solution(),
            vec![1, 2, 3, 4],
            "P = {p}: bootstrap must 1-swap the hub out"
        );
        e.check_consistency().unwrap();
    }
}

/// P5 with `{1, 3}` is 1-maximal but admits a 2-swap to `{0, 2, 4}`;
/// the sharded k = 2 engine must find it through the pair pipeline.
#[test]
fn two_swap_fires_across_the_boundary() {
    let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[1, 3])
            .k(2)
            .shards(p)
            .build_as()
            .unwrap();
        assert_eq!(
            e.solution(),
            vec![0, 2, 4],
            "P = {p}: bootstrap must 2-swap {{1, 3}} out"
        );
        e.check_consistency().unwrap();
    }
}

/// Batch semantics match the eager engines' contract: prefix applied on
/// rejection with the failing index reported, invariant re-established.
#[test]
fn batch_prefix_semantics() {
    let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let mut e: ShardedEngine = EngineBuilder::on(g).shards(2).build_as().unwrap();
    let err = e
        .try_apply_batch(&[
            Update::RemoveEdge(0, 1),
            Update::InsertEdge(1, 2), // duplicate → rejected
            Update::RemoveEdge(2, 3), // never reached
        ])
        .unwrap_err();
    assert!(matches!(
        err,
        dynamis_core::EngineError::Batch { index: 1, .. }
    ));
    assert!(!e.graph().has_edge(0, 1), "prefix stays applied");
    assert!(e.graph().has_edge(2, 3), "suffix is not applied");
    e.check_consistency().unwrap();
}

/// Rejected updates leave the sharded engine provably unchanged.
#[test]
fn rejections_leave_state_unchanged() {
    let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
    let mut e: ShardedEngine = EngineBuilder::on(g).k(2).shards(2).build_as().unwrap();
    let before = e.solution();
    for bad in [
        Update::InsertEdge(0, 1),
        Update::RemoveEdge(0, 2),
        Update::InsertEdge(0, 9),
        Update::RemoveVertex(9),
        Update::InsertVertex {
            id: 9,
            neighbors: vec![0],
        },
    ] {
        assert!(e.try_apply(&bad).is_err(), "{bad:?} must be rejected");
    }
    assert_eq!(e.solution(), before);
    e.check_consistency().unwrap();
}

/// `k ≥ 3` has no canonical sharded counterpart and must be rejected,
/// not silently downgraded.
#[test]
fn k3_is_rejected() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    assert!(matches!(
        EngineBuilder::on(g)
            .k(3)
            .shards(2)
            .build_as::<ShardedEngine>(),
        Err(dynamis_core::EngineError::BadParameter(_))
    ));
}
