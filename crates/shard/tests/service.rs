//! Serving-layer integration: the sharded service behind concurrent
//! readers, per-shard logs merging consistently with the single merged
//! log, and a clean shutdown flush.

use dynamis_core::EngineBuilder;
use dynamis_gen::uniform::gnm;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::Update;
use dynamis_serve::ServeConfig;
use dynamis_shard::ShardedService;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn sharded_service_round_trip() {
    let g = gnm(400, 1200, 7);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 99).take_updates(3000);
    let (service, mut reader) =
        ShardedService::spawn(EngineBuilder::on(g).k(2).shards(3), ServeConfig::default()).unwrap();
    assert_eq!(service.shards(), 3);
    // Readers see the bootstrap immediately.
    assert!(!reader.is_empty());
    let mut merged = service.merged_reader();
    assert_eq!(merged.snapshot(), reader.snapshot());

    // Concurrent point queries on forked readers while ingesting.
    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..2)
        .map(|i| {
            let mut r = reader.fork();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = i as u32;
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if r.contains(v % 400) {
                        hits += 1;
                    }
                    v = v.wrapping_mul(2_654_435_761).wrapping_add(1);
                }
                hits
            })
        })
        .collect();

    let mut accepted = 0usize;
    for chunk in ups.chunks(64) {
        let verdicts = service
            .submit_batch(chunk.to_vec())
            .unwrap()
            .wait()
            .unwrap();
        accepted += verdicts.iter().filter(|v| v.is_ok()).count();
    }
    assert!(accepted > 0, "stream must apply");

    let report = service.shutdown();
    stop.store(true, Ordering::Relaxed);
    for q in queriers {
        q.join().unwrap();
    }
    assert_eq!(
        reader.snapshot(),
        report.solution,
        "per-shard cut must converge to the final solution"
    );
    assert_eq!(merged.snapshot(), report.solution);
    let seqs = reader.seq_vector().to_vec();
    assert!(
        seqs.iter().all(|&s| s == seqs[0]),
        "post-shutdown cut must align every shard log: {seqs:?}"
    );
    assert_eq!(report.stats.applied as usize, accepted);
}

#[test]
fn per_update_tickets_report_rejections() {
    let g = gnm(20, 40, 3);
    let (service, _reader) = ShardedService::spawn(
        EngineBuilder::on(g.clone()).shards(2),
        ServeConfig::default(),
    )
    .unwrap();
    // A duplicate insert is rejected with the engine's typed error; a
    // valid one is applied.
    let existing = g.edges().next().unwrap();
    assert!(service
        .submit(Update::InsertEdge(existing.0, existing.1))
        .unwrap()
        .wait()
        .is_err());
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    service.shutdown();
}
