//! Ignored diagnostic: coordination-cost profile of the sharded engine
//! on the bench workload shape (run with `--ignored --nocapture`).

use dynamis_core::{DynamicMis, EngineBuilder};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_shard::ShardedEngine;
use std::time::Instant;

#[test]
#[ignore = "diagnostic, prints coordination stats"]
fn profile_exchanges() {
    let base = chung_lu(10_000, 2.4, 8.0, 77);
    let ups = UpdateStream::new(&base, StreamConfig::default(), 77 ^ 0xfeed).take_updates(8_000);
    for (k, p) in [(1usize, 1usize), (2, 1), (1, 4), (2, 4)] {
        let mut e: ShardedEngine = EngineBuilder::on(base.clone())
            .k(k)
            .shards(p)
            .build_as()
            .unwrap();
        let (x0, c0) = e.coordination_stats();
        let t = Instant::now();
        for chunk in ups.chunks(250) {
            e.try_apply_batch(chunk).unwrap();
        }
        let dt = t.elapsed().as_secs_f64();
        let (x1, c1) = e.coordination_stats();
        println!(
            "k={k} P={p}: {:.0} upd/s, {:.2} exchanges/update ({} total), {:.2} cmds/update; bootstrap {x0} exch",
            ups.len() as f64 / dt,
            (x1 - x0) as f64 / ups.len() as f64,
            x1 - x0,
            (c1 - c0) as f64 / ups.len() as f64,
        );
    }
}
