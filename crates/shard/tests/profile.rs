//! Coordination-cost profile: a tracked regression pinning the fused
//! protocol's exchanges-per-update on a planted-community workload —
//! the locality-partitioned regime the sharded write path is built for
//! — plus the original chung-lu diagnostic (ignored; run with
//! `--ignored --nocapture`).

use dynamis_core::{DynamicMis, EngineBuilder, Partitioner};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::structured::planted_communities;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_shard::ShardedEngine;
use std::time::Instant;

/// Regression ceiling for the fused write path: a locality-partitioned
/// planted-community workload must stay under a fixed exchanges-per-
/// update budget at P ∈ {2, 4}. The round-fused resolution lands at
/// ~0.37 exchanges/update here (the ceiling leaves slack for
/// stream-shape drift); resolving candidates one exchange at a time
/// measures ≥1.2 and the pre-fused one-commit-per-exchange protocol
/// ≥4, so either regression trips this.
#[test]
fn fused_exchange_ceiling_on_planted_communities() {
    let base = planted_communities(20, 100, 8, 170, 7);
    let ups = UpdateStream::new(&base, StreamConfig::default(), 7 ^ 0xfeed).take_updates(2_000);
    for (p, ceiling) in [(2usize, 1.0f64), (4, 1.0)] {
        let mut e: ShardedEngine = EngineBuilder::on(base.clone())
            .k(2)
            .shards(p)
            .partitioner(Partitioner::Locality)
            .build_as()
            .unwrap();
        let (x0, _) = e.coordination_stats();
        for chunk in ups.chunks(250) {
            e.try_apply_batch(chunk).unwrap();
        }
        let (x1, _) = e.coordination_stats();
        let per_update = (x1 - x0) as f64 / ups.len() as f64;
        println!(
            "planted locality P={p}: {per_update:.2} exchanges/update, \
             {:?} swap rounds",
            e.swap_round_stats()
        );
        assert!(
            per_update < ceiling,
            "P={p}: {per_update:.2} exchanges/update breaches the {ceiling} ceiling — \
             the fused write path regressed"
        );
    }
}

#[test]
#[ignore = "diagnostic, prints coordination stats"]
fn profile_exchanges() {
    let base = chung_lu(10_000, 2.4, 8.0, 77);
    let ups = UpdateStream::new(&base, StreamConfig::default(), 77 ^ 0xfeed).take_updates(8_000);
    for (k, p) in [(1usize, 1usize), (2, 1), (1, 4), (2, 4)] {
        let mut e: ShardedEngine = EngineBuilder::on(base.clone())
            .k(k)
            .shards(p)
            .build_as()
            .unwrap();
        let (x0, c0) = e.coordination_stats();
        let t = Instant::now();
        for chunk in ups.chunks(250) {
            e.try_apply_batch(chunk).unwrap();
        }
        let dt = t.elapsed().as_secs_f64();
        let (x1, c1) = e.coordination_stats();
        println!(
            "k={k} P={p}: {:.0} upd/s, {:.2} exchanges/update ({} total), {:.2} cmds/update; bootstrap {x0} exch",
            ups.len() as f64 / dt,
            (x1 - x0) as f64 / ups.len() as f64,
            x1 - x0,
            (c1 - c0) as f64 / ups.len() as f64,
        );
    }
}
