//! Unit suite for the fused round's independence detection: candidates
//! with disjoint footprints co-commit in one round; candidates whose
//! footprints touch are deferred and re-judged against the committed
//! state; the `swap_wave(1)` cap serializes even independent commits.
//!
//! Every gadget is settled at bootstrap (via `initial`) so the stats
//! read back from [`ShardedEngine::swap_round_stats`] describe exactly
//! the rounds the gadget provoked, and every outcome is pinned against
//! [`CanonicalMis`] — the independence rule may only change *when* a
//! swap commits, never what the settled solution is.

use dynamis_core::{DynamicMis, EngineBuilder};
use dynamis_graph::DynamicGraph;
use dynamis_shard::{CanonicalMis, ShardedEngine};

/// Two vertex-disjoint stars, both hubs planted in the initial
/// solution. Both 1-swaps (hub out, two leaves in) have disjoint
/// footprints, so the fused round must commit them together: one
/// round, two swaps, nothing deferred.
#[test]
fn disjoint_candidates_co_commit_in_one_round() {
    let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5)]);
    let reference: CanonicalMis = EngineBuilder::on(g.clone())
        .initial(&[0, 3])
        .build_as()
        .unwrap();
    assert_eq!(reference.solution(), vec![1, 2, 4, 5]);
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[0, 3])
            .shards(p)
            .build_as()
            .unwrap();
        assert_eq!(e.solution(), reference.solution(), "P = {p}");
        let s = e.swap_round_stats();
        assert_eq!(s.rounds, 1, "P = {p}: disjoint swaps must share a round");
        assert_eq!(s.swaps, 2, "P = {p}");
        assert_eq!(s.max_wave, 2, "P = {p}");
        assert_eq!(s.deferred, 0, "P = {p}: no footprint conflict exists");
        e.check_consistency().unwrap();
    }
}

/// Two stars whose enterers are adjacent across the gadgets (edge
/// `2 – 4`): both 1-swaps are proposed against the pre-round state,
/// but co-committing them would put the adjacent pair `{2, 4}` into
/// the solution. The footprint test must defer the higher-keyed
/// candidate; the re-scan then refutes it against the committed state
/// (vertex 4 gained solution parent 2), so hub 3 stays in.
#[test]
fn adjacent_enterers_defer_and_reresolve() {
    let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5), (2, 4)]);
    let reference: CanonicalMis = EngineBuilder::on(g.clone())
        .initial(&[0, 3])
        .build_as()
        .unwrap();
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[0, 3])
            .shards(p)
            .build_as()
            .unwrap();
        assert_eq!(e.solution(), reference.solution(), "P = {p}");
        let s = e.swap_round_stats();
        assert!(
            s.deferred >= 1,
            "P = {p}: the conflicting candidate must be deferred, got {s:?}"
        );
        assert_eq!(s.max_wave, 1, "P = {p}: the swaps must not co-commit");
        e.check_consistency().unwrap();
    }
}

/// A chain of dependence: hub 3's swap is invalid until hub 0's swap
/// commits (leaf 4 starts at count 2 — parents 0 and 3). The rounds
/// must serialize — swap at 0 first, then the re-armed swap at 3 —
/// and both must land.
#[test]
fn dependent_candidates_commit_in_successive_rounds() {
    let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5), (0, 4)]);
    let reference: CanonicalMis = EngineBuilder::on(g.clone())
        .initial(&[0, 3])
        .build_as()
        .unwrap();
    assert_eq!(reference.solution(), vec![1, 2, 4, 5]);
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[0, 3])
            .shards(p)
            .build_as()
            .unwrap();
        assert_eq!(e.solution(), reference.solution(), "P = {p}");
        let s = e.swap_round_stats();
        assert_eq!(s.rounds, 2, "P = {p}: the swaps must serialize, got {s:?}");
        assert_eq!(s.swaps, 2, "P = {p}");
        assert_eq!(s.max_wave, 1, "P = {p}");
        e.check_consistency().unwrap();
    }
}

/// The disjoint gadget again, under `swap_wave(1)`: the cap — not a
/// conflict — forces one commit per round, so the same two swaps now
/// cost two rounds and the second candidate shows up as deferred.
#[test]
fn wave_cap_serializes_independent_commits() {
    let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5)]);
    for p in [1usize, 2, 4] {
        let mut e: ShardedEngine = EngineBuilder::on(g.clone())
            .initial(&[0, 3])
            .shards(p)
            .swap_wave(1)
            .build_as()
            .unwrap();
        assert_eq!(e.solution(), vec![1, 2, 4, 5], "P = {p}");
        let s = e.swap_round_stats();
        assert_eq!(s.rounds, 2, "P = {p}: wave = 1 must serialize, got {s:?}");
        assert_eq!(s.swaps, 2, "P = {p}");
        assert_eq!(s.max_wave, 1, "P = {p}");
        assert!(s.deferred >= 1, "P = {p}: the cap defers the second swap");
        e.check_consistency().unwrap();
    }
}
