//! # dynamis-problems — problems that reduce to (dynamic) MaxIS
//!
//! The paper's introduction motivates MaxIS through its classic companion
//! problems and applications. This crate builds each of them on top of the
//! workspace's MIS machinery:
//!
//! * [`vertex_cover`] — minimum vertex cover as the complement of an
//!   independent set, maintained dynamically by any [`DynamicMis`] engine,
//!   the classical matching-based static 2-approximation, and exact
//!   MaxIS/MVC on bipartite graphs via König's theorem;
//! * [`clique`] — maximum clique via MaxIS on the complement graph
//!   (exact for small graphs, greedy at scale);
//! * [`coloring`] — greedy coloring in degeneracy order (a
//!   `degeneracy + 1` guarantee) and the iterated-MIS coloring that
//!   peels one independent color class at a time;
//! * [`labeling`] — automated map labeling \[7\]: maximize the number of
//!   non-overlapping labels by solving MaxIS on the label conflict graph;
//! * [`collusion`] — collusion detection in voting pools \[4\]: the
//!   largest mutually-independent voter set is a MaxIS of the suspicious
//!   agreement graph;
//! * [`intervals`] — interval scheduling, where MaxIS is solvable exactly
//!   in `O(n log n)`; used as ground truth for approximation-quality
//!   tests on a graph class with known α.
//!
//! [`DynamicMis`]: dynamis_core::DynamicMis

pub mod clique;
pub mod collusion;
pub mod coloring;
pub mod intervals;
pub mod labeling;
pub mod vertex_cover;

pub use clique::{complement_graph, greedy_clique, max_clique_exact};
pub use collusion::{agreement_graph, honest_majority_bound, Ballot};
pub use coloring::{greedy_coloring, is_proper_coloring, mis_coloring, Coloring};
pub use intervals::{interval_conflict_graph, max_non_overlapping, Interval};
pub use labeling::{label_conflict_graph, select_labels, LabelBox};
pub use vertex_cover::{
    bipartite_max_independent_set, is_vertex_cover, matching_vertex_cover, DynamicVertexCover,
};
