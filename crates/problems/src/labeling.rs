//! Automated map labeling — the paper's application \[7\].
//!
//! Each feature on a map offers one or more rectangular label
//! *candidates*; two candidates conflict when their rectangles overlap or
//! when they label the same feature. A maximum independent set of the
//! conflict graph is a maximum set of simultaneously displayable labels.
//! As the viewport pans and zooms, candidates appear and disappear —
//! a naturally dynamic MaxIS workload.

use dynamis_graph::{CsrGraph, DynamicGraph};

/// An axis-aligned label rectangle attached to a map feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelBox {
    /// Feature id; candidates of the same feature always conflict.
    pub feature: u32,
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width (> 0).
    pub w: f64,
    /// Height (> 0).
    pub h: f64,
}

impl LabelBox {
    /// Creates a box, panicking on non-positive extent.
    pub fn new(feature: u32, x: f64, y: f64, w: f64, h: f64) -> Self {
        assert!(w > 0.0 && h > 0.0, "label box must have positive extent");
        LabelBox {
            feature,
            x,
            y,
            w,
            h,
        }
    }

    /// Whether two boxes overlap with positive area (shared edges do not
    /// conflict).
    pub fn overlaps(&self, other: &LabelBox) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// Whether two candidates conflict: geometric overlap or same feature.
    pub fn conflicts(&self, other: &LabelBox) -> bool {
        self.feature == other.feature || self.overlaps(other)
    }
}

/// Builds the label conflict graph with a sweep over the x-axis:
/// candidates are sorted by left edge and compared only against boxes
/// whose x-range is still open, so runtime is O(n log n + conflicts)
/// plus the same-feature cliques.
pub fn label_conflict_graph(labels: &[LabelBox]) -> CsrGraph {
    let n = labels.len();
    let mut edges = Vec::new();
    // Same-feature cliques.
    let mut by_feature: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (i, l) in labels.iter().enumerate() {
        by_feature.entry(l.feature).or_default().push(i as u32);
    }
    for group in by_feature.values() {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                edges.push((a.min(b), a.max(b)));
            }
        }
    }
    // Geometric overlaps by x-sweep.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        labels[a as usize]
            .x
            .partial_cmp(&labels[b as usize].x)
            .expect("label coordinates must not be NaN")
    });
    let mut active: Vec<u32> = Vec::new();
    for &i in &order {
        let li = labels[i as usize];
        active.retain(|&j| {
            let lj = labels[j as usize];
            lj.x + lj.w > li.x
        });
        for &j in &active {
            if li.overlaps(&labels[j as usize]) {
                edges.push((i.min(j), i.max(j)));
            }
        }
        active.push(i);
    }
    CsrGraph::from_edges(n, &edges)
}

/// Selects a maximal conflict-free label set with the min-degree greedy
/// (a strong static baseline; feed the conflict graph to a dynamic engine
/// for the evolving-viewport setting). Returns candidate indices.
pub fn select_labels(labels: &[LabelBox]) -> Vec<u32> {
    dynamis_static::greedy_mis(&label_conflict_graph(labels))
}

/// The conflict graph in dynamic form, for engine-driven selection.
pub fn label_conflict_dynamic(labels: &[LabelBox]) -> DynamicGraph {
    let csr = label_conflict_graph(labels);
    let mut edges = Vec::with_capacity(csr.num_edges());
    for u in 0..csr.num_vertices() as u32 {
        for &v in csr.neighbors(u) {
            if v > u {
                edges.push((u, v));
            }
        }
    }
    DynamicGraph::from_edges(labels.len(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_static::verify::is_independent;

    #[test]
    fn overlap_geometry() {
        let a = LabelBox::new(0, 0.0, 0.0, 2.0, 1.0);
        assert!(a.overlaps(&LabelBox::new(1, 1.0, 0.5, 2.0, 1.0)));
        assert!(
            !a.overlaps(&LabelBox::new(1, 2.0, 0.0, 1.0, 1.0)),
            "edge touch"
        );
        assert!(
            !a.overlaps(&LabelBox::new(1, 0.0, 1.0, 2.0, 1.0)),
            "top touch"
        );
        assert!(!a.overlaps(&LabelBox::new(1, 5.0, 5.0, 1.0, 1.0)));
        assert!(
            a.overlaps(&LabelBox::new(1, 0.5, 0.25, 0.5, 0.5)),
            "contained"
        );
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn zero_width_box_panics() {
        LabelBox::new(0, 0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn same_feature_candidates_conflict_without_overlap() {
        let a = LabelBox::new(7, 0.0, 0.0, 1.0, 1.0);
        let b = LabelBox::new(7, 10.0, 10.0, 1.0, 1.0);
        assert!(!a.overlaps(&b));
        assert!(a.conflicts(&b));
        let g = label_conflict_graph(&[a, b]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn conflict_graph_matches_pairwise_predicate() {
        let labels = vec![
            LabelBox::new(0, 0.0, 0.0, 2.0, 1.0),
            LabelBox::new(0, 2.5, 0.0, 2.0, 1.0),
            LabelBox::new(1, 1.0, 0.5, 2.0, 1.0),
            LabelBox::new(2, 8.0, 8.0, 1.0, 1.0),
            LabelBox::new(3, 1.5, -0.5, 1.0, 2.0),
        ];
        let g = label_conflict_graph(&labels);
        for i in 0..labels.len() as u32 {
            for j in i + 1..labels.len() as u32 {
                assert_eq!(
                    g.has_edge(i, j),
                    labels[i as usize].conflicts(&labels[j as usize]),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn selection_is_conflict_free_and_one_per_feature() {
        // Three features, two candidates each, laid out so one choice per
        // feature fits.
        let labels = vec![
            LabelBox::new(0, 0.0, 0.0, 2.0, 1.0),
            LabelBox::new(0, 0.0, 1.5, 2.0, 1.0),
            LabelBox::new(1, 3.0, 0.0, 2.0, 1.0),
            LabelBox::new(1, 3.0, 1.5, 2.0, 1.0),
            LabelBox::new(2, 6.0, 0.0, 2.0, 1.0),
            LabelBox::new(2, 6.0, 1.5, 2.0, 1.0),
        ];
        let g = label_conflict_graph(&labels);
        let picked = select_labels(&labels);
        assert!(is_independent(&g, &picked));
        assert_eq!(picked.len(), 3, "one label per feature");
        let mut feats: Vec<u32> = picked.iter().map(|&i| labels[i as usize].feature).collect();
        feats.sort_unstable();
        assert_eq!(feats, vec![0, 1, 2]);
    }

    #[test]
    fn dynamic_form_agrees_with_csr() {
        let labels = vec![
            LabelBox::new(0, 0.0, 0.0, 1.5, 1.0),
            LabelBox::new(1, 1.0, 0.0, 1.5, 1.0),
            LabelBox::new(2, 2.0, 0.0, 1.5, 1.0),
        ];
        let csr = label_conflict_graph(&labels);
        let dy = label_conflict_dynamic(&labels);
        assert_eq!(csr.num_edges(), dy.num_edges());
        for (u, v) in dy.edges() {
            assert!(csr.has_edge(u, v));
        }
    }

    #[test]
    fn empty_input() {
        assert!(select_labels(&[]).is_empty());
        assert_eq!(label_conflict_graph(&[]).num_vertices(), 0);
    }
}
