//! Interval scheduling: a graph class where MaxIS is exactly solvable.
//!
//! Intervals conflict when they overlap; non-overlapping selections are
//! independent sets of the *interval graph*, and the classic
//! earliest-finish greedy computes a true MaxIS in `O(n log n)`. That
//! makes interval workloads the one setting where the dynamic engines'
//! solutions can be compared against α(G) at any scale — no exact solver
//! budget involved — which the approximation tests exploit.

use dynamis_graph::{CsrGraph, DynamicGraph};

/// A half-open interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start.
    pub start: i64,
    /// Exclusive end; must satisfy `end > start`.
    pub end: i64,
}

impl Interval {
    /// Creates an interval, panicking on `end ≤ start`.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(end > start, "empty interval [{start}, {end})");
        Interval { start, end }
    }

    /// Whether two half-open intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Builds the conflict graph: vertex `i` is interval `i`, edges join
/// overlapping pairs. Sweep-line construction, O(n log n + output).
pub fn interval_conflict_graph(intervals: &[Interval]) -> CsrGraph {
    let n = intervals.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| intervals[i as usize].start);
    let mut edges = Vec::new();
    // Active set of intervals whose end is past the sweep point. A simple
    // Vec is fine: each element is scanned once per overlap (output-bound).
    let mut active: Vec<u32> = Vec::new();
    for &i in &order {
        let iv = intervals[i as usize];
        active.retain(|&j| intervals[j as usize].end > iv.start);
        for &j in &active {
            edges.push((i.min(j), i.max(j)));
        }
        active.push(i);
    }
    CsrGraph::from_edges(n, &edges)
}

/// Same conflict graph as a [`DynamicGraph`], for feeding the dynamic
/// engines.
pub fn interval_conflict_dynamic(intervals: &[Interval]) -> DynamicGraph {
    let csr = interval_conflict_graph(intervals);
    let mut edges = Vec::with_capacity(csr.num_edges());
    for u in 0..csr.num_vertices() as u32 {
        for &v in csr.neighbors(u) {
            if v > u {
                edges.push((u, v));
            }
        }
    }
    DynamicGraph::from_edges(intervals.len(), &edges)
}

/// Exact maximum non-overlapping selection by the earliest-finish greedy.
/// Returns interval indices; the size equals α of the conflict graph.
pub fn max_non_overlapping(intervals: &[Interval]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..intervals.len() as u32).collect();
    order.sort_unstable_by_key(|&i| intervals[i as usize].end);
    let mut chosen = Vec::new();
    let mut frontier = i64::MIN;
    for &i in &order {
        let iv = intervals[i as usize];
        if iv.start >= frontier {
            chosen.push(i);
            frontier = iv.end;
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_static::verify::{brute_force_alpha, is_independent};

    fn ivs(pairs: &[(i64, i64)]) -> Vec<Interval> {
        pairs.iter().map(|&(s, e)| Interval::new(s, e)).collect()
    }

    #[test]
    fn overlap_semantics_are_half_open() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 9);
        assert!(!a.overlaps(&b), "touching intervals do not overlap");
        assert!(a.overlaps(&Interval::new(4, 6)));
        assert!(a.overlaps(&Interval::new(-3, 1)));
        assert!(a.overlaps(&Interval::new(1, 2)), "containment overlaps");
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn degenerate_interval_panics() {
        Interval::new(3, 3);
    }

    #[test]
    fn conflict_graph_edges_match_pairwise_overlaps() {
        let intervals = ivs(&[(0, 4), (2, 6), (5, 8), (7, 9), (0, 9)]);
        let g = interval_conflict_graph(&intervals);
        for i in 0..intervals.len() as u32 {
            for j in i + 1..intervals.len() as u32 {
                assert_eq!(
                    g.has_edge(i, j),
                    intervals[i as usize].overlaps(&intervals[j as usize]),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn greedy_selection_is_independent_and_optimal() {
        let intervals = ivs(&[(0, 3), (2, 5), (4, 7), (6, 9), (8, 11), (1, 10)]);
        let chosen = max_non_overlapping(&intervals);
        let g = interval_conflict_graph(&intervals);
        assert!(is_independent(&g, &chosen));
        assert_eq!(chosen.len(), brute_force_alpha(&g));
    }

    #[test]
    fn greedy_matches_brute_force_on_random_instances() {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 4 + (rng() % 12) as usize;
            let intervals: Vec<Interval> = (0..n)
                .map(|_| {
                    let s = (rng() % 50) as i64;
                    let len = 1 + (rng() % 10) as i64;
                    Interval::new(s, s + len)
                })
                .collect();
            let g = interval_conflict_graph(&intervals);
            let greedy = max_non_overlapping(&intervals);
            assert!(is_independent(&g, &greedy), "round {round}");
            assert_eq!(greedy.len(), brute_force_alpha(&g), "round {round}");
        }
    }

    #[test]
    fn dynamic_and_csr_conflict_graphs_agree() {
        let intervals = ivs(&[(0, 4), (3, 6), (5, 9), (1, 2)]);
        let csr = interval_conflict_graph(&intervals);
        let dy = interval_conflict_dynamic(&intervals);
        assert_eq!(csr.num_edges(), dy.num_edges());
        for (u, v) in dy.edges() {
            assert!(csr.has_edge(u, v));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(max_non_overlapping(&[]).is_empty());
        let one = ivs(&[(1, 2)]);
        assert_eq!(max_non_overlapping(&one), vec![0]);
        assert_eq!(interval_conflict_graph(&one).num_edges(), 0);
    }
}
