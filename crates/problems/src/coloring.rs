//! Graph coloring through the MIS lens.
//!
//! Two classic constructions:
//!
//! * [`greedy_coloring`] in degeneracy order — uses at most
//!   `degeneracy + 1` colors, the bound behind the "greed is good on
//!   scale-free graphs" line of work the paper builds its PLB analysis on;
//! * [`mis_coloring`] — repeatedly extract a maximal independent set and
//!   make it a color class; each class is independent by construction, so
//!   the result is always proper, and better independent sets mean fewer
//!   classes.

use dynamis_graph::algo::degeneracy_ordering;
use dynamis_graph::CsrGraph;
use dynamis_static::greedy_mis;

/// A proper vertex coloring.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// `color[v]` = color index of vertex `v`, in `0..num_colors`.
    pub color: Vec<u32>,
    /// Number of colors used.
    pub num_colors: u32,
}

impl Coloring {
    /// The vertices of one color class.
    pub fn class(&self, c: u32) -> Vec<u32> {
        (0..self.color.len() as u32)
            .filter(|&v| self.color[v as usize] == c)
            .collect()
    }

    /// Sizes of all color classes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_colors as usize];
        for &c in &self.color {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Whether `coloring` assigns different colors to every pair of adjacent
/// vertices.
pub fn is_proper_coloring(g: &CsrGraph, coloring: &Coloring) -> bool {
    (0..g.num_vertices() as u32).all(|u| {
        g.neighbors(u)
            .iter()
            .all(|&v| coloring.color[u as usize] != coloring.color[v as usize])
    })
}

/// Greedy coloring along a *reversed* degeneracy ordering: when a vertex
/// is colored, at most `degeneracy` of its neighbors are already colored,
/// so `degeneracy + 1` colors always suffice.
pub fn greedy_coloring(g: &CsrGraph) -> Coloring {
    let n = g.num_vertices();
    let mut color = vec![u32::MAX; n];
    let mut used: Vec<u32> = Vec::new(); // scratch: colors seen on neighbors
    let order = degeneracy_ordering(g);
    let mut num_colors = 0u32;
    for &v in order.iter().rev() {
        used.clear();
        for &u in g.neighbors(v) {
            if color[u as usize] != u32::MAX {
                used.push(color[u as usize]);
            }
        }
        used.sort_unstable();
        used.dedup();
        // Smallest color absent from the neighborhood.
        let mut c = 0u32;
        for &seen in &used {
            if seen == c {
                c += 1;
            } else if seen > c {
                break;
            }
        }
        color[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring { color, num_colors }
}

/// Iterated-MIS coloring: extract a maximal independent set of the
/// residual graph, assign it the next color, delete it, repeat. The number
/// of classes never beats the chromatic number but shrinks as the
/// extracted sets grow — connecting solution quality of the MIS machinery
/// to a second objective.
pub fn mis_coloring(g: &CsrGraph) -> Coloring {
    let n = g.num_vertices();
    let mut color = vec![u32::MAX; n];
    let mut remaining: Vec<u32> = (0..n as u32).collect();
    let mut next_color = 0u32;
    while !remaining.is_empty() {
        // Build the residual subgraph on `remaining` with compacted ids.
        let mut rank = vec![u32::MAX; n];
        for (i, &v) in remaining.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &v in &remaining {
            for &u in g.neighbors(v) {
                if u > v && rank[u as usize] != u32::MAX {
                    edges.push((rank[v as usize], rank[u as usize]));
                }
            }
        }
        let sub = CsrGraph::from_edges(remaining.len(), &edges);
        let class = greedy_mis(&sub);
        debug_assert!(!class.is_empty(), "maximal IS of a non-empty graph");
        let mut taken = vec![false; remaining.len()];
        for &c in &class {
            color[remaining[c as usize] as usize] = next_color;
            taken[c as usize] = true;
        }
        next_color += 1;
        remaining = remaining
            .iter()
            .enumerate()
            .filter(|&(i, _)| !taken[i])
            .map(|(_, &v)| v)
            .collect();
    }
    Coloring {
        color,
        num_colors: next_color,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_graph::algo::degeneracy;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = complete(5);
        for coloring in [greedy_coloring(&g), mis_coloring(&g)] {
            assert!(is_proper_coloring(&g, &coloring));
            assert_eq!(coloring.num_colors, 5);
        }
    }

    #[test]
    fn bipartite_graph_gets_two_colors_from_greedy() {
        // C₆ is 2-chromatic; greedy in degeneracy order achieves it.
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let g = CsrGraph::from_edges(6, &edges);
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn greedy_respects_degeneracy_bound() {
        let g = CsrGraph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (6, 7),
                (7, 8),
            ],
        );
        let c = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        assert!(c.num_colors <= degeneracy(&g) + 1);
    }

    #[test]
    fn mis_coloring_classes_are_independent_sets() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
        let c = mis_coloring(&g);
        assert!(is_proper_coloring(&g, &c));
        for cls in 0..c.num_colors {
            let class = c.class(cls);
            for (i, &u) in class.iter().enumerate() {
                for &v in &class[i + 1..] {
                    assert!(!g.has_edge(u, v));
                }
            }
        }
        // Class sizes sum to n.
        assert_eq!(c.class_sizes().iter().sum::<usize>(), 7);
    }

    #[test]
    fn edgeless_graph_is_one_color() {
        let g = CsrGraph::from_edges(4, &[]);
        assert_eq!(greedy_coloring(&g).num_colors, 1);
        assert_eq!(mis_coloring(&g).num_colors, 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors, 0);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(mis_coloring(&g).num_colors, 0);
    }

    #[test]
    fn is_proper_detects_conflicts() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let bad = Coloring {
            color: vec![0, 0],
            num_colors: 1,
        };
        assert!(!is_proper_coloring(&g, &bad));
    }
}
