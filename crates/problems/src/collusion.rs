//! Collusion detection in voting pools — the paper's application \[4\].
//!
//! Voters submit ballots over a set of items; pairs whose ballots agree
//! suspiciously often are joined by an edge in the *agreement graph*.
//! A maximum independent set of that graph is a largest set of voters
//! with no suspicious pairwise agreement — the pool of plausibly honest,
//! mutually independent participants. New ballots arriving over time
//! add edges, making this a dynamic MaxIS workload.

use dynamis_graph::{CsrGraph, DynamicGraph};

/// One voter's ballot: a verdict per item (e.g. approve/reject codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ballot {
    /// Verdicts, one per item; all ballots must have equal length.
    pub verdicts: Vec<u8>,
}

impl Ballot {
    /// Creates a ballot.
    pub fn new(verdicts: Vec<u8>) -> Self {
        Ballot { verdicts }
    }

    /// Fraction of items on which two ballots agree, in `[0, 1]`.
    /// Panics if lengths differ or ballots are empty.
    pub fn agreement(&self, other: &Ballot) -> f64 {
        assert_eq!(
            self.verdicts.len(),
            other.verdicts.len(),
            "ballots must cover the same items"
        );
        assert!(!self.verdicts.is_empty(), "empty ballots have no agreement");
        let same = self
            .verdicts
            .iter()
            .zip(&other.verdicts)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.verdicts.len() as f64
    }
}

/// Builds the agreement graph: voters `i`, `j` are joined when their
/// ballots agree on at least `threshold` (fraction) of the items.
/// Pairwise comparison, O(n² · items).
pub fn agreement_graph(ballots: &[Ballot], threshold: f64) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be a fraction"
    );
    let n = ballots.len();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if ballots[i].agreement(&ballots[j]) >= threshold {
                edges.push((i as u32, j as u32));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Dynamic form of [`agreement_graph`], for engine-driven monitoring.
pub fn agreement_dynamic(ballots: &[Ballot], threshold: f64) -> DynamicGraph {
    let csr = agreement_graph(ballots, threshold);
    let mut edges = Vec::with_capacity(csr.num_edges());
    for u in 0..csr.num_vertices() as u32 {
        for &v in csr.neighbors(u) {
            if v > u {
                edges.push((u, v));
            }
        }
    }
    DynamicGraph::from_edges(ballots.len(), &edges)
}

/// Upper bound on the honest pool: an independent set of size `s` in the
/// agreement graph certifies that at most `n − s` voters *must* be
/// involved in any collusion explanation. Returns `n − s`.
pub fn honest_majority_bound(num_voters: usize, independent_set_size: usize) -> usize {
    num_voters.saturating_sub(independent_set_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_static::verify::is_independent;
    use dynamis_static::{solve_exact, ExactConfig};

    fn ballot(bits: &[u8]) -> Ballot {
        Ballot::new(bits.to_vec())
    }

    #[test]
    fn agreement_fraction() {
        let a = ballot(&[1, 0, 1, 1]);
        let b = ballot(&[1, 1, 1, 0]);
        assert!((a.agreement(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.agreement(&a), 1.0);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_ballots_panic() {
        ballot(&[1]).agreement(&ballot(&[1, 0]));
    }

    #[test]
    fn colluders_form_a_clique() {
        // Three identical ballots (the colluders) + two independents.
        let ballots = vec![
            ballot(&[1, 1, 1, 1, 0, 0]),
            ballot(&[1, 1, 1, 1, 0, 0]),
            ballot(&[1, 1, 1, 1, 0, 0]),
            ballot(&[0, 1, 0, 1, 1, 0]),
            ballot(&[1, 0, 0, 0, 1, 1]),
        ];
        let g = agreement_graph(&ballots, 0.9);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2));
        // The independents agree with nobody at the 0.9 bar.
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree(4), 0);
        // MaxIS keeps one colluder plus both independents.
        let mis = solve_exact(&g, ExactConfig::default()).unwrap();
        assert_eq!(mis.alpha, 3);
        assert!(is_independent(&g, &mis.solution));
        assert_eq!(honest_majority_bound(5, mis.alpha), 2);
    }

    #[test]
    fn threshold_monotonicity() {
        let ballots: Vec<Ballot> = (0..6u8)
            .map(|i| ballot(&[i & 1, (i >> 1) & 1, (i >> 2) & 1, 1, 1]))
            .collect();
        let strict = agreement_graph(&ballots, 0.9);
        let loose = agreement_graph(&ballots, 0.5);
        assert!(strict.num_edges() <= loose.num_edges());
        // Every strict edge survives loosening.
        for u in 0..6u32 {
            for &v in strict.neighbors(u) {
                assert!(loose.has_edge(u, v));
            }
        }
    }

    #[test]
    fn threshold_zero_is_complete_graph() {
        let ballots = vec![ballot(&[0, 1]), ballot(&[1, 0]), ballot(&[1, 1])];
        let g = agreement_graph(&ballots, 0.0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_threshold_panics() {
        agreement_graph(&[ballot(&[1])], 1.5);
    }

    #[test]
    fn dynamic_form_agrees() {
        let ballots = vec![ballot(&[1, 1, 0]), ballot(&[1, 1, 0]), ballot(&[0, 0, 1])];
        let csr = agreement_graph(&ballots, 0.66);
        let dy = agreement_dynamic(&ballots, 0.66);
        assert_eq!(csr.num_edges(), dy.num_edges());
    }

    #[test]
    fn bound_saturates() {
        assert_eq!(honest_majority_bound(3, 5), 0);
        assert_eq!(honest_majority_bound(10, 4), 6);
    }
}
