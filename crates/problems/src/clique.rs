//! Maximum clique via MaxIS on the complement graph.
//!
//! A clique of `G` is an independent set of the complement `Ḡ`, so the
//! workspace's exact branch-and-reduce solver doubles as an exact clique
//! solver on graphs small enough to complement explicitly (the
//! complement has `n(n−1)/2 − m` edges, so this route is for
//! n ≲ a few thousand). At scale, [`greedy_clique`] grows a clique
//! through highest-degree candidate intersection.

use dynamis_graph::CsrGraph;
use dynamis_static::{solve_exact, ExactConfig};

/// Builds the complement graph `Ḡ`. Quadratic in `n` by necessity;
/// panics if `n` exceeds `limit` to protect callers from accidental
/// O(n²) blow-ups (pass `usize::MAX` to opt out).
pub fn complement_graph(g: &CsrGraph, limit: usize) -> CsrGraph {
    let n = g.num_vertices();
    assert!(
        n <= limit,
        "complement of an {n}-vertex graph exceeds the requested limit {limit}"
    );
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2 - g.num_edges());
    for u in 0..n as u32 {
        // Merge-walk the sorted neighbor list against 0..n.
        let mut next = u + 1;
        for &v in g.neighbors(u).iter().filter(|&&v| v > u) {
            while next < v {
                edges.push((u, next));
                next += 1;
            }
            next = v + 1;
        }
        while (next as usize) < n {
            edges.push((u, next));
            next += 1;
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Exact maximum clique through the complement reduction. Returns `None`
/// when the exact solver exhausts its node budget.
pub fn max_clique_exact(g: &CsrGraph, cfg: ExactConfig) -> Option<Vec<u32>> {
    let co = complement_graph(g, 20_000);
    solve_exact(&co, cfg).map(|r| r.solution)
}

/// Greedy clique: repeatedly add the candidate with the most neighbors
/// still in the candidate set, starting from a highest-degree seed.
/// No approximation guarantee (none is possible in polynomial time),
/// but a standard strong baseline.
pub fn greedy_clique(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let seed = (0..n as u32).max_by_key(|&v| g.degree(v)).expect("n > 0");
    let mut clique = vec![seed];
    let mut candidates: Vec<u32> = g.neighbors(seed).to_vec();
    while !candidates.is_empty() {
        // Pick the candidate with the largest intersection of its
        // neighborhood with the remaining candidates.
        let (best_idx, _) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| {
                g.neighbors(c)
                    .iter()
                    .filter(|&&w| candidates.binary_search(&w).is_ok())
                    .count()
            })
            .expect("candidates is non-empty");
        let chosen = candidates[best_idx];
        clique.push(chosen);
        // Shrink candidates to the chosen vertex's neighborhood.
        let mut next = Vec::with_capacity(candidates.len());
        for &w in g.neighbors(chosen) {
            if candidates.binary_search(&w).is_ok() {
                next.push(w);
            }
        }
        candidates = next;
    }
    clique.sort_unstable();
    clique
}

/// Whether `set` induces a clique in `g`.
pub fn is_clique(g: &CsrGraph, set: &[u32]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn complement_of_complete_is_empty_and_back() {
        let g = complete(6);
        let co = complement_graph(&g, 100);
        assert_eq!(co.num_edges(), 0);
        let coco = complement_graph(&co, 100);
        assert_eq!(coco.num_edges(), g.num_edges());
    }

    #[test]
    fn complement_edge_count_identity() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (2, 5), (3, 6), (1, 4)]);
        let co = complement_graph(&g, 100);
        assert_eq!(co.num_edges() + g.num_edges(), 7 * 6 / 2);
        for u in 0..7u32 {
            for v in u + 1..7 {
                assert_ne!(g.has_edge(u, v), co.has_edge(u, v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "limit")]
    fn complement_respects_limit() {
        complement_graph(&complete(10), 5);
    }

    #[test]
    fn exact_clique_of_known_graphs() {
        // K₅ plus a pendant: ω = 5.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        edges.push((4, 5));
        let g = CsrGraph::from_edges(6, &edges);
        let clique = max_clique_exact(&g, ExactConfig::default()).unwrap();
        assert_eq!(clique.len(), 5);
        assert!(is_clique(&g, &clique));
        // Triangle-free graph: ω = 2.
        let c5 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(
            max_clique_exact(&c5, ExactConfig::default()).unwrap().len(),
            2
        );
    }

    #[test]
    fn greedy_clique_is_a_clique_and_maximal() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (0, 3), // K₄ on {0,1,2,3}
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        );
        let c = greedy_clique(&g);
        assert!(is_clique(&g, &c));
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn greedy_on_trivial_graphs() {
        assert!(greedy_clique(&CsrGraph::from_edges(0, &[])).is_empty());
        assert_eq!(greedy_clique(&CsrGraph::from_edges(3, &[])).len(), 1);
        assert_eq!(greedy_clique(&complete(4)).len(), 4);
    }

    #[test]
    fn is_clique_detects_missing_edge() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]);
        assert!(is_clique(&g, &[0, 1, 2]));
        assert!(!is_clique(&g, &[0, 1, 3]));
        assert!(is_clique(&g, &[2]));
        assert!(is_clique(&g, &[]));
    }
}
