//! Minimum vertex cover via independent-set complementation.
//!
//! `C` is a vertex cover iff `V \ C` is an independent set, so any
//! maintained independent set yields a maintained cover `V \ I`, and a
//! *larger* independent set means a *smaller* cover. The MaxIS
//! approximation ratio does **not** transfer to the cover (the two
//! objectives invert), so the classical matching-based 2-approximation is
//! provided as the yardstick the dynamic cover is measured against.

use dynamis_core::DynamicMis;
use dynamis_graph::{CsrGraph, DynamicGraph, Update};

/// Whether `cover` covers every edge of `g`.
pub fn is_vertex_cover(g: &DynamicGraph, cover: &[u32]) -> bool {
    let mut in_cover = vec![false; g.capacity()];
    for &v in cover {
        if (v as usize) < in_cover.len() {
            in_cover[v as usize] = true;
        }
    }
    g.edges()
        .all(|(u, v)| in_cover[u as usize] || in_cover[v as usize])
}

/// Exact maximum independent set on a **bipartite** graph in polynomial
/// time: König's theorem gives an exact minimum vertex cover from a
/// Hopcroft–Karp maximum matching, and the complement is a maximum
/// independent set. Returns `None` when `g` is not bipartite.
pub fn bipartite_max_independent_set(g: &CsrGraph) -> Option<Vec<u32>> {
    let cover = dynamis_graph::algo::koenig_vertex_cover(g)?;
    let mut in_cover = vec![false; g.num_vertices()];
    for &v in &cover {
        in_cover[v as usize] = true;
    }
    Some(
        (0..g.num_vertices() as u32)
            .filter(|&v| !in_cover[v as usize])
            .collect(),
    )
}

/// The classical static 2-approximation: greedily pick a maximal matching
/// and take both endpoints of every matched edge. `|C| ≤ 2 · OPT` because
/// any cover contains at least one endpoint of each matching edge.
pub fn matching_vertex_cover(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut matched = vec![false; n];
    let mut cover = Vec::new();
    for u in 0..n as u32 {
        if matched[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            if !matched[v as usize] {
                matched[u as usize] = true;
                matched[v as usize] = true;
                cover.push(u);
                cover.push(v);
                break;
            }
        }
    }
    cover
}

/// A dynamically maintained vertex cover: the complement of the
/// independent set maintained by any [`DynamicMis`] engine.
///
/// # Example
/// ```
/// use dynamis_core::{DyOneSwap, EngineBuilder};
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_problems::DynamicVertexCover;
///
/// let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let engine: DyOneSwap = EngineBuilder::on(g).build_as().unwrap();
/// let mut vc = DynamicVertexCover::new(engine);
/// assert!(vc.size() <= 2);
/// vc.try_apply(&Update::InsertEdge(0, 3)).unwrap();
/// assert!(vc.verify());
/// ```
#[derive(Debug)]
pub struct DynamicVertexCover<E: DynamicMis> {
    engine: E,
}

impl<E: DynamicMis> DynamicVertexCover<E> {
    /// Wraps a MaxIS engine; the cover is the complement of its solution.
    pub fn new(engine: E) -> Self {
        DynamicVertexCover { engine }
    }

    /// Applies one graph update, returning the independent-set delta
    /// (which is the *cover's* delta with entered/left swapped). Invalid
    /// updates are rejected with everything unchanged.
    pub fn try_apply(
        &mut self,
        u: &Update,
    ) -> Result<dynamis_core::SolutionDelta, dynamis_core::EngineError> {
        self.engine.try_apply(u)
    }

    /// Cover size `|V| − |I|`.
    pub fn size(&self) -> usize {
        self.engine.graph().num_vertices() - self.engine.size()
    }

    /// Materializes the cover (sorted live vertices outside the
    /// independent set).
    pub fn cover(&self) -> Vec<u32> {
        self.engine
            .graph()
            .vertices()
            .filter(|&v| !self.engine.contains(v))
            .collect()
    }

    /// O(1) membership test.
    pub fn contains(&self, v: u32) -> bool {
        self.engine.graph().is_alive(v) && !self.engine.contains(v)
    }

    /// Re-checks the covering property edge by edge (test/debug; O(n + m)).
    pub fn verify(&self) -> bool {
        is_vertex_cover(self.engine.graph(), &self.cover())
    }

    /// The wrapped engine, for inspecting the underlying independent set.
    pub fn engine(&self) -> &E {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_core::{DyOneSwap, DyTwoSwap, EngineBuilder};
    use dynamis_static::verify::compact_live;

    #[test]
    fn complement_of_mis_covers_path() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let vc = DynamicVertexCover::new(EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap());
        assert!(vc.verify());
        // α(P₅) = 3 ⇒ optimal cover is 2; a 1-maximal IS has ≥ 2 vertices,
        // so the cover has ≤ 3.
        assert!(vc.size() <= 3);
    }

    #[test]
    fn cover_tracks_updates() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let mut vc = DynamicVertexCover::new(EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap());
        assert_eq!(vc.size(), 3, "perfect matching needs one endpoint each");
        for upd in [
            Update::InsertEdge(1, 2),
            Update::InsertEdge(3, 4),
            Update::InsertEdge(5, 0),
            Update::RemoveEdge(2, 3),
        ] {
            vc.try_apply(&upd).unwrap();
            assert!(vc.verify(), "cover broken after {upd:?}");
        }
    }

    #[test]
    fn membership_is_complementary() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let vc = DynamicVertexCover::new(EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap());
        for v in 0..4 {
            assert_ne!(vc.contains(v), vc.engine().contains(v));
        }
    }

    #[test]
    fn matching_cover_is_valid_and_within_twice_optimal() {
        // C₆: optimal cover 3; matching bound allows ≤ 6.
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let g = DynamicGraph::from_edges(6, &edges);
        let (csr, _) = compact_live(&g);
        let cover = matching_vertex_cover(&csr);
        assert!(is_vertex_cover(&g, &cover));
        assert!(cover.len() <= 6);
        assert!(cover.len() >= 3);
    }

    #[test]
    fn matching_cover_on_star_takes_two_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let cover = matching_vertex_cover(&g);
        // One matching edge (0, x) → both endpoints.
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&0));
    }

    #[test]
    fn empty_and_edgeless() {
        let g = DynamicGraph::from_edges(3, &[]);
        let vc = DynamicVertexCover::new(EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap());
        assert_eq!(vc.size(), 0);
        assert!(vc.cover().is_empty());
        assert!(vc.verify());
        assert!(is_vertex_cover(&DynamicGraph::new(), &[]));
    }

    #[test]
    fn bipartite_mis_matches_exact_solver() {
        use dynamis_static::{solve_exact, ExactConfig};
        // Random bipartite instances: König's route must equal α exactly.
        let mut state = 0x7f4a7c15_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..10 {
            let a = 4 + (rng() % 5) as u32;
            let b = 4 + (rng() % 5) as u32;
            let mut edges = Vec::new();
            for u in 0..a {
                for v in 0..b {
                    if rng() % 3 == 0 {
                        edges.push((u, a + v));
                    }
                }
            }
            let g = CsrGraph::from_edges((a + b) as usize, &edges);
            let koenig = bipartite_max_independent_set(&g).unwrap();
            let exact = solve_exact(&g, ExactConfig::default()).unwrap();
            assert_eq!(koenig.len(), exact.alpha, "round {round}");
            // And it is independent.
            for (i, &u) in koenig.iter().enumerate() {
                for &v in &koenig[i + 1..] {
                    assert!(!g.has_edge(u, v), "round {round}");
                }
            }
        }
    }

    #[test]
    fn bipartite_mis_rejects_odd_cycles() {
        let c5: Vec<(u32, u32)> = (0..5u32).map(|i| (i, (i + 1) % 5)).collect();
        let g = CsrGraph::from_edges(5, &c5);
        assert!(bipartite_max_independent_set(&g).is_none());
    }

    #[test]
    fn is_vertex_cover_rejects_uncovered_edge() {
        let g = DynamicGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_vertex_cover(&g, &[0]));
        assert!(is_vertex_cover(&g, &[1]));
        assert!(!is_vertex_cover(&g, &[42]), "out-of-range ids ignored");
    }
}
