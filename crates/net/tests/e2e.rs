//! End-to-end loopback smoke: a real server, a real load-generator run
//! (concurrent subscribers + writers over TCP), zero lost deltas, and a
//! clean shutdown. This is the same path CI drives at larger scale via
//! the `net` bench binary.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_net::{LoadConfig, NetBackend, NetConfig, NetServer};
use dynamis_serve::{MisService, ServeConfig};

#[test]
fn loopback_load_run_loses_nothing_and_shuts_down_cleanly() {
    let g = chung_lu(2_000, 2.4, 6.0, 13);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig::default(),
    )
    .unwrap();

    let cfg = LoadConfig {
        addr: handle.local_addr().to_string(),
        subscribers: 50,
        writers: 2,
        updates: 1_000,
        vertices: 2_000,
        batch: 8,
        seed: 99,
        ..LoadConfig::default()
    };
    let report = dynamis_net::load::run(&cfg).unwrap();

    assert_eq!(report.gaps, 0, "no subscriber may observe a sequence gap");
    assert_eq!(
        report.lost_deltas, 0,
        "every subscriber reaches the final head"
    );
    assert_eq!(report.mirror_errors, 0);
    assert!(
        report.verified_mirrors > 0,
        "replicas must equal the snapshot"
    );
    assert!(report.applied > 0);
    assert_eq!(report.subscribers, 50);

    // Clean shutdown with everything still connected server-side.
    handle.shutdown();
    let final_report = service.shutdown();
    assert_eq!(final_report.stats.queue_depth, 0);
    assert_eq!(final_report.head_seq, report.final_head);
}
