//! Fuzz-style property tests for the framing layer: payloads survive
//! arbitrary chunking, and no corruption of the byte stream can make
//! the reassembly buffer panic or stage an oversized allocation.

use dynamis_net::error::NetError;
use dynamis_net::frame::{FrameBuffer, MAX_FRAME};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn encode_frames(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
        stream.extend_from_slice(p);
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of frames, delivered in arbitrary chunk sizes,
    /// reassembles to exactly the original payloads in order.
    #[test]
    fn reassembly_is_chunking_invariant(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..8usize))
            .map(|_| {
                (0..rng.gen_range(0..300usize))
                    .map(|_| rng.gen_range(0..256u32) as u8)
                    .collect()
            })
            .collect();
        let stream = encode_frames(&payloads);
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let take = rng.gen_range(1..17usize).min(stream.len() - pos);
            fb.extend(&stream[pos..pos + take]);
            pos += take;
            while let Some(frame) = fb.next_frame().map_err(|e| TestCaseError::fail(e.to_string()))? {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(fb.pending(), 0, "no bytes may linger after the last frame");
    }

    /// Corrupting the stream never panics: every outcome is either a
    /// (wrong) frame or a typed `TooLong` error, and an error is sticky
    /// grounds for closing — exactly what the server session does.
    #[test]
    fn corruption_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1..4usize))
            .map(|_| (0..rng.gen_range(0..64usize)).map(|_| rng.gen_range(0..256u32) as u8).collect())
            .collect();
        let mut stream = encode_frames(&payloads);
        for _ in 0..rng.gen_range(1..6usize) {
            let i = rng.gen_range(0..stream.len());
            stream[i] = rng.gen_range(0..256u32) as u8;
        }
        let mut fb = FrameBuffer::new();
        fb.extend(&stream);
        loop {
            match fb.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(NetError::Wire(_)) => break, // typed rejection: close the connection
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error kind: {e}"))),
            }
        }
    }
}

/// A length prefix just above the cap is refused before any allocation;
/// one at the cap is accepted (once its payload arrives).
#[test]
fn frame_cap_is_exact() {
    let mut fb = FrameBuffer::new();
    fb.extend(&((MAX_FRAME as u32) + 1).to_le_bytes());
    assert!(fb.next_frame().is_err());

    let mut fb = FrameBuffer::new();
    fb.extend(&(8u32).to_le_bytes());
    assert!(fb.next_frame().unwrap().is_none(), "payload not yet here");
    fb.extend(&[1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(
        fb.next_frame().unwrap().unwrap(),
        vec![1, 2, 3, 4, 5, 6, 7, 8]
    );
}
