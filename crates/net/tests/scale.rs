//! Scale-out stream tests: filtered subscriptions staying inside their
//! vertex partition across reconnects and checkpoint reseeds, the
//! snapshot cold-start handing off gap-free to a live subscription,
//! and the straggler force-reseed that replaces an unbounded crawl.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_net::{
    NetBackend, NetClient, NetConfig, NetError, NetServer, RemoteMirror, SubEvent, SubFilter,
    Subscription,
};
use dynamis_serve::{MisService, ServeConfig};
use std::time::{Duration, Instant};

/// Applies events until the mirror reaches `target`, counting
/// checkpoints and asserting every delivered vertex is in `filter`.
/// The filtered [`RemoteMirror`] re-checks both properties internally;
/// the explicit walk here keeps the assertion visible in the test.
fn drain_filtered(
    sub: &mut Subscription,
    mirror: &mut RemoteMirror,
    filter: SubFilter,
    target: u64,
) -> u32 {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut checkpoints = 0;
    while mirror.seq() < target {
        assert!(
            Instant::now() < deadline,
            "drain timed out at seq {}",
            mirror.seq()
        );
        match sub.next_event() {
            Ok(Some(ev)) => {
                match &ev {
                    SubEvent::Delta { delta, .. } => {
                        for v in delta.entered.iter().chain(delta.left.iter()) {
                            assert!(filter.accepts(*v), "out-of-filter vertex {v} delivered");
                        }
                    }
                    SubEvent::Checkpoint { solution, .. } => {
                        checkpoints += 1;
                        for v in solution {
                            assert!(filter.accepts(*v), "out-of-filter vertex {v} in checkpoint");
                        }
                    }
                }
                mirror.apply_event(&ev).unwrap();
            }
            Ok(None) => {}
            Err(e) => panic!("subscription failed at seq {}: {e}", mirror.seq()),
        }
    }
    checkpoints
}

/// Blocks until the ingest queue is drained, returning the final head.
fn drained_head(client: &mut NetClient) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = client.stats().unwrap();
        if s.queue_depth == 0 {
            return s.head_seq;
        }
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn masked(solution: &[u32], filter: SubFilter) -> Vec<u32> {
    let mut v: Vec<u32> = solution
        .iter()
        .copied()
        .filter(|&x| filter.accepts(x))
        .collect();
    v.sort_unstable();
    v
}

/// A filtered subscriber never sees a vertex outside its partition —
/// not in deltas, not in the initial stale-resume checkpoint, not in
/// the reseed after a forced reconnect — and its mirror converges to
/// the server snapshot restricted to the filter.
#[test]
fn filtered_subscriber_stays_in_partition_across_reconnect_and_reseed() {
    let filter = SubFilter::VertexRange { lo: 0, hi: 250 };
    let g = chung_lu(500, 2.4, 6.0, 7);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 23).take_updates(400);
    let (service, _reader) = MisService::spawn(
        EngineBuilder::on(g).k(2),
        ServeConfig {
            log_window: 8, // tiny window: resume points age out fast
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig {
            hubs: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    let mut writer = NetClient::connect(&addr).unwrap();
    let (first, second) = ups.split_at(ups.len() / 2);
    for u in first {
        match writer.apply(u.clone()) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let mid_head = drained_head(&mut writer);
    assert!(mid_head > 8, "history must outgrow the log window");

    // Subscribing from 0 against an aged-out window opens with a
    // checkpoint — which must already be masked to the filter.
    let sub = NetClient::connect(&addr)
        .unwrap()
        .subscribe_filtered(0, filter)
        .unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let mut mirror = RemoteMirror::filtered(filter);
    let ckpts = drain_filtered(&mut sub, &mut mirror, filter, mid_head);
    assert!(
        ckpts >= 1,
        "stale filtered resume must reseed via checkpoint"
    );

    // Forced mid-stream disconnect; the stream keeps moving while the
    // subscriber is gone, far enough that the resume point ages out
    // again and the reconnect reseeds from a second masked checkpoint.
    drop(sub);
    for u in second {
        match writer.apply(u.clone()) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);

    let resumed = NetClient::connect(&addr)
        .unwrap()
        .subscribe_filtered(mirror.seq(), filter)
        .unwrap();
    resumed
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut resumed = resumed;
    drain_filtered(&mut resumed, &mut mirror, filter, head);

    // The filtered replica equals the snapshot restricted to the filter.
    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!(snap_seq, head);
    assert_eq!(masked(&mirror.solution(), filter), masked(&snap, filter));

    handle.shutdown();
    service.shutdown();
}

/// Snapshot cold-start: `bootstrap` seeds a mirror at the log's base
/// checkpoint, and a subscription resumed from that sequence number
/// streams pure deltas — no gap, no further checkpoint — until the
/// mirror equals the server snapshot.
#[test]
fn bootstrap_then_subscribe_hands_off_gap_free() {
    let g = chung_lu(500, 2.4, 6.0, 9);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 31).take_updates(400);
    let (service, _reader) = MisService::spawn(
        EngineBuilder::on(g).k(2),
        ServeConfig {
            log_window: 8, // force the base checkpoint well past seq 0
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig::default(),
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    let mut writer = NetClient::connect(&addr).unwrap();
    for u in ups {
        match writer.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);

    // Cold start: one bootstrap stream instead of replaying from 0.
    let mut cold = NetClient::connect(&addr).unwrap();
    let (base_seq, members) = cold.bootstrap().unwrap();
    assert!(base_seq > 0, "an aged log must serve a non-zero base");
    assert!(base_seq <= head);

    let mut mirror = RemoteMirror::new();
    mirror
        .apply_event(&SubEvent::Checkpoint {
            seq: base_seq,
            solution: members,
        })
        .unwrap();

    // Same connection subscribes from the bootstrap point: the handoff
    // must be pure in-order deltas (the strict mirror refuses gaps).
    let sub = cold.subscribe(base_seq).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let deadline = Instant::now() + Duration::from_secs(30);
    while mirror.seq() < head {
        assert!(Instant::now() < deadline, "catch-up timed out");
        match sub.next_event() {
            Ok(Some(ev)) => {
                assert!(
                    !matches!(ev, SubEvent::Checkpoint { .. }),
                    "bootstrap handoff must not need a second checkpoint"
                );
                mirror.apply_event(&ev).unwrap();
            }
            Ok(None) => {}
            Err(e) => panic!("subscription failed: {e}"),
        }
    }

    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!((mirror.seq(), mirror.solution()), (snap_seq, snap));

    handle.shutdown();
    service.shutdown();
}

/// A subscriber that stays saturated for `straggler_rounds` consecutive
/// hub rounds is force-reseeded with a checkpoint instead of crawling
/// the backlog entry by entry.
#[test]
fn straggler_is_force_reseeded_instead_of_crawling() {
    let g = chung_lu(500, 2.4, 6.0, 11);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 37).take_updates(300);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig {
            sub_batch: 1,        // one entry per round: a guaranteed crawl
            straggler_rounds: 2, // ...cut short after two saturated rounds
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    // Build deep history first; the default log window retains all of
    // it, so a plain tail from 0 would crawl ~head rounds.
    let mut writer = NetClient::connect(&addr).unwrap();
    for u in ups {
        match writer.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);
    assert!(head > 50, "needs a real backlog");

    let sub = NetClient::connect(&addr).unwrap().subscribe(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let mut mirror = RemoteMirror::new();
    let mut checkpoints = 0u32;
    let deadline = Instant::now() + Duration::from_secs(30);
    while mirror.seq() < head {
        assert!(Instant::now() < deadline, "catch-up timed out");
        match sub.next_event() {
            Ok(Some(ev)) => {
                if matches!(ev, SubEvent::Checkpoint { .. }) {
                    checkpoints += 1;
                }
                mirror.apply_event(&ev).unwrap();
            }
            Ok(None) => {}
            Err(e) => panic!("subscription failed: {e}"),
        }
    }
    assert!(
        checkpoints >= 1,
        "a saturated straggler must be reseeded, not left to crawl"
    );
    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!((mirror.seq(), mirror.solution()), (snap_seq, snap));

    handle.shutdown();
    service.shutdown();
}
