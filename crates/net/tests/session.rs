//! Session-protocol tests over real loopback sockets: handshake
//! ordering, version refusal, malformed-frame rejection, query parity
//! with the in-process reader, the session cap's typed `Busy` refusal,
//! and net counters served over the wire.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, Update};
use dynamis_net::frame::{read_frame, write_frame};
use dynamis_net::proto::{
    decode_response, encode_request, Request, Response, ERR_MALFORMED, ERR_ORDER, ERR_VERSION,
};
use dynamis_net::{NetBackend, NetClient, NetConfig, NetError, NetServer, NetServerHandle};
use dynamis_serve::{MisService, ReaderHandle, ServeConfig, ServiceHandle};
use std::net::TcpStream;

fn serve(
    g: DynamicGraph,
    net_cfg: NetConfig,
) -> (NetServerHandle, ServiceHandle, ReaderHandle, String) {
    let (service, reader) =
        MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
    let handle = NetServer::bind("127.0.0.1:0", NetBackend::single(&service), net_cfg).unwrap();
    let addr = handle.local_addr().to_string();
    (handle, service, reader, addr)
}

#[test]
fn queries_match_the_in_process_reader() {
    let g = chung_lu(500, 2.4, 6.0, 3);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 9).take_updates(400);
    let (handle, service, mut reader, addr) = serve(g, NetConfig::default());

    let mut client = NetClient::connect(&addr).unwrap();
    for u in ups {
        // Rejections are valid verdicts under a random stream; only
        // transport-level failures are test failures.
        match client.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let (seq, remote_solution) = client.snapshot().unwrap();
    reader.sync();
    assert_eq!(seq, reader.seq(), "both caught up to the same head");
    assert_eq!(remote_solution, reader.snapshot());
    assert_eq!(client.len().unwrap() as usize, remote_solution.len());
    for &v in remote_solution.iter().take(20) {
        assert!(client.contains(v).unwrap());
    }
    client.ping().unwrap();

    handle.shutdown();
    service.shutdown();
}

#[test]
fn batch_verdicts_arrive_per_update_in_order() {
    let g = DynamicGraph::from_edges(6, &[(0, 1), (2, 3)]);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());
    let mut client = NetClient::connect(&addr).unwrap();

    let verdicts = client
        .apply_batch(vec![
            Update::InsertEdge(0, 2), // fresh: applied
            Update::InsertEdge(0, 1), // duplicate: rejected
            Update::RemoveEdge(4, 5), // missing: rejected
            Update::InsertEdge(4, 5), // fresh: applied
        ])
        .unwrap();
    assert_eq!(verdicts.len(), 4);
    assert!(verdicts[0].is_ok());
    assert!(verdicts[1].is_err(), "duplicate edge must be rejected");
    assert!(verdicts[2].is_err(), "missing edge must be rejected");
    assert!(verdicts[3].is_ok());

    handle.shutdown();
    service.shutdown();
}

#[test]
fn non_hello_first_message_is_refused() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_request(&Request::Len, &mut payload);
    write_frame(&mut stream, &payload).unwrap();
    let mut reply = Vec::new();
    assert!(read_frame(&mut stream, &mut reply).unwrap());
    match decode_response(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ERR_ORDER),
        other => panic!("expected an ordering error, got {other:?}"),
    }
    // The server closes after the error.
    assert!(!read_frame(&mut stream, &mut reply).unwrap());

    handle.shutdown();
    service.shutdown();
}

#[test]
fn newer_client_version_is_refused() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_request(&Request::Hello { version: u16::MAX }, &mut payload);
    write_frame(&mut stream, &payload).unwrap();
    let mut reply = Vec::new();
    assert!(read_frame(&mut stream, &mut reply).unwrap());
    match decode_response(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ERR_VERSION),
        other => panic!("expected a version error, got {other:?}"),
    }

    handle.shutdown();
    service.shutdown();
}

#[test]
fn malformed_frames_are_refused_with_a_typed_error() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());
    let mut reply = Vec::new();

    // Garbage payload in a well-formed frame.
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &[0xAB, 0xCD, 0xEF]).unwrap();
    assert!(read_frame(&mut stream, &mut reply).unwrap());
    match decode_response(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected a malformed error, got {other:?}"),
    }
    assert!(!read_frame(&mut stream, &mut reply).unwrap(), "then close");

    // Corrupt (oversized) length prefix: same refusal, without ever
    // allocating the claimed four gigabytes.
    let mut stream = TcpStream::connect(&addr).unwrap();
    use std::io::Write as _;
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    assert!(read_frame(&mut stream, &mut reply).unwrap());
    match decode_response(&reply).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ERR_MALFORMED),
        other => panic!("expected a malformed error, got {other:?}"),
    }

    handle.shutdown();
    service.shutdown();
}

#[test]
fn session_cap_refuses_with_busy_and_counts_the_shed() {
    let g = DynamicGraph::from_edges(3, &[(0, 1)]);
    let cfg = NetConfig {
        max_sessions: 1,
        ..NetConfig::default()
    };
    let (handle, service, _reader, addr) = serve(g, cfg);

    let _held = NetClient::connect(&addr).unwrap();
    match NetClient::connect(&addr) {
        Err(NetError::Busy { .. }) => {}
        Err(e) => panic!("expected Busy at the session cap, got {e}"),
        Ok(_) => panic!("expected Busy at the session cap, got a session"),
    }
    let stats = handle.stats();
    assert_eq!(stats.sessions, 1);
    assert!(stats.shed >= 1, "door refusal must count as shed");

    handle.shutdown();
    service.shutdown();
}

#[test]
fn metrics_snapshot_is_served_over_the_wire() {
    // Stage timers are process-global-gated; turn them on so latency
    // histograms populate alongside the always-on counters.
    dynamis_obs::set_enabled(true);
    let g = chung_lu(300, 2.4, 6.0, 11);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 3).take_updates(200);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());

    let mut client = NetClient::connect(&addr).unwrap();
    for u in ups {
        match client.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let m = client.metrics().unwrap();
    assert_eq!(m.version, dynamis_obs::SNAPSHOT_VERSION);
    assert!(
        m.counter("serve_applied_total").unwrap_or(0)
            + m.counter("serve_rejected_total").unwrap_or(0)
            >= 200,
        "every update must land in the serve counters"
    );
    let apply = m
        .histogram("net_req_apply_ns")
        .expect("per-request-type latency series");
    assert!(apply.count >= 200, "one apply latency sample per request");
    assert!(apply.quantile(0.5) > 0);
    assert!(
        m.histogram("serve_engine_apply_ns").map(|h| h.count) >= Some(1),
        "single-writer stage timers must record"
    );
    // The wire snapshot is the same schema the text encoders consume:
    // the JSON encoding parses back to exactly the transported value.
    let parsed = dynamis_obs::MetricsSnapshot::from_json(&m.to_json()).unwrap();
    assert_eq!(parsed, m);
    assert!(m
        .to_prometheus()
        .contains("# TYPE serve_applied_total counter"));

    handle.shutdown();
    service.shutdown();
}

#[test]
fn stats_are_served_over_the_wire_with_net_counters() {
    let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
    let (handle, service, _reader, addr) = serve(g, NetConfig::default());

    let mut a = NetClient::connect(&addr).unwrap();
    let _b = NetClient::connect(&addr).unwrap();
    a.apply(Update::InsertEdge(0, 2)).unwrap();
    let stats = a.stats().unwrap();
    assert!(stats.connections >= 2);
    assert_eq!(stats.sessions, 2);
    assert_eq!(stats.applied, 1);
    assert_eq!(stats.subscriptions, 0);

    handle.shutdown();
    service.shutdown();
}
