//! Subscription-stream tests: the pinned exactly-once, in-order
//! guarantee across a forced mid-stream reconnect; remote-mirror ≡
//! local-reader equivalence; checkpoint fallback when the resume point
//! has aged out of the log window; and the sharded backend streaming
//! from its merged log.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_net::{
    NetBackend, NetClient, NetConfig, NetError, NetServer, RemoteMirror, SubEvent, Subscription,
};
use dynamis_serve::{MisService, ServeConfig};
use dynamis_shard::ShardedService;
use std::time::{Duration, Instant};

/// Applies events until the mirror reaches `target`, recording every
/// delta sequence number seen. Panics on transport errors or timeout —
/// and, through [`RemoteMirror`]'s strict apply, on any duplicated,
/// skipped, or out-of-order delta.
fn drain_to(sub: &mut Subscription, mirror: &mut RemoteMirror, seen: &mut Vec<u64>, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while mirror.seq() < target {
        assert!(
            Instant::now() < deadline,
            "drain timed out at seq {}",
            mirror.seq()
        );
        match sub.next_event() {
            Ok(Some(ev)) => {
                if let SubEvent::Delta { seq, .. } = &ev {
                    seen.push(*seq);
                }
                mirror.apply_event(&ev).unwrap();
            }
            Ok(None) => {}
            Err(e) => panic!("subscription failed at seq {}: {e}", mirror.seq()),
        }
    }
}

/// Blocks until the ingest queue is drained, returning the final head.
fn drained_head(client: &mut NetClient) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = client.stats().unwrap();
        if s.queue_depth == 0 {
            return s.head_seq;
        }
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The pinned guarantee: a caught-up remote subscriber observes every
/// sequenced delta exactly once, in order, across a forced reconnect.
#[test]
fn every_delta_exactly_once_in_order_across_forced_reconnect() {
    let g = chung_lu(800, 2.4, 6.0, 5);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 17).take_updates(600);
    let (service, mut reader) =
        MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig::default(),
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    let mut writer = NetClient::connect(&addr).unwrap();
    let sub = NetClient::connect(&addr).unwrap().subscribe(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let mut mirror = RemoteMirror::new();
    let mut seen = Vec::new();

    let (first, second) = ups.split_at(ups.len() / 2);
    let mut mid_head = 0;
    for u in first {
        if let Ok(seq) = writer.apply(u.clone()) {
            mid_head = seq;
        }
    }
    // Catch the subscriber up, then force a mid-stream disconnect.
    drain_to(&mut sub, &mut mirror, &mut seen, mid_head);
    drop(sub);

    // The stream keeps moving while the subscriber is gone.
    for u in second {
        match writer.apply(u.clone()) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);

    // Reconnect, resuming from the last applied sequence number.
    let resumed = NetClient::connect(&addr)
        .unwrap()
        .subscribe(mirror.seq())
        .unwrap();
    resumed
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut resumed = resumed;
    drain_to(&mut resumed, &mut mirror, &mut seen, head);

    // Exactly once, in order: the recorded sequence numbers are exactly
    // 1..=head with no duplicate, no gap, no reordering. (The strict
    // mirror already refused any violation during the drain.)
    let expected: Vec<u64> = (1..=head).collect();
    assert_eq!(seen, expected, "one delta per sequence number, in order");

    // And the replica equals what in-process consumers see.
    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!(snap_seq, head);
    assert_eq!(mirror.solution(), snap);
    reader.sync();
    assert_eq!(
        mirror.solution(),
        reader.snapshot(),
        "remote mirror ≡ local reader"
    );

    handle.shutdown();
    service.shutdown();
}

/// A subscriber resuming from a sequence number that has aged out of
/// the log window is reseeded with a checkpoint, then streams deltas.
#[test]
fn stale_resume_point_falls_back_to_a_checkpoint() {
    let g = chung_lu(500, 2.4, 6.0, 7);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 23).take_updates(400);
    let (service, _reader) = MisService::spawn(
        EngineBuilder::on(g).k(2),
        ServeConfig {
            log_window: 8, // tiny retained window: history ages out fast
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig::default(),
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    let mut writer = NetClient::connect(&addr).unwrap();
    for u in ups {
        match writer.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);
    assert!(head > 8, "enough history to outgrow the window");

    // Subscribe from 0 — far behind the window. The stream must open
    // with a checkpoint (never a doomed walk through pruned history).
    let sub = NetClient::connect(&addr).unwrap().subscribe(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let mut mirror = RemoteMirror::new();
    let mut checkpoints = 0u32;
    let deadline = Instant::now() + Duration::from_secs(30);
    while mirror.seq() < head {
        assert!(Instant::now() < deadline, "catch-up timed out");
        match sub.next_event() {
            Ok(Some(ev)) => {
                if matches!(ev, SubEvent::Checkpoint { .. }) {
                    checkpoints += 1;
                }
                mirror.apply_event(&ev).unwrap();
            }
            Ok(None) => {}
            Err(e) => panic!("subscription failed: {e}"),
        }
    }
    assert!(checkpoints >= 1, "stale resume must reseed via checkpoint");
    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!((mirror.seq(), mirror.solution()), (snap_seq, snap));

    handle.shutdown();
    service.shutdown();
}

/// The sharded backend streams from its one merged log: a remote mirror
/// converges to the sharded service's own snapshot.
#[test]
fn sharded_backend_streams_from_the_merged_log() {
    let g = chung_lu(600, 2.4, 6.0, 11);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 29).take_updates(300);
    let (service, _reader) =
        ShardedService::spawn(EngineBuilder::on(g).k(2).shards(2), ServeConfig::default()).unwrap();
    let backend = NetBackend {
        ingest: service.ingest(),
        log: service.log(),
        reader: service.merged_reader(),
    };
    let handle = NetServer::bind("127.0.0.1:0", backend, NetConfig::default()).unwrap();
    let addr = handle.local_addr().to_string();

    let sub = NetClient::connect(&addr).unwrap().subscribe(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut sub = sub;
    let mut writer = NetClient::connect(&addr).unwrap();
    for u in ups {
        match writer.apply(u) {
            Ok(_) | Err(NetError::Rejected(_)) => {}
            Err(e) => panic!("transport failure: {e}"),
        }
    }
    let head = drained_head(&mut writer);
    let mut mirror = RemoteMirror::new();
    let mut seen = Vec::new();
    drain_to(&mut sub, &mut mirror, &mut seen, head);

    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!(snap_seq, head);
    assert_eq!(mirror.solution(), snap);

    handle.shutdown();
    service.shutdown();
}
