//! Pin: a subscriber dropped for missing its write timeout must take
//! its `net_sub_lag_<id>` gauge with it, on every drop path. The obs
//! registry is process-global, so this test runs alone in its own
//! integration-test binary — another test registering subscriber
//! gauges concurrently would make the final sweep ambiguous.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_graph::Update;
use dynamis_net::{NetBackend, NetClient, NetConfig, NetError, NetServer};
use dynamis_serve::{MisService, ServeConfig};
use std::time::{Duration, Instant};

#[test]
fn write_timeout_drop_unregisters_the_subscriber_lag_gauge() {
    let g = chung_lu(2_000, 2.4, 6.0, 41);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig {
            // Aggressive straggler reseeds keep full-checkpoint frames
            // flowing at the stuck sockets, filling their kernel
            // buffers fast; then the short write timeout drops them.
            write_timeout: Duration::from_millis(50),
            sub_batch: 1,
            straggler_rounds: 2,
            hubs: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();

    // Three subscribers that never read a byte, spread across hubs.
    let stuck: Vec<_> = (0..3)
        .map(|_| NetClient::connect(&addr).unwrap().subscribe(0).unwrap())
        .collect();

    // A self-sustaining pump: toggle 128 disjoint edges on and off so
    // the log head never stops moving (and the straggler reseeds never
    // stop) until every stuck subscriber has been timed out.
    let mut writer = NetClient::connect(&addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut insert = true;
    loop {
        let subs = writer.stats().unwrap().subscriptions;
        if subs == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{subs} stuck subscribers were never dropped"
        );
        let batch: Vec<Update> = (0..128u32)
            .map(|i| {
                if insert {
                    Update::InsertEdge(2 * i, 2 * i + 1)
                } else {
                    Update::RemoveEdge(2 * i, 2 * i + 1)
                }
            })
            .collect();
        insert = !insert;
        match writer.apply_batch(batch) {
            Ok(_) => {}
            Err(NetError::Busy { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("pump failed: {e}"),
        }
    }
    drop(stuck);

    // Every per-subscriber gauge must be gone; only the aggregate
    // `net_sub_lag_max` / `net_sub_lag_mean` gauges may remain.
    let snap = dynamis_obs::global().snapshot();
    let leaked: Vec<_> = snap
        .gauges
        .iter()
        .filter(|(name, _)| {
            name.strip_prefix("net_sub_lag_")
                .is_some_and(|suffix| suffix.parse::<u64>().is_ok())
        })
        .collect();
    assert!(
        leaked.is_empty(),
        "dropped subscribers leaked lag gauges: {leaked:?}"
    );

    handle.shutdown();
    service.shutdown();
}
