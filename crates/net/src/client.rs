//! The blocking client: one request/response call per method, plus the
//! subscription consumer and the [`RemoteMirror`] replica it feeds.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, FrameBuffer};
use crate::proto::{
    decode_response, encode_request, response_to_result, Request, Response, PROTO_VERSION,
};
use dynamis_core::{EngineError, SolutionDelta, SolutionMirror};
use dynamis_graph::Update;
use dynamis_obs::MetricsSnapshot;
use dynamis_serve::ServiceStats;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, handshaken session. One outstanding request at a time
/// (the protocol is strictly request/response until a `Subscribe`).
pub struct NetClient {
    stream: TcpStream,
    payload: Vec<u8>,
    reply: Vec<u8>,
    head_at_hello: u64,
}

impl NetClient {
    /// Connects and performs the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = NetClient {
            stream,
            payload: Vec::new(),
            reply: Vec::new(),
            head_at_hello: 0,
        };
        match c.call(&Request::Hello {
            version: PROTO_VERSION,
        })? {
            Response::Hello { version, head_seq } => {
                if PROTO_VERSION > version {
                    return Err(NetError::Handshake {
                        server: version,
                        client: PROTO_VERSION,
                    });
                }
                c.head_at_hello = head_seq;
                Ok(c)
            }
            _ => Err(NetError::Protocol("handshake answered with a non-Hello")),
        }
    }

    /// Broadcast-log head the server reported at handshake time.
    pub fn head_at_hello(&self) -> u64 {
        self.head_at_hello
    }

    /// One request/response round trip. Shed (`Busy`) and server-error
    /// replies surface as typed [`NetError`]s.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        encode_request(req, &mut self.payload);
        write_frame(&mut self.stream, &self.payload)?;
        if !read_frame(&mut self.stream, &mut self.reply)? {
            return Err(NetError::ServerClosed);
        }
        response_to_result(decode_response(&self.reply)?)
    }

    /// Applies one update; returns its broadcast sequence number.
    /// Engine rejections are [`NetError::Rejected`], admission sheds
    /// [`NetError::Busy`].
    pub fn apply(&mut self, update: Update) -> Result<u64, NetError> {
        match self.call(&Request::Apply(update))? {
            Response::Verdict(Ok(seq)) => Ok(seq),
            Response::Verdict(Err(e)) => Err(NetError::Rejected(e)),
            _ => Err(NetError::Protocol("apply answered with a non-verdict")),
        }
    }

    /// Applies a batch; returns one ticketed verdict per update, in
    /// submission order (a rejection does not fail the whole batch).
    pub fn apply_batch(
        &mut self,
        updates: Vec<Update>,
    ) -> Result<Vec<Result<u64, EngineError>>, NetError> {
        match self.call(&Request::ApplyBatch(updates))? {
            Response::Verdicts(vs) => Ok(vs),
            _ => Err(NetError::Protocol("batch answered with a non-verdict")),
        }
    }

    /// O(1) membership query.
    pub fn contains(&mut self, v: u32) -> Result<bool, NetError> {
        match self.call(&Request::Contains(v))? {
            Response::Bool(b) => Ok(b),
            _ => Err(NetError::Protocol("contains answered with a non-bool")),
        }
    }

    /// Current solution size.
    pub fn len(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Len)? {
            Response::Len(n) => Ok(n),
            _ => Err(NetError::Protocol("len answered with a non-len")),
        }
    }

    /// Whether the solution is empty.
    pub fn is_empty(&mut self) -> Result<bool, NetError> {
        Ok(self.len()? == 0)
    }

    /// Full membership snapshot plus the sequence number it reflects.
    pub fn snapshot(&mut self) -> Result<(u64, Vec<u32>), NetError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot { seq, solution } => Ok((seq, solution)),
            _ => Err(NetError::Protocol("snapshot answered wrongly")),
        }
    }

    /// Service stats, including the net layer's counters.
    pub fn stats(&mut self) -> Result<ServiceStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            _ => Err(NetError::Protocol("stats answered wrongly")),
        }
    }

    /// Telemetry snapshot of the server process — the same
    /// [`MetricsSnapshot`] schema the in-process registry API returns.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            _ => Err(NetError::Protocol("metrics answered wrongly")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(NetError::Protocol("ping answered with a non-pong")),
        }
    }

    /// Converts this session into a subscription stream delivering
    /// every sequenced delta after `after_seq` (0 for a fresh mirror;
    /// the last applied sequence to resume after a reconnect).
    pub fn subscribe(mut self, after_seq: u64) -> Result<Subscription, NetError> {
        match self.call(&Request::Subscribe { after_seq })? {
            Response::Subscribed { resume_seq } if resume_seq == after_seq => Ok(Subscription {
                stream: self.stream,
                fb: FrameBuffer::new(),
                chunk: vec![0u8; 64 * 1024],
                reply: self.reply,
            }),
            Response::Subscribed { .. } => {
                Err(NetError::Protocol("subscription resumed at the wrong seq"))
            }
            _ => Err(NetError::Protocol("subscribe answered wrongly")),
        }
    }
}

/// One pushed subscription event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubEvent {
    /// One sequenced delta (contiguous in a correct stream).
    Delta {
        /// The entry's sequence number.
        seq: u64,
        /// Its net solution change.
        delta: SolutionDelta,
    },
    /// Checkpoint fallback: replace the mirror with this membership;
    /// deltas continue from `seq + 1`.
    Checkpoint {
        /// Sequence number the checkpoint covers up to (inclusive).
        seq: u64,
        /// Sorted membership at that sequence number.
        solution: Vec<u32>,
    },
}

/// The receiving end of a subscription stream.
pub struct Subscription {
    stream: TcpStream,
    fb: FrameBuffer,
    chunk: Vec<u8>,
    reply: Vec<u8>,
}

impl Subscription {
    /// Blocks until the next event (respecting any read timeout set via
    /// [`Subscription::set_read_timeout`] — a timeout surfaces as
    /// `Ok(None)` so pollers can check their own stop conditions).
    /// `Err(ServerClosed)` on a clean stream end.
    pub fn next_event(&mut self) -> Result<Option<SubEvent>, NetError> {
        loop {
            if let Some(frame) = self.fb.next_frame()? {
                self.reply = frame;
                return decode_event(&self.reply).map(Some);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(NetError::ServerClosed),
                Ok(n) => {
                    let (chunk, fb) = (&self.chunk[..n], &mut self.fb);
                    fb.extend(chunk);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Drains every event currently readable without blocking (the
    /// socket must be in non-blocking mode — see
    /// [`Subscription::set_nonblocking`]). Calls `f` per event; returns
    /// `Ok(false)` once the server closed the stream.
    pub fn poll_events(&mut self, mut f: impl FnMut(SubEvent)) -> Result<bool, NetError> {
        loop {
            while let Some(frame) = self.fb.next_frame()? {
                f(decode_event(&frame)?);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    let (chunk, fb) = (&self.chunk[..n], &mut self.fb);
                    fb.extend(chunk);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(true)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Switches the underlying socket between blocking and
    /// non-blocking mode (for poll-loop consumers sweeping many
    /// subscriptions on one thread).
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        self.stream.set_nonblocking(on)
    }

    /// Read timeout for [`Subscription::next_event`] in blocking mode.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }
}

fn decode_event(frame: &[u8]) -> Result<SubEvent, NetError> {
    match decode_response(frame)? {
        Response::Delta { seq, delta } => Ok(SubEvent::Delta { seq, delta }),
        Response::Checkpoint { seq, solution } => Ok(SubEvent::Checkpoint { seq, solution }),
        _ => Err(NetError::Protocol("non-event pushed on a subscription")),
    }
}

/// A remote replica of the served solution, fed by subscription
/// events. Apply is *strict*: a delta whose sequence number is not
/// exactly `seq() + 1` is a typed [`NetError::Gap`] — never silently
/// skipped or double-applied — and a delta contradicting the mirror's
/// state is a typed [`NetError::Mirror`]. This is what makes
/// "every sequenced delta, exactly once, in order" checkable: any
/// violation anywhere in the transport surfaces here.
#[derive(Debug, Default, Clone)]
pub struct RemoteMirror {
    mirror: SolutionMirror,
    seq: u64,
}

impl RemoteMirror {
    /// An empty replica at sequence 0 (apply a stream from the start,
    /// or expect a checkpoint first).
    pub fn new() -> Self {
        RemoteMirror::default()
    }

    /// Applies one event, enforcing contiguity.
    pub fn apply_event(&mut self, ev: &SubEvent) -> Result<(), NetError> {
        match ev {
            SubEvent::Delta { seq, delta } => {
                if *seq != self.seq + 1 {
                    return Err(NetError::Gap {
                        expected: self.seq + 1,
                        got: *seq,
                    });
                }
                self.mirror.apply(delta)?;
                self.seq = *seq;
                Ok(())
            }
            SubEvent::Checkpoint { seq, solution } => {
                self.mirror = SolutionMirror::from_solution(solution);
                self.seq = *seq;
                Ok(())
            }
        }
    }

    /// The sequence number the replica reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// O(1) membership test.
    pub fn contains(&self, v: u32) -> bool {
        self.mirror.contains(v)
    }

    /// Current solution size.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether the solution is empty.
    pub fn is_empty(&self) -> bool {
        self.mirror.len() == 0
    }

    /// Materializes the replica's solution (sorted).
    pub fn solution(&self) -> Vec<u32> {
        self.mirror.solution()
    }
}
