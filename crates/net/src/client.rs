//! The blocking client: one request/response call per method, plus the
//! subscription consumer and the [`RemoteMirror`] replica it feeds.

use crate::error::NetError;
use crate::frame::{read_frame, write_frame, FrameBuffer};
use crate::proto::{
    decode_response, encode_request, response_to_result, Request, Response, SubFilter,
    PROTO_VERSION,
};
use dynamis_core::{EngineError, SolutionDelta, SolutionMirror};
use dynamis_graph::Update;
use dynamis_obs::MetricsSnapshot;
use dynamis_serve::ServiceStats;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, handshaken session. One outstanding request at a time
/// (the protocol is strictly request/response until a `Subscribe`).
pub struct NetClient {
    stream: TcpStream,
    payload: Vec<u8>,
    reply: Vec<u8>,
    head_at_hello: u64,
    server_version: u16,
}

impl NetClient {
    /// Connects and performs the `Hello` handshake. A server *older*
    /// than this client is accepted — version-gated features (filtered
    /// subscriptions, snapshot bootstrap) are refused locally, typed,
    /// when asked for against it.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = NetClient {
            stream,
            payload: Vec::new(),
            reply: Vec::new(),
            head_at_hello: 0,
            server_version: 0,
        };
        match c.call(&Request::Hello {
            version: PROTO_VERSION,
        })? {
            Response::Hello {
                version,
                head_seq: _,
            } if version == 0 => {
                // A server that speaks no version at all is broken.
                Err(NetError::Handshake {
                    server: version,
                    client: PROTO_VERSION,
                })
            }
            Response::Hello { version, head_seq } => {
                c.head_at_hello = head_seq;
                c.server_version = version;
                Ok(c)
            }
            _ => Err(NetError::Protocol("handshake answered with a non-Hello")),
        }
    }

    /// Broadcast-log head the server reported at handshake time.
    pub fn head_at_hello(&self) -> u64 {
        self.head_at_hello
    }

    /// Protocol version the server negotiated at handshake time.
    pub fn server_version(&self) -> u16 {
        self.server_version
    }

    /// One request/response round trip. Shed (`Busy`) and server-error
    /// replies surface as typed [`NetError`]s.
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        encode_request(req, &mut self.payload);
        write_frame(&mut self.stream, &self.payload)?;
        if !read_frame(&mut self.stream, &mut self.reply)? {
            return Err(NetError::ServerClosed);
        }
        response_to_result(decode_response(&self.reply)?)
    }

    /// Applies one update; returns its broadcast sequence number.
    /// Engine rejections are [`NetError::Rejected`], admission sheds
    /// [`NetError::Busy`].
    pub fn apply(&mut self, update: Update) -> Result<u64, NetError> {
        match self.call(&Request::Apply(update))? {
            Response::Verdict(Ok(seq)) => Ok(seq),
            Response::Verdict(Err(e)) => Err(NetError::Rejected(e)),
            _ => Err(NetError::Protocol("apply answered with a non-verdict")),
        }
    }

    /// Applies a batch; returns one ticketed verdict per update, in
    /// submission order (a rejection does not fail the whole batch).
    pub fn apply_batch(
        &mut self,
        updates: Vec<Update>,
    ) -> Result<Vec<Result<u64, EngineError>>, NetError> {
        match self.call(&Request::ApplyBatch(updates))? {
            Response::Verdicts(vs) => Ok(vs),
            _ => Err(NetError::Protocol("batch answered with a non-verdict")),
        }
    }

    /// O(1) membership query.
    pub fn contains(&mut self, v: u32) -> Result<bool, NetError> {
        match self.call(&Request::Contains(v))? {
            Response::Bool(b) => Ok(b),
            _ => Err(NetError::Protocol("contains answered with a non-bool")),
        }
    }

    /// Current solution size.
    pub fn len(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Len)? {
            Response::Len(n) => Ok(n),
            _ => Err(NetError::Protocol("len answered with a non-len")),
        }
    }

    /// Whether the solution is empty.
    pub fn is_empty(&mut self) -> Result<bool, NetError> {
        Ok(self.len()? == 0)
    }

    /// Full membership snapshot plus the sequence number it reflects.
    pub fn snapshot(&mut self) -> Result<(u64, Vec<u32>), NetError> {
        match self.call(&Request::Snapshot)? {
            Response::Snapshot { seq, solution } => Ok((seq, solution)),
            _ => Err(NetError::Protocol("snapshot answered wrongly")),
        }
    }

    /// Service stats, including the net layer's counters.
    pub fn stats(&mut self) -> Result<ServiceStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            _ => Err(NetError::Protocol("stats answered wrongly")),
        }
    }

    /// Telemetry snapshot of the server process — the same
    /// [`MetricsSnapshot`] schema the in-process registry API returns.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            _ => Err(NetError::Protocol("metrics answered wrongly")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(NetError::Protocol("ping answered with a non-pong")),
        }
    }

    /// Converts this session into a subscription stream delivering
    /// every sequenced delta after `after_seq` (0 for a fresh mirror;
    /// the last applied sequence to resume after a reconnect).
    pub fn subscribe(self, after_seq: u64) -> Result<Subscription, NetError> {
        self.subscribe_filtered(after_seq, SubFilter::All)
    }

    /// Like [`NetClient::subscribe`], but streams only the vertex
    /// subset `filter` accepts: deltas arrive masked, entries masking
    /// to empty are suppressed server-side (with a periodic empty
    /// position-marker delta so the stream's sequence number still
    /// tracks the head), and checkpoint reseeds are masked too. A
    /// non-trivial filter needs a protocol-2 server; against an older
    /// one this refuses locally with [`NetError::Unsupported`].
    pub fn subscribe_filtered(
        mut self,
        after_seq: u64,
        filter: SubFilter,
    ) -> Result<Subscription, NetError> {
        if !filter.is_all() && self.server_version < 2 {
            return Err(NetError::Unsupported {
                feature: "filtered subscriptions",
                server: self.server_version,
                needed: 2,
            });
        }
        match self.call(&Request::Subscribe { after_seq, filter })? {
            Response::Subscribed { resume_seq } if resume_seq == after_seq => Ok(Subscription {
                stream: self.stream,
                fb: FrameBuffer::new(),
                chunk: vec![0u8; 64 * 1024],
                reply: self.reply,
            }),
            Response::Subscribed { .. } => {
                Err(NetError::Protocol("subscription resumed at the wrong seq"))
            }
            _ => Err(NetError::Protocol("subscribe answered wrongly")),
        }
    }

    /// Snapshot cold-start (needs a protocol-2 server): fetches the
    /// server's base checkpoint — after a durable restart, the newest
    /// durable checkpoint — as `(seq, sorted membership)`, reassembled
    /// from length-capped chunks and CRC-verified. A fresh mirror
    /// seeds from it and then subscribes with `after_seq = seq`,
    /// skipping the replay from sequence 0.
    pub fn bootstrap(&mut self) -> Result<(u64, Vec<u32>), NetError> {
        if self.server_version < 2 {
            return Err(NetError::Unsupported {
                feature: "snapshot bootstrap",
                server: self.server_version,
                needed: 2,
            });
        }
        let (seq, total, chunks, crc) = match self.call(&Request::Bootstrap)? {
            Response::BootstrapMeta {
                seq,
                members,
                chunks,
                crc,
            } => (seq, members, chunks, crc),
            _ => Err(NetError::Protocol("bootstrap answered wrongly"))?,
        };
        let total = usize::try_from(total)
            .map_err(|_| NetError::Protocol("bootstrap member count overflows"))?;
        let mut members: Vec<u32> = Vec::with_capacity(total);
        for expect in 0..chunks {
            // Chunks are pushed back-to-back after the meta frame, in
            // index order, on the same request/response stream.
            if !read_frame(&mut self.stream, &mut self.reply)? {
                return Err(NetError::ServerClosed);
            }
            match response_to_result(decode_response(&self.reply)?)? {
                Response::BootstrapChunk { index, members: m } if index == expect => {
                    members.extend_from_slice(&m);
                }
                Response::BootstrapChunk { .. } => {
                    return Err(NetError::Protocol("bootstrap chunk out of order"))
                }
                _ => return Err(NetError::Protocol("non-chunk inside a bootstrap stream")),
            }
        }
        if members.len() != total {
            return Err(NetError::Protocol("bootstrap member count mismatch"));
        }
        let mut bytes = Vec::with_capacity(members.len() * 4);
        for &v in &members {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        if dynamis_durable::format::crc32(&bytes) != crc {
            return Err(NetError::Protocol("bootstrap checksum mismatch"));
        }
        Ok((seq, members))
    }
}

/// One pushed subscription event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubEvent {
    /// One sequenced delta (contiguous in a correct stream).
    Delta {
        /// The entry's sequence number.
        seq: u64,
        /// Its net solution change.
        delta: SolutionDelta,
    },
    /// Checkpoint fallback: replace the mirror with this membership;
    /// deltas continue from `seq + 1`.
    Checkpoint {
        /// Sequence number the checkpoint covers up to (inclusive).
        seq: u64,
        /// Sorted membership at that sequence number.
        solution: Vec<u32>,
    },
}

/// The receiving end of a subscription stream.
pub struct Subscription {
    stream: TcpStream,
    fb: FrameBuffer,
    chunk: Vec<u8>,
    reply: Vec<u8>,
}

impl Subscription {
    /// Blocks until the next event (respecting any read timeout set via
    /// [`Subscription::set_read_timeout`] — a timeout surfaces as
    /// `Ok(None)` so pollers can check their own stop conditions).
    /// `Err(ServerClosed)` on a clean stream end.
    pub fn next_event(&mut self) -> Result<Option<SubEvent>, NetError> {
        loop {
            if let Some(frame) = self.fb.next_frame()? {
                self.reply = frame;
                return decode_event(&self.reply).map(Some);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Err(NetError::ServerClosed),
                Ok(n) => {
                    let (chunk, fb) = (&self.chunk[..n], &mut self.fb);
                    fb.extend(chunk);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Drains every event currently readable without blocking (the
    /// socket must be in non-blocking mode — see
    /// [`Subscription::set_nonblocking`]). Calls `f` per event; returns
    /// `Ok(false)` once the server closed the stream.
    pub fn poll_events(&mut self, mut f: impl FnMut(SubEvent)) -> Result<bool, NetError> {
        loop {
            while let Some(frame) = self.fb.next_frame()? {
                f(decode_event(&frame)?);
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    let (chunk, fb) = (&self.chunk[..n], &mut self.fb);
                    fb.extend(chunk);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(true)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Switches the underlying socket between blocking and
    /// non-blocking mode (for poll-loop consumers sweeping many
    /// subscriptions on one thread).
    pub fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        self.stream.set_nonblocking(on)
    }

    /// Read timeout for [`Subscription::next_event`] in blocking mode.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }
}

fn decode_event(frame: &[u8]) -> Result<SubEvent, NetError> {
    match decode_response(frame)? {
        Response::Delta { seq, delta } => Ok(SubEvent::Delta { seq, delta }),
        Response::Checkpoint { seq, solution } => Ok(SubEvent::Checkpoint { seq, solution }),
        _ => Err(NetError::Protocol("non-event pushed on a subscription")),
    }
}

/// A remote replica of the served solution, fed by subscription
/// events. Apply is *strict*: on an unfiltered stream, a delta whose
/// sequence number is not exactly `seq() + 1` is a typed
/// [`NetError::Gap`] — never silently skipped or double-applied — and
/// a delta contradicting the mirror's state is a typed
/// [`NetError::Mirror`]. This is what makes "every sequenced delta,
/// exactly once, in order" checkable: any violation anywhere in the
/// transport surfaces here.
///
/// A [`filtered`](RemoteMirror::filtered) replica mirrors only its
/// vertex subset. Its stream legitimately skips the sequence numbers
/// of fully-suppressed entries, so contiguity relaxes to *strictly
/// increasing*; in exchange it checks that every delivered vertex is
/// inside the filter ([`NetError::OutOfFilter`] otherwise) and masks
/// checkpoint solutions client-side, so an unfiltered bootstrap
/// checkpoint composes with a filtered stream.
#[derive(Debug, Default, Clone)]
pub struct RemoteMirror {
    mirror: SolutionMirror,
    seq: u64,
    filter: SubFilter,
}

impl RemoteMirror {
    /// An empty replica at sequence 0 (apply a stream from the start,
    /// or expect a checkpoint first).
    pub fn new() -> Self {
        RemoteMirror::default()
    }

    /// An empty replica at sequence 0 mirroring only the vertex subset
    /// `filter` accepts — pair it with
    /// [`NetClient::subscribe_filtered`] on the same filter.
    pub fn filtered(filter: SubFilter) -> Self {
        RemoteMirror {
            filter,
            ..RemoteMirror::default()
        }
    }

    /// Applies one event, enforcing contiguity (strictly increasing,
    /// in-filter events for a filtered replica).
    pub fn apply_event(&mut self, ev: &SubEvent) -> Result<(), NetError> {
        match ev {
            SubEvent::Delta { seq, delta } => {
                if self.filter.is_all() {
                    if *seq != self.seq + 1 {
                        return Err(NetError::Gap {
                            expected: self.seq + 1,
                            got: *seq,
                        });
                    }
                } else {
                    // Suppressed entries legitimately skip sequence
                    // numbers, but a duplicate or reordered delta is
                    // still a transport violation.
                    if *seq <= self.seq {
                        return Err(NetError::Gap {
                            expected: self.seq + 1,
                            got: *seq,
                        });
                    }
                    for &v in delta.entered.iter().chain(delta.left.iter()) {
                        if !self.filter.accepts(v) {
                            return Err(NetError::OutOfFilter { vertex: v });
                        }
                    }
                }
                self.mirror.apply(delta)?;
                self.seq = *seq;
                Ok(())
            }
            SubEvent::Checkpoint { seq, solution } => {
                if self.filter.is_all() {
                    self.mirror = SolutionMirror::from_solution(solution);
                } else {
                    let masked: Vec<u32> = solution
                        .iter()
                        .copied()
                        .filter(|&v| self.filter.accepts(v))
                        .collect();
                    self.mirror = SolutionMirror::from_solution(&masked);
                }
                self.seq = *seq;
                Ok(())
            }
        }
    }

    /// The sequence number the replica reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// O(1) membership test.
    pub fn contains(&self, v: u32) -> bool {
        self.mirror.contains(v)
    }

    /// Current solution size.
    pub fn len(&self) -> usize {
        self.mirror.len()
    }

    /// Whether the solution is empty.
    pub fn is_empty(&self) -> bool {
        self.mirror.len() == 0
    }

    /// Materializes the replica's solution (sorted).
    pub fn solution(&self) -> Vec<u32> {
        self.mirror.solution()
    }
}
