//! The request/response vocabulary: one typed enum per direction, each
//! message encoded as one frame payload with a leading codec version
//! word ([`wire::WIRE_VERSION`]). Value-level encodings (updates,
//! deltas, errors, stats) come from `dynamis-serve`'s [`wire`] codec,
//! so the bytes a subscription pushes are exactly the bytes the serve
//! layer defines.
//!
//! The *protocol* version ([`PROTO_VERSION`]) rides only in the
//! `Hello` exchange: it gates which messages a peer may use (filtered
//! subscriptions and snapshot bootstrap need version ≥ 2), while the
//! per-message word stays at the codec version so version-1 and
//! version-2 peers parse each other's shared messages byte-for-byte.
//! `Subscribe`'s filter is an *optional trailing* field for the same
//! reason: a version-1 client's filterless encoding still decodes.

use crate::error::NetError;
use dynamis_core::{EngineError, SolutionDelta};
use dynamis_graph::Update;
use dynamis_obs::MetricsSnapshot;
use dynamis_serve::wire::{self, Reader, WireError};
use dynamis_serve::ServiceStats;

/// Protocol version spoken by this build. A connection starts with a
/// [`Request::Hello`] carrying the client's version; the server answers
/// with its own, and the session proceeds iff the client's version is
/// not newer than the server's. Version 2 added filtered subscriptions
/// and the snapshot bootstrap; a version-2 client talking to a
/// version-1 server refuses those features locally, typed.
pub const PROTO_VERSION: u16 = 2;

/// What subset of the vertex space a subscription streams. The hub
/// masks every delta against the filter before writing it, drops
/// per-entry frames that mask to empty (coalescing the suppressed tail
/// into one empty position-marker delta so the subscriber's sequence
/// number still tracks the head), and masks checkpoint reseeds the
/// same way — so a filtered subscriber never receives an out-of-filter
/// vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubFilter {
    /// The whole vertex space (the only filter a version-1 peer knows).
    #[default]
    All,
    /// The half-open vertex-id range `lo..hi`.
    VertexRange {
        /// First vertex id in the range.
        lo: u32,
        /// One past the last vertex id in the range.
        hi: u32,
    },
    /// The modulo partition `v % of == id` — the stream a client
    /// mirroring one of `of` equal hash shards wants.
    Shard {
        /// Shard index in `0..of`.
        id: u32,
        /// Shard count (> 0).
        of: u32,
    },
}

impl SubFilter {
    /// Whether vertex `v` is inside the filter.
    pub fn accepts(&self, v: u32) -> bool {
        match self {
            SubFilter::All => true,
            SubFilter::VertexRange { lo, hi } => *lo <= v && v < *hi,
            SubFilter::Shard { id, of } => *of > 0 && v % *of == *id,
        }
    }

    /// Whether this is the trivial whole-space filter.
    pub fn is_all(&self) -> bool {
        matches!(self, SubFilter::All)
    }
}

impl std::fmt::Display for SubFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubFilter::All => write!(f, "all"),
            SubFilter::VertexRange { lo, hi } => write!(f, "range:{lo}..{hi}"),
            SubFilter::Shard { id, of } => write!(f, "shard:{id}/{of}"),
        }
    }
}

impl std::str::FromStr for SubFilter {
    type Err = String;

    /// Parses the CLI spelling: `all`, `range:LO..HI`, or `shard:ID/OF`.
    fn from_str(s: &str) -> Result<Self, String> {
        if s == "all" {
            return Ok(SubFilter::All);
        }
        if let Some(spec) = s.strip_prefix("range:") {
            if let Some((lo, hi)) = spec.split_once("..") {
                let (lo, hi) = (lo.parse().ok(), hi.parse().ok());
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    if lo < hi {
                        return Ok(SubFilter::VertexRange { lo, hi });
                    }
                }
            }
        } else if let Some(spec) = s.strip_prefix("shard:") {
            if let Some((id, of)) = spec.split_once('/') {
                let (id, of) = (id.parse().ok(), of.parse().ok());
                if let (Some(id), Some(of)) = (id, of) {
                    if of > 0 && id < of {
                        return Ok(SubFilter::Shard { id, of });
                    }
                }
            }
        }
        Err(format!(
            "bad filter `{s}` (expected `all`, `range:LO..HI`, or `shard:ID/OF`)"
        ))
    }
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens the session: version negotiation. Must be first.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Apply one graph update; answered with a ticketed
    /// [`Response::Verdict`] (or [`Response::Busy`]).
    Apply(Update),
    /// Apply a batch; answered with [`Response::Verdicts`], one per
    /// update in order (or [`Response::Busy`] for the whole batch).
    ApplyBatch(Vec<Update>),
    /// O(1) membership query against the served solution.
    Contains(u32),
    /// Current solution size.
    Len,
    /// Full solution membership plus the sequence number it reflects.
    Snapshot,
    /// Service counter snapshot (includes the net layer's counters).
    Stats,
    /// Convert this session into a subscription stream delivering every
    /// sequenced delta after `after_seq`. Answered with
    /// [`Response::Subscribed`], after which the server pushes
    /// [`Response::Delta`] / [`Response::Checkpoint`] frames and reads
    /// nothing further from this connection.
    Subscribe {
        /// Last sequence number the client has already applied (0 for
        /// a fresh mirror).
        after_seq: u64,
        /// Vertex subset to stream (encoded as an optional trailing
        /// field: [`SubFilter::All`] is written as absence, so
        /// version-1 peers interoperate unchanged).
        filter: SubFilter,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Telemetry snapshot of the process-global metrics registry;
    /// answered with [`Response::Metrics`].
    Metrics,
    /// Snapshot cold-start (protocol ≥ 2): stream the server's base
    /// checkpoint — the newest durable checkpoint after a recovered
    /// restart — so a fresh mirror seeds at its sequence number instead
    /// of replaying from 0. Answered with one
    /// [`Response::BootstrapMeta`] followed by `chunks`
    /// [`Response::BootstrapChunk`] frames (length-capped), after which
    /// the session returns to request/response.
    Bootstrap,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session accepted.
    Hello {
        /// Protocol version the server speaks.
        version: u16,
        /// Broadcast-log head at accept time.
        head_seq: u64,
    },
    /// Ticketed verdict for one [`Request::Apply`]: the sequence number
    /// of the broadcast batch containing the update, or the engine's
    /// typed rejection — exactly what the in-process ticket reports.
    Verdict(Result<u64, EngineError>),
    /// Per-update verdicts for one [`Request::ApplyBatch`], in
    /// submission order.
    Verdicts(Vec<Result<u64, EngineError>>),
    /// Answer to [`Request::Contains`].
    Bool(bool),
    /// Answer to [`Request::Len`].
    Len(u64),
    /// Answer to [`Request::Snapshot`]: sorted membership at `seq`.
    Snapshot {
        /// Sequence number the snapshot reflects.
        seq: u64,
        /// Sorted solution membership.
        solution: Vec<u32>,
    },
    /// Answer to [`Request::Stats`].
    Stats(Box<ServiceStats>),
    /// Admission control shed the request (or, at the door, the whole
    /// session). The client should back off and retry.
    Busy {
        /// Ingest-queue depth the server observed when it shed.
        queue_depth: u64,
    },
    /// Subscription accepted; deltas follow from `resume_seq + 1`.
    Subscribed {
        /// The sequence number streaming resumes after.
        resume_seq: u64,
    },
    /// One sequenced delta, pushed to a subscriber. Contiguous: a
    /// correct stream delivers `seq == previous + 1`.
    Delta {
        /// The entry's sequence number.
        seq: u64,
        /// Its net solution change.
        delta: SolutionDelta,
    },
    /// Checkpoint fallback, pushed when the subscriber's position fell
    /// behind the log's retained window (including a `Subscribe` far in
    /// the past): replace the mirror with this full membership, then
    /// deltas continue from `seq + 1`.
    Checkpoint {
        /// Sequence number the checkpoint covers up to (inclusive).
        seq: u64,
        /// Sorted solution membership at that sequence number.
        solution: Vec<u32>,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Metrics`]: the same [`MetricsSnapshot`]
    /// schema the in-process API and the text encoders use, versioned
    /// independently by [`dynamis_obs::SNAPSHOT_VERSION`].
    Metrics(Box<MetricsSnapshot>),
    /// Protocol-level failure (malformed frame, handshake refusal,
    /// out-of-order message). The server closes the connection after
    /// sending one of these.
    Error {
        /// Stable numeric class of the failure (see `ERR_*` consts).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Opens a [`Request::Bootstrap`] stream: the checkpoint's sequence
    /// number, its total member count, how many chunk frames follow,
    /// and a CRC-32 (the durable layer's checksum, over the members'
    /// little-endian bytes) the client verifies after reassembly.
    BootstrapMeta {
        /// Sequence number the checkpoint covers (inclusive); the
        /// client subscribes with `after_seq = seq` afterwards.
        seq: u64,
        /// Total solution members across all chunks.
        members: u64,
        /// Number of [`Response::BootstrapChunk`] frames that follow.
        chunks: u32,
        /// CRC-32 over the concatenated little-endian member bytes.
        crc: u32,
    },
    /// One length-capped slice of a bootstrap checkpoint's membership,
    /// in ascending `index` order.
    BootstrapChunk {
        /// 0-based chunk index.
        index: u32,
        /// This chunk's slice of the sorted membership.
        members: Vec<u32>,
    },
}

/// [`Response::Error`] code: the frame could not be decoded.
pub const ERR_MALFORMED: u16 = 1;
/// [`Response::Error`] code: version negotiation failed.
pub const ERR_VERSION: u16 = 2;
/// [`Response::Error`] code: the session cap was reached.
pub const ERR_SESSION_LIMIT: u16 = 3;
/// [`Response::Error`] code: the service is shutting down.
pub const ERR_SHUTDOWN: u16 = 4;
/// [`Response::Error`] code: message out of order (e.g. no `Hello`).
pub const ERR_ORDER: u16 = 5;

/// Encodes one request as a frame payload. The leading word is the
/// *codec* version ([`wire::WIRE_VERSION`]), not [`PROTO_VERSION`]:
/// protocol capability is negotiated once in `Hello`, and shared
/// messages stay byte-identical across protocol versions.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    out.clear();
    wire::put_u16(out, wire::WIRE_VERSION);
    match req {
        Request::Hello { version } => {
            out.push(1);
            wire::put_u16(out, *version);
        }
        Request::Apply(u) => {
            out.push(2);
            wire::encode_update_body(u, out);
        }
        Request::ApplyBatch(us) => {
            out.push(3);
            wire::put_u32(out, us.len() as u32);
            for u in us {
                wire::encode_update_body(u, out);
            }
        }
        Request::Contains(v) => {
            out.push(4);
            wire::put_u32(out, *v);
        }
        Request::Len => out.push(5),
        Request::Snapshot => out.push(6),
        Request::Stats => out.push(7),
        Request::Subscribe { after_seq, filter } => {
            out.push(8);
            wire::put_u64(out, *after_seq);
            // Optional trailing field: All is written as absence, so
            // this encoding is byte-identical to protocol version 1's.
            match filter {
                SubFilter::All => {}
                SubFilter::VertexRange { lo, hi } => {
                    out.push(1);
                    wire::put_u32(out, *lo);
                    wire::put_u32(out, *hi);
                }
                SubFilter::Shard { id, of } => {
                    out.push(2);
                    wire::put_u32(out, *id);
                    wire::put_u32(out, *of);
                }
            }
        }
        Request::Ping => out.push(9),
        Request::Metrics => out.push(10),
        Request::Bootstrap => out.push(11),
    }
}

/// Decodes the optional trailing filter of a `Subscribe` body: absence
/// means [`SubFilter::All`]. Degenerate filters (an empty range, a zero
/// or out-of-range shard modulus) are refused as malformed rather than
/// silently streaming nothing.
fn take_sub_filter(r: &mut Reader<'_>) -> Result<SubFilter, WireError> {
    if r.remaining() == 0 {
        return Ok(SubFilter::All);
    }
    match r.take_u8("subscribe filter tag")? {
        1 => {
            let lo = r.take_u32("filter range lo")?;
            let hi = r.take_u32("filter range hi")?;
            if lo >= hi {
                return Err(WireError::Malformed("empty filter range"));
            }
            Ok(SubFilter::VertexRange { lo, hi })
        }
        2 => {
            let id = r.take_u32("filter shard id")?;
            let of = r.take_u32("filter shard count")?;
            if of == 0 || id >= of {
                return Err(WireError::Malformed("filter shard out of range"));
            }
            Ok(SubFilter::Shard { id, of })
        }
        tag => Err(WireError::UnknownTag {
            what: "subscribe filter",
            tag: tag as u16,
        }),
    }
}

/// Decodes one request frame payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("request")?;
    let req = match r.take_u8("request tag")? {
        1 => Request::Hello {
            version: r.take_u16("hello version")?,
        },
        2 => Request::Apply(wire::take_update(&mut r)?),
        3 => {
            // Update bodies are variable-length; validate the count
            // against the minimum body size (5 bytes) so a hostile
            // length cannot stage a huge allocation.
            let n = r.take_len(5, "batch")?;
            let mut us = Vec::with_capacity(n);
            for _ in 0..n {
                us.push(wire::take_update(&mut r)?);
            }
            Request::ApplyBatch(us)
        }
        4 => Request::Contains(r.take_u32("contains vertex")?),
        5 => Request::Len,
        6 => Request::Snapshot,
        7 => Request::Stats,
        8 => Request::Subscribe {
            after_seq: r.take_u64("subscribe seq")?,
            filter: take_sub_filter(&mut r)?,
        },
        9 => Request::Ping,
        10 => Request::Metrics,
        11 => Request::Bootstrap,
        tag => {
            return Err(WireError::UnknownTag {
                what: "request",
                tag: tag as u16,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

/// Encodes one response as a frame payload. As with requests, the
/// leading word is the codec version, not [`PROTO_VERSION`].
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    out.clear();
    wire::put_u16(out, wire::WIRE_VERSION);
    match resp {
        Response::Hello { version, head_seq } => {
            out.push(1);
            wire::put_u16(out, *version);
            wire::put_u64(out, *head_seq);
        }
        Response::Verdict(v) => {
            out.push(2);
            wire::encode_verdict_body(v, out);
        }
        Response::Verdicts(vs) => {
            out.push(3);
            wire::put_u32(out, vs.len() as u32);
            for v in vs {
                wire::encode_verdict_body(v, out);
            }
        }
        Response::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Response::Len(n) => {
            out.push(5);
            wire::put_u64(out, *n);
        }
        Response::Snapshot { seq, solution } => {
            out.push(6);
            wire::put_u64(out, *seq);
            wire::put_u32s(out, solution);
        }
        Response::Stats(s) => {
            out.push(7);
            wire::encode_stats_body(s, out);
        }
        Response::Busy { queue_depth } => {
            out.push(8);
            wire::put_u64(out, *queue_depth);
        }
        Response::Subscribed { resume_seq } => {
            out.push(9);
            wire::put_u64(out, *resume_seq);
        }
        Response::Delta { seq, delta } => {
            out.push(10);
            wire::put_u64(out, *seq);
            wire::encode_delta_body(delta, out);
        }
        Response::Checkpoint { seq, solution } => {
            out.push(11);
            wire::put_u64(out, *seq);
            wire::put_u32s(out, solution);
        }
        Response::Pong => out.push(12),
        Response::Error { code, message } => {
            out.push(13);
            wire::put_u16(out, *code);
            wire::put_str(out, message);
        }
        Response::Metrics(m) => {
            out.push(14);
            wire::encode_metrics_body(m, out);
        }
        Response::BootstrapMeta {
            seq,
            members,
            chunks,
            crc,
        } => {
            out.push(15);
            wire::put_u64(out, *seq);
            wire::put_u64(out, *members);
            wire::put_u32(out, *chunks);
            wire::put_u32(out, *crc);
        }
        Response::BootstrapChunk { index, members } => {
            out.push(16);
            wire::put_u32(out, *index);
            wire::put_u32s(out, members);
        }
    }
}

/// Decodes one response frame payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("response")?;
    let resp = match r.take_u8("response tag")? {
        1 => Response::Hello {
            version: r.take_u16("hello version")?,
            head_seq: r.take_u64("hello head")?,
        },
        2 => Response::Verdict(wire::take_verdict(&mut r)?),
        3 => {
            // Minimum verdict body is 9 bytes (tag + u64).
            let n = r.take_len(9, "verdicts")?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(wire::take_verdict(&mut r)?);
            }
            Response::Verdicts(vs)
        }
        4 => Response::Bool(r.take_u8("bool")? != 0),
        5 => Response::Len(r.take_u64("len")?),
        6 => Response::Snapshot {
            seq: r.take_u64("snapshot seq")?,
            solution: r.take_u32s("snapshot members")?,
        },
        7 => Response::Stats(Box::new(wire::take_stats(&mut r)?)),
        8 => Response::Busy {
            queue_depth: r.take_u64("busy depth")?,
        },
        9 => Response::Subscribed {
            resume_seq: r.take_u64("subscribed seq")?,
        },
        10 => Response::Delta {
            seq: r.take_u64("delta seq")?,
            delta: wire::take_delta(&mut r)?,
        },
        11 => Response::Checkpoint {
            seq: r.take_u64("checkpoint seq")?,
            solution: r.take_u32s("checkpoint members")?,
        },
        12 => Response::Pong,
        13 => Response::Error {
            code: r.take_u16("error code")?,
            message: r.take_str("error message")?,
        },
        14 => Response::Metrics(Box::new(wire::take_metrics(&mut r)?)),
        15 => Response::BootstrapMeta {
            seq: r.take_u64("bootstrap seq")?,
            members: r.take_u64("bootstrap members")?,
            chunks: r.take_u32("bootstrap chunks")?,
            crc: r.take_u32("bootstrap crc")?,
        },
        16 => Response::BootstrapChunk {
            index: r.take_u32("chunk index")?,
            members: r.take_u32s("chunk members")?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "response",
                tag: tag as u16,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

/// Maps a [`Response`] that is an error/shed reply to the typed
/// [`NetError`] a client surfaces; passes every other response through.
pub fn response_to_result(resp: Response) -> Result<Response, NetError> {
    match resp {
        Response::Busy { queue_depth } => Err(NetError::Busy { queue_depth }),
        Response::Error { code, .. } if code == ERR_SHUTDOWN => Err(NetError::ServerClosed),
        Response::Error { .. } => Err(NetError::Protocol("server reported a protocol error")),
        other => Ok(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        encode_request(req, &mut buf);
        decode_request(&buf).expect("request roundtrip")
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        encode_response(resp, &mut buf);
        decode_response(&buf).expect("response roundtrip")
    }

    #[test]
    fn subscribe_filters_roundtrip() {
        for filter in [
            SubFilter::All,
            SubFilter::VertexRange { lo: 10, hi: 500 },
            SubFilter::Shard { id: 3, of: 8 },
        ] {
            let req = Request::Subscribe {
                after_seq: 42,
                filter,
            };
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn legacy_filterless_subscribe_decodes_as_all() {
        // A version-1 client encodes Subscribe as exactly codec word,
        // tag 8, after_seq — no trailing filter bytes.
        let mut buf = Vec::new();
        wire::put_u16(&mut buf, wire::WIRE_VERSION);
        buf.push(8);
        wire::put_u64(&mut buf, 7);
        assert_eq!(
            decode_request(&buf).unwrap(),
            Request::Subscribe {
                after_seq: 7,
                filter: SubFilter::All,
            }
        );
    }

    #[test]
    fn all_filter_encodes_byte_identically_to_legacy() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Subscribe {
                after_seq: 7,
                filter: SubFilter::All,
            },
            &mut buf,
        );
        let mut legacy = Vec::new();
        wire::put_u16(&mut legacy, wire::WIRE_VERSION);
        legacy.push(8);
        wire::put_u64(&mut legacy, 7);
        assert_eq!(buf, legacy);
    }

    #[test]
    fn degenerate_filters_are_refused() {
        let mut empty_range = Vec::new();
        wire::put_u16(&mut empty_range, wire::WIRE_VERSION);
        empty_range.push(8);
        wire::put_u64(&mut empty_range, 0);
        empty_range.push(1);
        wire::put_u32(&mut empty_range, 9);
        wire::put_u32(&mut empty_range, 9);
        assert!(decode_request(&empty_range).is_err());

        let mut zero_mod = Vec::new();
        wire::put_u16(&mut zero_mod, wire::WIRE_VERSION);
        zero_mod.push(8);
        wire::put_u64(&mut zero_mod, 0);
        zero_mod.push(2);
        wire::put_u32(&mut zero_mod, 0);
        wire::put_u32(&mut zero_mod, 0);
        assert!(decode_request(&zero_mod).is_err());
    }

    #[test]
    fn bootstrap_messages_roundtrip() {
        assert_eq!(roundtrip_request(&Request::Bootstrap), Request::Bootstrap);
        let meta = Response::BootstrapMeta {
            seq: 1234,
            members: 99,
            chunks: 3,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(roundtrip_response(&meta), meta);
        let chunk = Response::BootstrapChunk {
            index: 2,
            members: vec![1, 5, 9, 1000],
        };
        assert_eq!(roundtrip_response(&chunk), chunk);
    }

    #[test]
    fn filter_accepts_matches_definition() {
        assert!(SubFilter::All.accepts(0));
        let r = SubFilter::VertexRange { lo: 10, hi: 20 };
        assert!(r.accepts(10) && r.accepts(19));
        assert!(!r.accepts(9) && !r.accepts(20));
        let s = SubFilter::Shard { id: 1, of: 4 };
        assert!(s.accepts(5) && s.accepts(9));
        assert!(!s.accepts(4) && !s.accepts(0));
    }

    #[test]
    fn filter_display_fromstr_roundtrip() {
        for f in [
            SubFilter::All,
            SubFilter::VertexRange { lo: 0, hi: 128 },
            SubFilter::Shard { id: 0, of: 2 },
        ] {
            assert_eq!(f.to_string().parse::<SubFilter>().unwrap(), f);
        }
        assert!("range:9..9".parse::<SubFilter>().is_err());
        assert!("shard:2/2".parse::<SubFilter>().is_err());
        assert!("shard:0/0".parse::<SubFilter>().is_err());
        assert!("bogus".parse::<SubFilter>().is_err());
    }
}
