//! The request/response vocabulary: one typed enum per direction, each
//! message encoded as one frame payload with a leading protocol
//! version word. Value-level encodings (updates, deltas, errors,
//! stats) come from `dynamis-serve`'s [`wire`] codec, so the bytes a
//! subscription pushes are exactly the bytes the serve layer defines.

use crate::error::NetError;
use dynamis_core::{EngineError, SolutionDelta};
use dynamis_graph::Update;
use dynamis_obs::MetricsSnapshot;
use dynamis_serve::wire::{self, Reader, WireError};
use dynamis_serve::ServiceStats;

/// Protocol version spoken by this build. A connection starts with a
/// [`Request::Hello`] carrying the client's version; the server answers
/// with its own, and the session proceeds iff the client's version is
/// not newer than the server's.
pub const PROTO_VERSION: u16 = 1;

/// One client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens the session: version negotiation. Must be first.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Apply one graph update; answered with a ticketed
    /// [`Response::Verdict`] (or [`Response::Busy`]).
    Apply(Update),
    /// Apply a batch; answered with [`Response::Verdicts`], one per
    /// update in order (or [`Response::Busy`] for the whole batch).
    ApplyBatch(Vec<Update>),
    /// O(1) membership query against the served solution.
    Contains(u32),
    /// Current solution size.
    Len,
    /// Full solution membership plus the sequence number it reflects.
    Snapshot,
    /// Service counter snapshot (includes the net layer's counters).
    Stats,
    /// Convert this session into a subscription stream delivering every
    /// sequenced delta after `after_seq`. Answered with
    /// [`Response::Subscribed`], after which the server pushes
    /// [`Response::Delta`] / [`Response::Checkpoint`] frames and reads
    /// nothing further from this connection.
    Subscribe {
        /// Last sequence number the client has already applied (0 for
        /// a fresh mirror).
        after_seq: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Telemetry snapshot of the process-global metrics registry;
    /// answered with [`Response::Metrics`].
    Metrics,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session accepted.
    Hello {
        /// Protocol version the server speaks.
        version: u16,
        /// Broadcast-log head at accept time.
        head_seq: u64,
    },
    /// Ticketed verdict for one [`Request::Apply`]: the sequence number
    /// of the broadcast batch containing the update, or the engine's
    /// typed rejection — exactly what the in-process ticket reports.
    Verdict(Result<u64, EngineError>),
    /// Per-update verdicts for one [`Request::ApplyBatch`], in
    /// submission order.
    Verdicts(Vec<Result<u64, EngineError>>),
    /// Answer to [`Request::Contains`].
    Bool(bool),
    /// Answer to [`Request::Len`].
    Len(u64),
    /// Answer to [`Request::Snapshot`]: sorted membership at `seq`.
    Snapshot {
        /// Sequence number the snapshot reflects.
        seq: u64,
        /// Sorted solution membership.
        solution: Vec<u32>,
    },
    /// Answer to [`Request::Stats`].
    Stats(Box<ServiceStats>),
    /// Admission control shed the request (or, at the door, the whole
    /// session). The client should back off and retry.
    Busy {
        /// Ingest-queue depth the server observed when it shed.
        queue_depth: u64,
    },
    /// Subscription accepted; deltas follow from `resume_seq + 1`.
    Subscribed {
        /// The sequence number streaming resumes after.
        resume_seq: u64,
    },
    /// One sequenced delta, pushed to a subscriber. Contiguous: a
    /// correct stream delivers `seq == previous + 1`.
    Delta {
        /// The entry's sequence number.
        seq: u64,
        /// Its net solution change.
        delta: SolutionDelta,
    },
    /// Checkpoint fallback, pushed when the subscriber's position fell
    /// behind the log's retained window (including a `Subscribe` far in
    /// the past): replace the mirror with this full membership, then
    /// deltas continue from `seq + 1`.
    Checkpoint {
        /// Sequence number the checkpoint covers up to (inclusive).
        seq: u64,
        /// Sorted solution membership at that sequence number.
        solution: Vec<u32>,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Metrics`]: the same [`MetricsSnapshot`]
    /// schema the in-process API and the text encoders use, versioned
    /// independently by [`dynamis_obs::SNAPSHOT_VERSION`].
    Metrics(Box<MetricsSnapshot>),
    /// Protocol-level failure (malformed frame, handshake refusal,
    /// out-of-order message). The server closes the connection after
    /// sending one of these.
    Error {
        /// Stable numeric class of the failure (see `ERR_*` consts).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// [`Response::Error`] code: the frame could not be decoded.
pub const ERR_MALFORMED: u16 = 1;
/// [`Response::Error`] code: version negotiation failed.
pub const ERR_VERSION: u16 = 2;
/// [`Response::Error`] code: the session cap was reached.
pub const ERR_SESSION_LIMIT: u16 = 3;
/// [`Response::Error`] code: the service is shutting down.
pub const ERR_SHUTDOWN: u16 = 4;
/// [`Response::Error`] code: message out of order (e.g. no `Hello`).
pub const ERR_ORDER: u16 = 5;

/// Encodes one request as a frame payload.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    out.clear();
    wire::put_u16(out, PROTO_VERSION);
    match req {
        Request::Hello { version } => {
            out.push(1);
            wire::put_u16(out, *version);
        }
        Request::Apply(u) => {
            out.push(2);
            wire::encode_update_body(u, out);
        }
        Request::ApplyBatch(us) => {
            out.push(3);
            wire::put_u32(out, us.len() as u32);
            for u in us {
                wire::encode_update_body(u, out);
            }
        }
        Request::Contains(v) => {
            out.push(4);
            wire::put_u32(out, *v);
        }
        Request::Len => out.push(5),
        Request::Snapshot => out.push(6),
        Request::Stats => out.push(7),
        Request::Subscribe { after_seq } => {
            out.push(8);
            wire::put_u64(out, *after_seq);
        }
        Request::Ping => out.push(9),
        Request::Metrics => out.push(10),
    }
}

/// Decodes one request frame payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("request")?;
    let req = match r.take_u8("request tag")? {
        1 => Request::Hello {
            version: r.take_u16("hello version")?,
        },
        2 => Request::Apply(wire::take_update(&mut r)?),
        3 => {
            // Update bodies are variable-length; validate the count
            // against the minimum body size (5 bytes) so a hostile
            // length cannot stage a huge allocation.
            let n = r.take_len(5, "batch")?;
            let mut us = Vec::with_capacity(n);
            for _ in 0..n {
                us.push(wire::take_update(&mut r)?);
            }
            Request::ApplyBatch(us)
        }
        4 => Request::Contains(r.take_u32("contains vertex")?),
        5 => Request::Len,
        6 => Request::Snapshot,
        7 => Request::Stats,
        8 => Request::Subscribe {
            after_seq: r.take_u64("subscribe seq")?,
        },
        9 => Request::Ping,
        10 => Request::Metrics,
        tag => {
            return Err(WireError::UnknownTag {
                what: "request",
                tag: tag as u16,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

/// Encodes one response as a frame payload.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    out.clear();
    wire::put_u16(out, PROTO_VERSION);
    match resp {
        Response::Hello { version, head_seq } => {
            out.push(1);
            wire::put_u16(out, *version);
            wire::put_u64(out, *head_seq);
        }
        Response::Verdict(v) => {
            out.push(2);
            wire::encode_verdict_body(v, out);
        }
        Response::Verdicts(vs) => {
            out.push(3);
            wire::put_u32(out, vs.len() as u32);
            for v in vs {
                wire::encode_verdict_body(v, out);
            }
        }
        Response::Bool(b) => {
            out.push(4);
            out.push(*b as u8);
        }
        Response::Len(n) => {
            out.push(5);
            wire::put_u64(out, *n);
        }
        Response::Snapshot { seq, solution } => {
            out.push(6);
            wire::put_u64(out, *seq);
            wire::put_u32s(out, solution);
        }
        Response::Stats(s) => {
            out.push(7);
            wire::encode_stats_body(s, out);
        }
        Response::Busy { queue_depth } => {
            out.push(8);
            wire::put_u64(out, *queue_depth);
        }
        Response::Subscribed { resume_seq } => {
            out.push(9);
            wire::put_u64(out, *resume_seq);
        }
        Response::Delta { seq, delta } => {
            out.push(10);
            wire::put_u64(out, *seq);
            wire::encode_delta_body(delta, out);
        }
        Response::Checkpoint { seq, solution } => {
            out.push(11);
            wire::put_u64(out, *seq);
            wire::put_u32s(out, solution);
        }
        Response::Pong => out.push(12),
        Response::Error { code, message } => {
            out.push(13);
            wire::put_u16(out, *code);
            wire::put_str(out, message);
        }
        Response::Metrics(m) => {
            out.push(14);
            wire::encode_metrics_body(m, out);
        }
    }
}

/// Decodes one response frame payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    r.take_version("response")?;
    let resp = match r.take_u8("response tag")? {
        1 => Response::Hello {
            version: r.take_u16("hello version")?,
            head_seq: r.take_u64("hello head")?,
        },
        2 => Response::Verdict(wire::take_verdict(&mut r)?),
        3 => {
            // Minimum verdict body is 9 bytes (tag + u64).
            let n = r.take_len(9, "verdicts")?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(wire::take_verdict(&mut r)?);
            }
            Response::Verdicts(vs)
        }
        4 => Response::Bool(r.take_u8("bool")? != 0),
        5 => Response::Len(r.take_u64("len")?),
        6 => Response::Snapshot {
            seq: r.take_u64("snapshot seq")?,
            solution: r.take_u32s("snapshot members")?,
        },
        7 => Response::Stats(Box::new(wire::take_stats(&mut r)?)),
        8 => Response::Busy {
            queue_depth: r.take_u64("busy depth")?,
        },
        9 => Response::Subscribed {
            resume_seq: r.take_u64("subscribed seq")?,
        },
        10 => Response::Delta {
            seq: r.take_u64("delta seq")?,
            delta: wire::take_delta(&mut r)?,
        },
        11 => Response::Checkpoint {
            seq: r.take_u64("checkpoint seq")?,
            solution: r.take_u32s("checkpoint members")?,
        },
        12 => Response::Pong,
        13 => Response::Error {
            code: r.take_u16("error code")?,
            message: r.take_str("error message")?,
        },
        14 => Response::Metrics(Box::new(wire::take_metrics(&mut r)?)),
        tag => {
            return Err(WireError::UnknownTag {
                what: "response",
                tag: tag as u16,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

/// Maps a [`Response`] that is an error/shed reply to the typed
/// [`NetError`] a client surfaces; passes every other response through.
pub fn response_to_result(resp: Response) -> Result<Response, NetError> {
    match resp {
        Response::Busy { queue_depth } => Err(NetError::Busy { queue_depth }),
        Response::Error { code, .. } if code == ERR_SHUTDOWN => Err(NetError::ServerClosed),
        Response::Error { .. } => Err(NetError::Protocol("server reported a protocol error")),
        other => Ok(other),
    }
}
