//! The load generator: simulates many concurrent client connections
//! (readers ≫ writers) against one server and reports latency
//! percentiles, ingest throughput, and delta-stream integrity.
//!
//! Subscribers dominate, so they are cheap: each pool thread owns up
//! to a few thousand non-blocking subscription sockets and sweeps them
//! with [`Subscription::poll_events`], tracking only sequence-number
//! integrity per socket (exactly-once, in-order, nothing lost). A
//! handful of *verifier* subscribers additionally maintain a full
//! [`RemoteMirror`] so the stream's content — not just its numbering —
//! is checked against the server's snapshot at the end. Writers are
//! full request/response clients measuring per-call round-trip times.

use crate::client::{NetClient, RemoteMirror, SubEvent, Subscription};
use crate::error::NetError;
use crate::proto::SubFilter;
use dynamis_graph::Update;
use dynamis_obs::Histogram;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Subscriber sockets per pool thread.
const POOL_SIZE: usize = 2500;
/// Subscribers that maintain a full verifying mirror.
const VERIFIERS: usize = 4;

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:4820"`.
    pub addr: String,
    /// Concurrent subscription connections.
    pub subscribers: usize,
    /// Concurrent writer connections.
    pub writers: usize,
    /// Total updates across all writers.
    pub updates: usize,
    /// Vertex-id range updates draw from (must match the served graph).
    pub vertices: u32,
    /// Updates per `ApplyBatch` request (1 = single-update `Apply`).
    pub batch: usize,
    /// Deterministic stream seed.
    pub seed: u64,
    /// Subscription filter exercised by every odd-indexed subscriber
    /// (even-indexed ones stay unfiltered, so both paths run side by
    /// side). [`SubFilter::All`] leaves every subscriber unfiltered.
    pub filter: SubFilter,
    /// Seed every subscriber from a snapshot cold-start
    /// ([`NetClient::bootstrap`]) instead of replaying from sequence 0.
    pub bootstrap: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:4820".into(),
            subscribers: 1000,
            writers: 2,
            updates: 10_000,
            vertices: 10_000,
            batch: 16,
            seed: 42,
            filter: SubFilter::All,
            bootstrap: false,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Subscription connections that reached the server.
    pub subscribers: usize,
    /// Writer connections.
    pub writers: usize,
    /// Updates sent (applied + rejected, excluding busy retries).
    pub updates: u64,
    /// Updates the engine applied.
    pub applied: u64,
    /// Updates the engine rejected (typed verdicts — expected under a
    /// random stream; rejections are correct answers, not errors).
    pub rejected: u64,
    /// Requests shed with `Busy` (each was retried until accepted).
    pub busy_retries: u64,
    /// Wall-clock seconds of the write phase.
    pub elapsed_s: f64,
    /// Updates per second through the write phase.
    pub throughput: f64,
    /// Median request round-trip, microseconds. Percentiles come from a
    /// lock-free log-bucketed [`Histogram`] shared by every writer
    /// thread (no per-call `Vec` growth, no end-of-run sort); each is a
    /// bucket upper bound, within
    /// [`dynamis_obs::MAX_QUANTILE_ERROR`] of the exact rank value.
    pub p50_us: u64,
    /// 95th-percentile round-trip.
    pub p95_us: u64,
    /// 99th-percentile round-trip.
    pub p99_us: u64,
    /// Worst observed round-trip.
    pub max_us: u64,
    /// Delta events delivered across every subscriber.
    pub sub_events: u64,
    /// Checkpoint fallbacks delivered.
    pub sub_checkpoints: u64,
    /// Sequence-number gaps observed (must be 0).
    pub gaps: u64,
    /// Deltas subscribers never received before the drain deadline
    /// (must be 0).
    pub lost_deltas: u64,
    /// Subscriber reconnect-and-resume cycles (dropped by the server
    /// under pressure, resumed from the last applied seq).
    pub reconnects: u64,
    /// Verifying mirrors whose final solution matched the server's
    /// snapshot exactly.
    pub verified_mirrors: usize,
    /// Verifying-mirror apply failures (gaps, contradictions; must be 0).
    pub mirror_errors: u64,
    /// Final broadcast-log head.
    pub final_head: u64,
    /// Subscribers that ran with a non-trivial filter.
    pub filtered_subscribers: usize,
    /// Out-of-filter vertices delivered to filtered subscribers (a
    /// server masking bug; must be 0).
    pub out_of_filter: u64,
    /// Snapshot cold-starts performed (one per subscriber when
    /// [`LoadConfig::bootstrap`] is set).
    pub bootstraps: u64,
    /// Median round-trip of `Busy` sheds, microseconds. Sheds are
    /// accounted in their own histogram — `busy_retries` counts them,
    /// this times them — and never pollute the service-time
    /// percentiles above.
    pub busy_p50_us: u64,
    /// Worst observed `Busy` round-trip.
    pub busy_max_us: u64,
}

impl LoadReport {
    /// Flat JSON object (handwritten — no serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"subscribers\": {}, \"writers\": {}, \"updates\": {}, ",
                "\"applied\": {}, \"rejected\": {}, \"busy_retries\": {}, ",
                "\"elapsed_s\": {:.3}, \"throughput_upd_s\": {:.0}, ",
                "\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, ",
                "\"sub_events\": {}, \"sub_checkpoints\": {}, \"gaps\": {}, ",
                "\"lost_deltas\": {}, \"reconnects\": {}, ",
                "\"verified_mirrors\": {}, \"mirror_errors\": {}, \"final_head\": {}, ",
                "\"filtered_subscribers\": {}, \"out_of_filter\": {}, ",
                "\"bootstraps\": {}, \"busy_p50_us\": {}, \"busy_max_us\": {}}}"
            ),
            self.subscribers,
            self.writers,
            self.updates,
            self.applied,
            self.rejected,
            self.busy_retries,
            self.elapsed_s,
            self.throughput,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.sub_events,
            self.sub_checkpoints,
            self.gaps,
            self.lost_deltas,
            self.reconnects,
            self.verified_mirrors,
            self.mirror_errors,
            self.final_head,
            self.filtered_subscribers,
            self.out_of_filter,
            self.bootstraps,
            self.busy_p50_us,
            self.busy_max_us
        )
    }
}

struct SubState {
    sub: Subscription,
    global_idx: usize,
    filter: SubFilter,
    last_seq: u64,
    events: u64,
    checkpoints: u64,
    gaps: u64,
    out_of_filter: u64,
    closed: bool,
    verifier: Option<RemoteMirror>,
    verifier_errors: u64,
}

#[derive(Default)]
struct PoolSummary {
    events: u64,
    checkpoints: u64,
    gaps: u64,
    lost: u64,
    reconnects: u64,
    mirror_errors: u64,
    out_of_filter: u64,
    bootstraps: u64,
    filtered: usize,
    verifier_solutions: Vec<(u64, Vec<u32>, SubFilter)>,
}

/// The filter one subscriber runs with: odd global indices take the
/// configured filter, even ones stay unfiltered, so a filtered run
/// exercises both hub paths side by side.
fn filter_for(cfg_filter: SubFilter, global_idx: usize) -> SubFilter {
    if cfg_filter.is_all() || global_idx.is_multiple_of(2) {
        SubFilter::All
    } else {
        cfg_filter
    }
}

struct WriterSummary {
    applied: u64,
    rejected: u64,
    busy: u64,
}

/// Runs one load scenario against a listening server. Blocks until
/// writers finished, the ingest queue drained, and every subscriber
/// either caught up to the final head or hit the drain deadline.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, NetError> {
    let final_head = Arc::new(AtomicU64::new(0));

    // --- subscriber pools -------------------------------------------------
    let mut pool_joins = Vec::new();
    let mut global = 0usize;
    while global < cfg.subscribers {
        let count = POOL_SIZE.min(cfg.subscribers - global);
        let addr = cfg.addr.clone();
        let head = Arc::clone(&final_head);
        let start_idx = global;
        let (filter, bootstrap) = (cfg.filter, cfg.bootstrap);
        global += count;
        pool_joins.push(
            thread::Builder::new()
                .name("net-load-subs".into())
                .spawn(move || pool_thread(&addr, start_idx, count, filter, bootstrap, &head))
                .expect("failed to spawn subscriber pool thread"),
        );
    }

    // --- writers ----------------------------------------------------------
    // One lock-free histogram shared by every writer: each call records
    // a few relaxed atomic adds, and the percentiles fall out of the
    // merged snapshot (no Vec growth, no sort). Busy sheds go into
    // their own histogram — a shed's round trip measures the backoff
    // path, not service time, and must never poison the percentiles.
    let latency_us = Arc::new(Histogram::new());
    let busy_us = Arc::new(Histogram::new());
    let per_writer = cfg.updates / cfg.writers.max(1);
    let started = Instant::now();
    let mut writer_joins = Vec::new();
    for w in 0..cfg.writers {
        let addr = cfg.addr.clone();
        let n = if w == 0 {
            cfg.updates - per_writer * (cfg.writers - 1)
        } else {
            per_writer
        };
        let (vertices, batch, seed) = (cfg.vertices, cfg.batch.max(1), cfg.seed + w as u64);
        let lat = Arc::clone(&latency_us);
        let busy = Arc::clone(&busy_us);
        writer_joins.push(
            thread::Builder::new()
                .name("net-load-writer".into())
                .spawn(move || writer_thread(&addr, n, vertices, batch, seed, &lat, &busy))
                .expect("failed to spawn writer thread"),
        );
    }

    let mut report = LoadReport {
        subscribers: cfg.subscribers,
        writers: cfg.writers,
        updates: cfg.updates as u64,
        ..LoadReport::default()
    };
    for j in writer_joins {
        let w = j.join().expect("writer thread panicked")?;
        report.applied += w.applied;
        report.rejected += w.rejected;
        report.busy_retries += w.busy;
    }
    report.elapsed_s = started.elapsed().as_secs_f64();
    report.throughput = (report.applied + report.rejected) as f64 / report.elapsed_s.max(1e-9);
    let lat = latency_us.snapshot();
    report.p50_us = lat.quantile(0.50);
    report.p95_us = lat.quantile(0.95);
    report.p99_us = lat.quantile(0.99);
    report.max_us = lat.max;
    let busy = busy_us.snapshot();
    report.busy_p50_us = busy.quantile(0.50);
    report.busy_max_us = busy.max;

    // --- drain: wait for the queue to empty, then release the pools ------
    let mut probe = NetClient::connect(&cfg.addr)?;
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    let head = loop {
        let s = probe.stats()?;
        if s.queue_depth == 0 {
            break s.head_seq;
        }
        if Instant::now() > drain_deadline {
            break s.head_seq;
        }
        thread::sleep(Duration::from_millis(2));
    };
    report.final_head = head;
    final_head.store(head.max(1), Ordering::SeqCst);

    for j in pool_joins {
        let p = j.join().expect("subscriber pool thread panicked")?;
        report.sub_events += p.events;
        report.sub_checkpoints += p.checkpoints;
        report.gaps += p.gaps;
        report.lost_deltas += p.lost;
        report.reconnects += p.reconnects;
        report.mirror_errors += p.mirror_errors;
        report.out_of_filter += p.out_of_filter;
        report.bootstraps += p.bootstraps;
        report.filtered_subscribers += p.filtered;
        for (seq, solution, filter) in p.verifier_solutions {
            if seq == head {
                let (snap_seq, snap) = probe.snapshot()?;
                // A filtered verifier mirrors only its subset: compare
                // against the snapshot intersected with the filter.
                let expected: Vec<u32> = if filter.is_all() {
                    snap
                } else {
                    snap.into_iter().filter(|&v| filter.accepts(v)).collect()
                };
                if snap_seq == seq && expected == solution {
                    report.verified_mirrors += 1;
                }
            }
        }
    }
    Ok(report)
}

fn pool_thread(
    addr: &str,
    start_idx: usize,
    count: usize,
    cfg_filter: SubFilter,
    bootstrap: bool,
    final_head: &AtomicU64,
) -> Result<PoolSummary, NetError> {
    let mut summary = PoolSummary::default();
    let mut subs = Vec::with_capacity(count);
    for i in 0..count {
        let global_idx = start_idx + i;
        let filter = filter_for(cfg_filter, global_idx);
        let start = connect_sub(addr, 0, filter, bootstrap)?;
        start.sub.set_nonblocking(true)?;
        if !filter.is_all() {
            summary.filtered += 1;
        }
        let mut verifier = (global_idx < VERIFIERS).then(|| RemoteMirror::filtered(filter));
        if let (Some(m), Some((seq, solution))) = (verifier.as_mut(), start.checkpoint.as_ref()) {
            // Seed the verifying mirror exactly the way a production
            // cold-start would: apply the bootstrap checkpoint, then
            // let the stream continue from its sequence number.
            m.apply_event(&SubEvent::Checkpoint {
                seq: *seq,
                solution: solution.clone(),
            })?;
        }
        if start.checkpoint.is_some() {
            summary.bootstraps += 1;
        }
        subs.push(SubState {
            sub: start.sub,
            global_idx,
            filter,
            last_seq: start.seq,
            events: 0,
            checkpoints: 0,
            gaps: 0,
            out_of_filter: 0,
            closed: false,
            verifier,
            verifier_errors: 0,
        });
    }
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let target = final_head.load(Ordering::SeqCst);
        let mut any_progress = false;
        let mut all_done = target != 0;
        for st in subs.iter_mut() {
            if st.closed {
                // Reconnect and resume from the last applied sequence —
                // the production recovery path for a shed subscriber
                // (same filter; no re-bootstrap, resume carries state).
                match connect_sub(addr, st.last_seq, st.filter, false) {
                    Ok(start) => {
                        let _ = start.sub.set_nonblocking(true);
                        st.sub = start.sub;
                        st.closed = false;
                        summary.reconnects += 1;
                    }
                    Err(_) => {
                        all_done = false;
                        continue;
                    }
                }
            }
            let before = st.events;
            let res = st.sub.poll_events(|ev| {
                st.events += 1;
                match &ev {
                    SubEvent::Delta { seq, delta } => {
                        if st.filter.is_all() {
                            // Unfiltered streams are strictly contiguous.
                            if *seq != st.last_seq + 1 {
                                st.gaps += 1;
                            }
                        } else {
                            // Filtered streams legitimately skip the
                            // sequence numbers of suppressed entries,
                            // but must stay strictly increasing and
                            // inside the filter.
                            if *seq <= st.last_seq {
                                st.gaps += 1;
                            }
                            for &v in delta.entered.iter().chain(delta.left.iter()) {
                                if !st.filter.accepts(v) {
                                    st.out_of_filter += 1;
                                }
                            }
                        }
                        st.last_seq = *seq;
                    }
                    SubEvent::Checkpoint { seq, solution } => {
                        st.checkpoints += 1;
                        if !st.filter.is_all() {
                            for &v in solution {
                                if !st.filter.accepts(v) {
                                    st.out_of_filter += 1;
                                }
                            }
                        }
                        st.last_seq = *seq;
                    }
                }
                if let Some(m) = st.verifier.as_mut() {
                    if m.apply_event(&ev).is_err() {
                        st.verifier_errors += 1;
                    }
                }
            });
            match res {
                Ok(true) => {}
                Ok(false) | Err(_) => st.closed = true,
            }
            any_progress |= st.events != before;
            if st.last_seq < target || st.closed {
                all_done = false;
            }
        }
        if target != 0 {
            let dl =
                *drain_deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(60));
            if all_done || Instant::now() > dl {
                break;
            }
        }
        if !any_progress {
            thread::sleep(Duration::from_millis(1));
        }
    }
    let target = final_head.load(Ordering::SeqCst);
    for st in subs {
        summary.events += st.events;
        summary.checkpoints += st.checkpoints;
        summary.gaps += st.gaps;
        summary.lost += target.saturating_sub(st.last_seq);
        summary.mirror_errors += st.verifier_errors;
        summary.out_of_filter += st.out_of_filter;
        if let Some(m) = st.verifier {
            let _ = st.global_idx;
            summary
                .verifier_solutions
                .push((m.seq(), m.solution(), st.filter));
        }
    }
    Ok(summary)
}

/// A freshly established subscription: the stream itself, the sequence
/// number it starts after, and (when cold-started) the bootstrap
/// checkpoint used to seed it.
struct SubStart {
    sub: Subscription,
    seq: u64,
    checkpoint: Option<(u64, Vec<u32>)>,
}

fn connect_sub(
    addr: &str,
    after_seq: u64,
    filter: SubFilter,
    bootstrap: bool,
) -> Result<SubStart, NetError> {
    // The session cap (or a full accept backlog during a 10k-connection
    // ramp) answers Busy: back off briefly and retry a few times.
    let mut tries = 0;
    loop {
        let attempt = (|| {
            let mut client = NetClient::connect(addr)?;
            let (resume, checkpoint) = if bootstrap {
                // Snapshot cold-start: seed from the server's base
                // checkpoint and subscribe right after it — no replay
                // from sequence 0.
                let (seq, members) = client.bootstrap()?;
                (seq, Some((seq, members)))
            } else {
                (after_seq, None)
            };
            let sub = client.subscribe_filtered(resume, filter)?;
            Ok(SubStart {
                sub,
                seq: resume,
                checkpoint,
            })
        })();
        match attempt {
            Ok(start) => return Ok(start),
            Err(e) => {
                tries += 1;
                if tries > 50 {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(2 * tries));
            }
        }
    }
}

/// Routes one writer round-trip sample into the right histogram: a
/// successful call feeds the service-time percentiles, a `Busy` shed
/// feeds the separate shed histogram. Keeping the routing in one
/// place pins the invariant that shed round trips (which measure the
/// backoff path, not service time) can never leak into the latency
/// percentiles the report advertises.
fn record_rtt(shed: bool, us: u64, latency_us: &Histogram, busy_us: &Histogram) {
    if shed {
        busy_us.record(us);
    } else {
        latency_us.record(us);
    }
}

fn writer_thread(
    addr: &str,
    n: usize,
    vertices: u32,
    batch: usize,
    seed: u64,
    latency_us: &Histogram,
    busy_us: &Histogram,
) -> Result<WriterSummary, NetError> {
    let mut client = NetClient::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = WriterSummary {
        applied: 0,
        rejected: 0,
        busy: 0,
    };
    let mut sent = 0usize;
    while sent < n {
        let take = batch.min(n - sent);
        let updates: Vec<Update> = (0..take)
            .map(|_| {
                let a = rng.gen_range(0..vertices);
                let mut b = rng.gen_range(0..vertices - 1);
                if b >= a {
                    b += 1;
                }
                if rng.gen_range(0..2u32) == 0 {
                    Update::InsertEdge(a, b)
                } else {
                    Update::RemoveEdge(a, b)
                }
            })
            .collect();
        sent += take;
        // Retry the same batch through Busy sheds: admission control
        // parks the client, never the writer thread inside the server.
        loop {
            let t = Instant::now();
            match client.apply_batch(updates.clone()) {
                Ok(verdicts) => {
                    record_rtt(false, t.elapsed().as_micros() as u64, latency_us, busy_us);
                    for v in verdicts {
                        match v {
                            Ok(_) => out.applied += 1,
                            Err(_) => out.rejected += 1,
                        }
                    }
                    break;
                }
                Err(NetError::Busy { .. }) => {
                    record_rtt(true, t.elapsed().as_micros() as u64, latency_us, busy_us);
                    out.busy += 1;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the error bound the report's percentiles inherit from the
    /// log-bucketed histogram: against an exact sorted-Vec percentile
    /// (the implementation this replaced), every reported quantile is
    /// an overestimate by at most `MAX_QUANTILE_ERROR` relative.
    #[test]
    fn bucket_quantiles_match_exact_percentiles_within_bound() {
        use dynamis_obs::MAX_QUANTILE_ERROR;
        let mut rng = SmallRng::seed_from_u64(7);
        let hist = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Round-trip-like spread: tens of µs to hundreds of ms.
            let us = 10u64 + rng.gen_range(0..1_000_000u64);
            hist.record(us);
            exact.push(us);
        }
        exact.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((exact.len() as f64 * q).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let got = snap.quantile(q);
            assert!(got >= truth, "q{q}: bucket bound {got} below exact {truth}");
            assert!(
                (got - truth) as f64 <= truth as f64 * MAX_QUANTILE_ERROR,
                "q{q}: {got} overshoots exact {truth} beyond {MAX_QUANTILE_ERROR}"
            );
        }
        assert_eq!(snap.max, *exact.last().unwrap(), "max is tracked exactly");
    }

    /// Pins the Busy-shed accounting split: shed round trips go to
    /// their own histogram and never inflate the latency percentiles,
    /// no matter how slow the backoff path is.
    #[test]
    fn busy_samples_never_enter_latency_histogram() {
        let latency = Histogram::new();
        let busy = Histogram::new();
        for _ in 0..100 {
            record_rtt(false, 100, &latency, &busy);
        }
        for _ in 0..100 {
            // Sheds an order of magnitude slower than real service
            // time — exactly the samples that used to poison p99.
            record_rtt(true, 50_000, &latency, &busy);
        }
        let lat = latency.snapshot();
        let shed = busy.snapshot();
        assert_eq!(lat.count, 100);
        assert_eq!(shed.count, 100);
        assert_eq!(lat.max, 100, "no shed sample reached the latency histogram");
        assert!(lat.quantile(0.99) < 50_000);
        assert!(shed.max >= 50_000);
    }

    #[test]
    fn filter_assignment_alternates_only_when_filtering() {
        let f = SubFilter::Shard { id: 0, of: 2 };
        assert!(filter_for(f, 0).is_all());
        assert_eq!(filter_for(f, 1), f);
        assert!(filter_for(SubFilter::All, 1).is_all());
    }
}
