//! The load generator: simulates many concurrent client connections
//! (readers ≫ writers) against one server and reports latency
//! percentiles, ingest throughput, and delta-stream integrity.
//!
//! Subscribers dominate, so they are cheap: each pool thread owns up
//! to a few thousand non-blocking subscription sockets and sweeps them
//! with [`Subscription::poll_events`], tracking only sequence-number
//! integrity per socket (exactly-once, in-order, nothing lost). A
//! handful of *verifier* subscribers additionally maintain a full
//! [`RemoteMirror`] so the stream's content — not just its numbering —
//! is checked against the server's snapshot at the end. Writers are
//! full request/response clients measuring per-call round-trip times.

use crate::client::{NetClient, RemoteMirror, SubEvent, Subscription};
use crate::error::NetError;
use dynamis_graph::Update;
use dynamis_obs::Histogram;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Subscriber sockets per pool thread.
const POOL_SIZE: usize = 2500;
/// Subscribers that maintain a full verifying mirror.
const VERIFIERS: usize = 4;

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:4820"`.
    pub addr: String,
    /// Concurrent subscription connections.
    pub subscribers: usize,
    /// Concurrent writer connections.
    pub writers: usize,
    /// Total updates across all writers.
    pub updates: usize,
    /// Vertex-id range updates draw from (must match the served graph).
    pub vertices: u32,
    /// Updates per `ApplyBatch` request (1 = single-update `Apply`).
    pub batch: usize,
    /// Deterministic stream seed.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:4820".into(),
            subscribers: 1000,
            writers: 2,
            updates: 10_000,
            vertices: 10_000,
            batch: 16,
            seed: 42,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Subscription connections that reached the server.
    pub subscribers: usize,
    /// Writer connections.
    pub writers: usize,
    /// Updates sent (applied + rejected, excluding busy retries).
    pub updates: u64,
    /// Updates the engine applied.
    pub applied: u64,
    /// Updates the engine rejected (typed verdicts — expected under a
    /// random stream; rejections are correct answers, not errors).
    pub rejected: u64,
    /// Requests shed with `Busy` (each was retried until accepted).
    pub busy_retries: u64,
    /// Wall-clock seconds of the write phase.
    pub elapsed_s: f64,
    /// Updates per second through the write phase.
    pub throughput: f64,
    /// Median request round-trip, microseconds. Percentiles come from a
    /// lock-free log-bucketed [`Histogram`] shared by every writer
    /// thread (no per-call `Vec` growth, no end-of-run sort); each is a
    /// bucket upper bound, within
    /// [`dynamis_obs::MAX_QUANTILE_ERROR`] of the exact rank value.
    pub p50_us: u64,
    /// 95th-percentile round-trip.
    pub p95_us: u64,
    /// 99th-percentile round-trip.
    pub p99_us: u64,
    /// Worst observed round-trip.
    pub max_us: u64,
    /// Delta events delivered across every subscriber.
    pub sub_events: u64,
    /// Checkpoint fallbacks delivered.
    pub sub_checkpoints: u64,
    /// Sequence-number gaps observed (must be 0).
    pub gaps: u64,
    /// Deltas subscribers never received before the drain deadline
    /// (must be 0).
    pub lost_deltas: u64,
    /// Subscriber reconnect-and-resume cycles (dropped by the server
    /// under pressure, resumed from the last applied seq).
    pub reconnects: u64,
    /// Verifying mirrors whose final solution matched the server's
    /// snapshot exactly.
    pub verified_mirrors: usize,
    /// Verifying-mirror apply failures (gaps, contradictions; must be 0).
    pub mirror_errors: u64,
    /// Final broadcast-log head.
    pub final_head: u64,
}

impl LoadReport {
    /// Flat JSON object (handwritten — no serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"subscribers\": {}, \"writers\": {}, \"updates\": {}, ",
                "\"applied\": {}, \"rejected\": {}, \"busy_retries\": {}, ",
                "\"elapsed_s\": {:.3}, \"throughput_upd_s\": {:.0}, ",
                "\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, ",
                "\"sub_events\": {}, \"sub_checkpoints\": {}, \"gaps\": {}, ",
                "\"lost_deltas\": {}, \"reconnects\": {}, ",
                "\"verified_mirrors\": {}, \"mirror_errors\": {}, \"final_head\": {}}}"
            ),
            self.subscribers,
            self.writers,
            self.updates,
            self.applied,
            self.rejected,
            self.busy_retries,
            self.elapsed_s,
            self.throughput,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.sub_events,
            self.sub_checkpoints,
            self.gaps,
            self.lost_deltas,
            self.reconnects,
            self.verified_mirrors,
            self.mirror_errors,
            self.final_head
        )
    }
}

struct SubState {
    sub: Subscription,
    global_idx: usize,
    last_seq: u64,
    events: u64,
    checkpoints: u64,
    gaps: u64,
    closed: bool,
    verifier: Option<RemoteMirror>,
    verifier_errors: u64,
}

#[derive(Default)]
struct PoolSummary {
    events: u64,
    checkpoints: u64,
    gaps: u64,
    lost: u64,
    reconnects: u64,
    mirror_errors: u64,
    verifier_solutions: Vec<(u64, Vec<u32>)>,
}

struct WriterSummary {
    applied: u64,
    rejected: u64,
    busy: u64,
}

/// Runs one load scenario against a listening server. Blocks until
/// writers finished, the ingest queue drained, and every subscriber
/// either caught up to the final head or hit the drain deadline.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, NetError> {
    let final_head = Arc::new(AtomicU64::new(0));

    // --- subscriber pools -------------------------------------------------
    let mut pool_joins = Vec::new();
    let mut global = 0usize;
    while global < cfg.subscribers {
        let count = POOL_SIZE.min(cfg.subscribers - global);
        let addr = cfg.addr.clone();
        let head = Arc::clone(&final_head);
        let start_idx = global;
        global += count;
        pool_joins.push(
            thread::Builder::new()
                .name("net-load-subs".into())
                .spawn(move || pool_thread(&addr, start_idx, count, &head))
                .expect("failed to spawn subscriber pool thread"),
        );
    }

    // --- writers ----------------------------------------------------------
    // One lock-free histogram shared by every writer: each call records
    // a few relaxed atomic adds, and the percentiles fall out of the
    // merged snapshot (no Vec growth, no sort).
    let latency_us = Arc::new(Histogram::new());
    let per_writer = cfg.updates / cfg.writers.max(1);
    let started = Instant::now();
    let mut writer_joins = Vec::new();
    for w in 0..cfg.writers {
        let addr = cfg.addr.clone();
        let n = if w == 0 {
            cfg.updates - per_writer * (cfg.writers - 1)
        } else {
            per_writer
        };
        let (vertices, batch, seed) = (cfg.vertices, cfg.batch.max(1), cfg.seed + w as u64);
        let lat = Arc::clone(&latency_us);
        writer_joins.push(
            thread::Builder::new()
                .name("net-load-writer".into())
                .spawn(move || writer_thread(&addr, n, vertices, batch, seed, &lat))
                .expect("failed to spawn writer thread"),
        );
    }

    let mut report = LoadReport {
        subscribers: cfg.subscribers,
        writers: cfg.writers,
        updates: cfg.updates as u64,
        ..LoadReport::default()
    };
    for j in writer_joins {
        let w = j.join().expect("writer thread panicked")?;
        report.applied += w.applied;
        report.rejected += w.rejected;
        report.busy_retries += w.busy;
    }
    report.elapsed_s = started.elapsed().as_secs_f64();
    report.throughput = (report.applied + report.rejected) as f64 / report.elapsed_s.max(1e-9);
    let lat = latency_us.snapshot();
    report.p50_us = lat.quantile(0.50);
    report.p95_us = lat.quantile(0.95);
    report.p99_us = lat.quantile(0.99);
    report.max_us = lat.max;

    // --- drain: wait for the queue to empty, then release the pools ------
    let mut probe = NetClient::connect(&cfg.addr)?;
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    let head = loop {
        let s = probe.stats()?;
        if s.queue_depth == 0 {
            break s.head_seq;
        }
        if Instant::now() > drain_deadline {
            break s.head_seq;
        }
        thread::sleep(Duration::from_millis(2));
    };
    report.final_head = head;
    final_head.store(head.max(1), Ordering::SeqCst);

    for j in pool_joins {
        let p = j.join().expect("subscriber pool thread panicked")?;
        report.sub_events += p.events;
        report.sub_checkpoints += p.checkpoints;
        report.gaps += p.gaps;
        report.lost_deltas += p.lost;
        report.reconnects += p.reconnects;
        report.mirror_errors += p.mirror_errors;
        for (seq, solution) in p.verifier_solutions {
            if seq == head {
                let (snap_seq, snap) = probe.snapshot()?;
                if snap_seq == seq && snap == solution {
                    report.verified_mirrors += 1;
                }
            }
        }
    }
    Ok(report)
}

fn pool_thread(
    addr: &str,
    start_idx: usize,
    count: usize,
    final_head: &AtomicU64,
) -> Result<PoolSummary, NetError> {
    let mut subs = Vec::with_capacity(count);
    for i in 0..count {
        let global_idx = start_idx + i;
        let sub = connect_sub(addr, 0)?;
        sub.set_nonblocking(true)?;
        subs.push(SubState {
            sub,
            global_idx,
            last_seq: 0,
            events: 0,
            checkpoints: 0,
            gaps: 0,
            closed: false,
            verifier: (global_idx < VERIFIERS).then(RemoteMirror::new),
            verifier_errors: 0,
        });
    }
    let mut summary = PoolSummary::default();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let target = final_head.load(Ordering::SeqCst);
        let mut any_progress = false;
        let mut all_done = target != 0;
        for st in subs.iter_mut() {
            if st.closed {
                // Reconnect and resume from the last applied sequence —
                // the production recovery path for a shed subscriber.
                match connect_sub(addr, st.last_seq) {
                    Ok(sub) => {
                        let _ = sub.set_nonblocking(true);
                        st.sub = sub;
                        st.closed = false;
                        summary.reconnects += 1;
                    }
                    Err(_) => {
                        all_done = false;
                        continue;
                    }
                }
            }
            let before = st.events;
            let res = st.sub.poll_events(|ev| {
                st.events += 1;
                match &ev {
                    SubEvent::Delta { seq, .. } => {
                        if *seq != st.last_seq + 1 {
                            st.gaps += 1;
                        }
                        st.last_seq = *seq;
                    }
                    SubEvent::Checkpoint { seq, .. } => {
                        st.checkpoints += 1;
                        st.last_seq = *seq;
                    }
                }
                if let Some(m) = st.verifier.as_mut() {
                    if m.apply_event(&ev).is_err() {
                        st.verifier_errors += 1;
                    }
                }
            });
            match res {
                Ok(true) => {}
                Ok(false) | Err(_) => st.closed = true,
            }
            any_progress |= st.events != before;
            if st.last_seq < target || st.closed {
                all_done = false;
            }
        }
        if target != 0 {
            let dl =
                *drain_deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(60));
            if all_done || Instant::now() > dl {
                break;
            }
        }
        if !any_progress {
            thread::sleep(Duration::from_millis(1));
        }
    }
    let target = final_head.load(Ordering::SeqCst);
    for st in subs {
        summary.events += st.events;
        summary.checkpoints += st.checkpoints;
        summary.gaps += st.gaps;
        summary.lost += target.saturating_sub(st.last_seq);
        summary.mirror_errors += st.verifier_errors;
        if let Some(m) = st.verifier {
            let _ = st.global_idx;
            summary.verifier_solutions.push((m.seq(), m.solution()));
        }
    }
    Ok(summary)
}

fn connect_sub(addr: &str, after_seq: u64) -> Result<Subscription, NetError> {
    // The session cap (or a full accept backlog during a 10k-connection
    // ramp) answers Busy: back off briefly and retry a few times.
    let mut tries = 0;
    loop {
        match NetClient::connect(addr).and_then(|c| c.subscribe(after_seq)) {
            Ok(sub) => return Ok(sub),
            Err(e) => {
                tries += 1;
                if tries > 50 {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(2 * tries));
            }
        }
    }
}

fn writer_thread(
    addr: &str,
    n: usize,
    vertices: u32,
    batch: usize,
    seed: u64,
    latency_us: &Histogram,
) -> Result<WriterSummary, NetError> {
    let mut client = NetClient::connect(addr)?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = WriterSummary {
        applied: 0,
        rejected: 0,
        busy: 0,
    };
    let mut sent = 0usize;
    while sent < n {
        let take = batch.min(n - sent);
        let updates: Vec<Update> = (0..take)
            .map(|_| {
                let a = rng.gen_range(0..vertices);
                let mut b = rng.gen_range(0..vertices - 1);
                if b >= a {
                    b += 1;
                }
                if rng.gen_range(0..2u32) == 0 {
                    Update::InsertEdge(a, b)
                } else {
                    Update::RemoveEdge(a, b)
                }
            })
            .collect();
        sent += take;
        // Retry the same batch through Busy sheds: admission control
        // parks the client, never the writer thread inside the server.
        loop {
            let t = Instant::now();
            match client.apply_batch(updates.clone()) {
                Ok(verdicts) => {
                    latency_us.record(t.elapsed().as_micros() as u64);
                    for v in verdicts {
                        match v {
                            Ok(_) => out.applied += 1,
                            Err(_) => out.rejected += 1,
                        }
                    }
                    break;
                }
                Err(NetError::Busy { .. }) => {
                    out.busy += 1;
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the error bound the report's percentiles inherit from the
    /// log-bucketed histogram: against an exact sorted-Vec percentile
    /// (the implementation this replaced), every reported quantile is
    /// an overestimate by at most `MAX_QUANTILE_ERROR` relative.
    #[test]
    fn bucket_quantiles_match_exact_percentiles_within_bound() {
        use dynamis_obs::MAX_QUANTILE_ERROR;
        let mut rng = SmallRng::seed_from_u64(7);
        let hist = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Round-trip-like spread: tens of µs to hundreds of ms.
            let us = 10u64 + rng.gen_range(0..1_000_000u64);
            hist.record(us);
            exact.push(us);
        }
        exact.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((exact.len() as f64 * q).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let got = snap.quantile(q);
            assert!(got >= truth, "q{q}: bucket bound {got} below exact {truth}");
            assert!(
                (got - truth) as f64 <= truth as f64 * MAX_QUANTILE_ERROR,
                "q{q}: {got} overshoots exact {truth} beyond {MAX_QUANTILE_ERROR}"
            );
        }
        assert_eq!(snap.max, *exact.last().unwrap(), "max is tracked exactly");
    }
}
