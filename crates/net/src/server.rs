//! The server: a TCP acceptor, thread-per-connection sessions, and a
//! pool of fan-out hub workers that own every subscription socket.
//!
//! ```text
//!            accept            Hello / requests
//!  clients ─────────► acceptor ───► session threads ──► IngestHandle / ReaderHandle
//!                                        │ Subscribe (round-robin)
//!                                        ▼ (socket handoff)
//!                              hub workers 0..N ──► SharedLog::tail_after
//!                                        │  encode once (shared frame
//!                                        ▼  cache), write per worker
//!                                  subscription sockets (10k+)
//! ```
//!
//! Sessions are cheap threads because they are short-lived or mostly
//! parked in a read: queries answer from a forked [`ReaderHandle`]
//! (one atomic load when caught up), updates go through the non-
//! blocking ingest path behind the [`Admission`] gate. A `Subscribe`
//! converts the connection: the session replies, hands the socket to
//! one of the hub workers (round-robin), and exits — so ten thousand
//! subscribers cost ten thousand sockets owned by [`NetConfig::hubs`]
//! threads, not ten thousand threads.
//!
//! Each hub worker tails the log independently, but every entry is
//! encoded **once** process-wide: workers pull complete frames from a
//! shared seq-keyed cache, so adding workers multiplies write
//! bandwidth (blocking writes overlap across workers) without
//! multiplying encode work. Caught-up unfiltered subscribers ride a
//! per-round blob of cached frames; stragglers, filtered subscribers,
//! and post-checkpoint rebuilds take a per-subscriber
//! [`SharedLog::tail_after`] path until they reach the worker's
//! position. A subscriber that cannot absorb writes within the write
//! timeout is dropped — it reconnects and resumes from its last
//! applied sequence number, losing nothing. A subscriber that *can*
//! absorb writes but keeps falling further behind (a slow crawl inside
//! the log window) is force-reseeded with a fresh checkpoint after
//! [`NetConfig::straggler_rounds`] consecutive saturated rounds rather
//! than being allowed to lag forever.
//!
//! Filtered subscriptions ([`SubFilter`]) are masked hub-side: deltas
//! are intersected with the filter, entries that mask to empty are
//! suppressed (coalesced into one empty position-marker delta per
//! round so the subscriber's sequence number still tracks the head),
//! and checkpoint reseeds are masked the same way.

use crate::admission::Admission;
use crate::frame::{read_frame, write_frame, FrameBuffer};
use crate::proto::{
    decode_request, encode_response, Request, Response, SubFilter, ERR_MALFORMED, ERR_ORDER,
    ERR_SHUTDOWN, ERR_VERSION, PROTO_VERSION,
};
use dynamis_core::SolutionDelta;
use dynamis_obs::{Gauge, Stage};
use dynamis_serve::{
    IngestHandle, LogTail, ReaderHandle, SeqEntry, ServeError, ServiceHandle, ServiceStats,
    SharedLog,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`NetServer::bind`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Maximum concurrently live sessions; connections beyond the cap
    /// are refused at the door with a `Busy` reply (counted as shed).
    pub max_sessions: usize,
    /// Ingest-queue depth at which admission control starts shedding
    /// update requests (see [`Admission`]).
    pub shed_high: u64,
    /// Queue depth at which shedding stops.
    pub shed_low: u64,
    /// Maximum log entries a straggling subscriber is advanced per hub
    /// round (caught-up subscribers ride the shared blob instead).
    pub sub_batch: usize,
    /// Hub idle poll and session read-timeout granularity.
    pub poll: Duration,
    /// Per-subscriber write timeout; a subscriber that cannot absorb a
    /// round's deltas within it is dropped (it reconnects and resumes).
    pub write_timeout: Duration,
    /// How long shutdown keeps flushing subscribers toward the final
    /// log head before giving up on the stragglers.
    pub flush_timeout: Duration,
    /// Fan-out hub workers. Subscribers are assigned round-robin at
    /// `Subscribe`; each worker tails the log independently, sharing
    /// the encode-once frame cache, so blocking subscriber writes
    /// overlap across workers. 0 is treated as 1.
    pub hubs: usize,
    /// Consecutive saturated straggler rounds (a full `sub_batch`
    /// advance that still leaves the subscriber more than `sub_batch`
    /// behind the head) before the hub force-reseeds the subscriber
    /// with a fresh checkpoint instead of letting it crawl forever.
    /// 0 disables forced reseeds.
    pub straggler_rounds: u32,
    /// Maximum solution members per [`Response::BootstrapChunk`] frame
    /// when streaming a snapshot cold-start. 0 is treated as 1.
    pub bootstrap_chunk: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_sessions: 65536,
            // Defaults track ServeConfig::default's 1024-update queue.
            shed_high: 768,
            shed_low: 256,
            sub_batch: 256,
            poll: Duration::from_millis(1),
            write_timeout: Duration::from_secs(2),
            flush_timeout: Duration::from_secs(30),
            hubs: 1,
            straggler_rounds: 16,
            // 64Ki members = 256 KiB payloads, far under the frame cap.
            bootstrap_chunk: 1 << 16,
        }
    }
}

/// What the server fronts: the ingest path, the broadcast log, and a
/// reader prototype — the same three capabilities an in-process caller
/// holds. Build one with [`NetBackend::single`] for a [`MisService`],
/// or assemble the parts yourself for a sharded service (its merged
/// log and ingest pump have identical shapes).
///
/// [`MisService`]: dynamis_serve::MisService
pub struct NetBackend {
    /// Submit-only handle every session shares.
    pub ingest: IngestHandle,
    /// The sequenced broadcast log subscriptions stream from.
    pub log: Arc<SharedLog>,
    /// Reader prototype; sessions fork a private one on first query.
    pub reader: ReaderHandle,
}

impl NetBackend {
    /// Fronts a single-writer service.
    pub fn single(service: &ServiceHandle) -> NetBackend {
        NetBackend {
            ingest: service.ingest(),
            log: service.log(),
            reader: service.reader(),
        }
    }
}

/// Net-layer counters, overlaid onto [`ServiceStats`] snapshots.
#[derive(Debug, Default)]
struct NetCounters {
    connections: AtomicU64,
    sessions: AtomicI64,
    subscriptions: AtomicI64,
}

/// Cached telemetry handles for the net layer: one latency stage per
/// request type (gated timers — see [`dynamis_obs::Stage`]), the hub's
/// encode/write stages, and the fan-out lag gauges the hub workers
/// refresh each progressing round.
struct NetObs {
    req_hello: Stage,
    req_apply: Stage,
    req_apply_batch: Stage,
    req_contains: Stage,
    req_len: Stage,
    req_snapshot: Stage,
    req_stats: Stage,
    req_subscribe: Stage,
    req_ping: Stage,
    req_metrics: Stage,
    req_bootstrap: Stage,
    hub_encode: Stage,
    sub_write: Stage,
    lag_max: Arc<Gauge>,
    lag_mean: Arc<Gauge>,
}

impl NetObs {
    fn new() -> NetObs {
        let g = dynamis_obs::global();
        NetObs {
            req_hello: Stage::global("net_req_hello_ns"),
            req_apply: Stage::global("net_req_apply_ns"),
            req_apply_batch: Stage::global("net_req_apply_batch_ns"),
            req_contains: Stage::global("net_req_contains_ns"),
            req_len: Stage::global("net_req_len_ns"),
            req_snapshot: Stage::global("net_req_snapshot_ns"),
            req_stats: Stage::global("net_req_stats_ns"),
            req_subscribe: Stage::global("net_req_subscribe_ns"),
            req_ping: Stage::global("net_req_ping_ns"),
            req_metrics: Stage::global("net_req_metrics_ns"),
            req_bootstrap: Stage::global("net_req_bootstrap_ns"),
            hub_encode: Stage::global("net_hub_encode_ns"),
            sub_write: Stage::global("net_sub_write_ns"),
            lag_max: g.gauge("net_sub_lag_max"),
            lag_mean: g.gauge("net_sub_lag_mean"),
        }
    }

    /// The latency stage charged for one request type.
    fn stage_for(&self, req: &Request) -> &Stage {
        match req {
            Request::Hello { .. } => &self.req_hello,
            Request::Apply(_) => &self.req_apply,
            Request::ApplyBatch(_) => &self.req_apply_batch,
            Request::Contains(_) => &self.req_contains,
            Request::Len => &self.req_len,
            Request::Snapshot => &self.req_snapshot,
            Request::Stats => &self.req_stats,
            Request::Subscribe { .. } => &self.req_subscribe,
            Request::Ping => &self.req_ping,
            Request::Metrics => &self.req_metrics,
            Request::Bootstrap => &self.req_bootstrap,
        }
    }
}

/// Encode-once frame cache shared by every hub worker: complete frames
/// (length prefix + payload) keyed by entry sequence number, so N
/// workers tailing the same log encode each delta exactly once.
/// Bounded to the log's retained window — anything older would come
/// back as a checkpoint anyway, never as an entry.
struct FrameCache {
    frames: Mutex<BTreeMap<u64, Arc<Vec<u8>>>>,
    cap: usize,
}

impl FrameCache {
    fn new(cap: usize) -> FrameCache {
        FrameCache {
            frames: Mutex::new(BTreeMap::new()),
            cap: cap.max(1),
        }
    }

    /// The complete wire frame for `e`, encoding it on first request.
    /// Encoding happens outside the lock; a racing worker's insert
    /// wins and the loser adopts it (the bytes are identical).
    fn frame_for(&self, e: &SeqEntry) -> Arc<Vec<u8>> {
        if let Some(f) = self.frames.lock().unwrap().get(&e.seq) {
            return Arc::clone(f);
        }
        let mut payload = Vec::new();
        encode_response(
            &Response::Delta {
                seq: e.seq,
                delta: e.delta.clone(),
            },
            &mut payload,
        );
        let mut frame = Vec::with_capacity(payload.len() + 4);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut g = self.frames.lock().unwrap();
        let f = Arc::clone(g.entry(e.seq).or_insert_with(|| Arc::new(frame)));
        while g.len() > self.cap {
            g.pop_first();
        }
        f
    }
}

/// Per-hub-worker fan-out lag aggregate, folded into the global
/// `net_sub_lag_max` / `net_sub_lag_mean` gauges after each refresh.
#[derive(Default)]
struct HubLag {
    max: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

struct Shared {
    ingest: IngestHandle,
    log: Arc<SharedLog>,
    reader: Mutex<ReaderHandle>,
    admission: Admission,
    counters: NetCounters,
    obs: NetObs,
    cfg: NetConfig,
    stop: AtomicBool,
    frames: FrameCache,
    hub_lag: Vec<HubLag>,
    /// Round-robin cursor for assigning new subscribers to hub workers.
    rr: AtomicUsize,
    /// Process-wide subscriber id source: ids name the per-subscriber
    /// lag gauges, so they must be unique *across* hub workers.
    next_sub_id: AtomicU64,
}

impl Shared {
    /// Service stats with the net layer's counters filled in.
    fn stats(&self) -> ServiceStats {
        let mut s = self.ingest.stats();
        s.connections = self.counters.connections.load(Ordering::Relaxed);
        s.sessions = self.counters.sessions.load(Ordering::Relaxed).max(0) as u64;
        s.subscriptions = self.counters.subscriptions.load(Ordering::Relaxed).max(0) as u64;
        s.shed = self.admission.shed_count();
        s.max_sub_lag = self.obs.lag_max.get();
        s.mean_sub_lag = self.obs.lag_mean.get();
        s
    }

    /// Folds every worker's lag slot into the global gauges.
    fn refresh_lag_gauges(&self) {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut count = 0u64;
        for slot in &self.hub_lag {
            max = max.max(slot.max.load(Ordering::Relaxed));
            sum += slot.sum.load(Ordering::Relaxed);
            count += slot.count.load(Ordering::Relaxed);
        }
        self.obs.lag_max.set(max);
        self.obs.lag_mean.set(sum.checked_div(count).unwrap_or(0));
    }
}

/// A subscription socket owned by a hub worker, positioned at `seq`.
struct Sub {
    stream: TcpStream,
    seq: u64,
    /// Vertex subset this subscriber streams; deltas are masked against
    /// it before writing.
    filter: SubFilter,
    /// Consecutive saturated straggler rounds (see
    /// [`NetConfig::straggler_rounds`]).
    behind: u32,
    /// Per-subscriber lag gauge, installed by the hub (None until
    /// handoff completes); unregisters itself when the sub drops.
    lag: Option<SubLag>,
}

/// A registered `net_sub_lag_<id>` gauge. Registered at hub install,
/// unregistered on drop, so the registry tracks *live* subscribers —
/// every drop path (write failure, timeout drop, shutdown flush)
/// releases the gauge through this destructor.
struct SubLag {
    name: String,
    gauge: Arc<Gauge>,
}

impl SubLag {
    fn new(id: u64) -> SubLag {
        let name = format!("net_sub_lag_{id}");
        let gauge = dynamis_obs::global().gauge(&name);
        SubLag { name, gauge }
    }
}

impl Drop for SubLag {
    fn drop(&mut self) {
        dynamis_obs::global().unregister(&self.name);
    }
}

/// Entry point: binds a listener and spawns the acceptor + hub workers.
pub struct NetServer;

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `backend`. Returns immediately; use
    /// [`NetServerHandle::local_addr`] to learn the bound port and
    /// [`NetServerHandle::shutdown`] to stop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: NetBackend,
        cfg: NetConfig,
    ) -> io::Result<NetServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let hubs_n = cfg.hubs.max(1);
        let window = backend.log.window();
        let shared = Arc::new(Shared {
            ingest: backend.ingest,
            log: backend.log,
            reader: Mutex::new(backend.reader),
            admission: Admission::new(cfg.shed_high, cfg.shed_low),
            counters: NetCounters::default(),
            obs: NetObs::new(),
            cfg,
            stop: AtomicBool::new(false),
            frames: FrameCache::new(window),
            hub_lag: (0..hubs_n).map(|_| HubLag::default()).collect(),
            rr: AtomicUsize::new(0),
            next_sub_id: AtomicU64::new(0),
        });
        let mut sub_txs = Vec::with_capacity(hubs_n);
        let mut hubs = Vec::with_capacity(hubs_n);
        for i in 0..hubs_n {
            let (tx, rx) = mpsc::channel::<Sub>();
            sub_txs.push(tx);
            let hub_shared = Arc::clone(&shared);
            hubs.push(
                thread::Builder::new()
                    .name(format!("dynamis-net-hub-{i}"))
                    .spawn(move || hub_loop(&hub_shared, rx, i))
                    .expect("failed to spawn net hub thread"),
            );
        }
        let acc_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("dynamis-net-accept".into())
            .spawn(move || accept_loop(listener, &acc_shared, sub_txs))
            .expect("failed to spawn net acceptor thread");
        Ok(NetServerHandle {
            local_addr,
            shared,
            acceptor,
            hubs,
        })
    }
}

/// The running server. Dropping it without [`NetServerHandle::shutdown`]
/// leaks the serving threads (they keep serving until the process
/// exits) — always shut down explicitly.
pub struct NetServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    hubs: Vec<JoinHandle<()>>,
}

impl NetServerHandle {
    /// The bound address (real port even when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Service stats with the net layer's counters filled in — the
    /// same snapshot a remote `Stats` request receives.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stops accepting, drains every session, flushes subscribers to
    /// the current log head (bounded by the flush timeout), and joins
    /// all serving threads. The backing service is untouched — shut it
    /// down separately, *after* this returns (its `shutdown` blocks
    /// until every ingest clone dies, and sessions hold clones until
    /// they are joined here).
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
        for hub in self.hubs {
            let _ = hub.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, sub_txs: Vec<mpsc::Sender<Sub>>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        sessions.retain(|j| !j.is_finished());
        if sessions.len() >= shared.cfg.max_sessions {
            // Admission control at the door: refuse the whole session
            // with a typed Busy so the client backs off and retries.
            shared.admission.count_shed();
            refuse_busy(stream, shared.ingest.queue_depth());
            continue;
        }
        let s = Arc::clone(shared);
        let txs = sub_txs.clone();
        match thread::Builder::new()
            .name("dynamis-net-session".into())
            .spawn(move || session_loop(stream, &s, txs))
        {
            Ok(j) => sessions.push(j),
            // The stream died with the unspawned closure; all we can
            // do is count the shed (the client sees a reset).
            Err(_) => shared.admission.count_shed(),
        }
    }
    drop(sub_txs);
    for j in sessions {
        let _ = j.join();
    }
}

fn refuse_busy(mut stream: TcpStream, queue_depth: u64) {
    // Consume the client's Hello before replying: closing with the
    // Hello still unread would turn the refusal into a connection
    // reset, discarding the queued Busy frame before the client reads
    // it. The read is bounded so a silent client can't pin the
    // acceptor.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut hello = Vec::new();
    let _ = read_frame(&mut stream, &mut hello);
    let mut payload = Vec::new();
    encode_response(&Response::Busy { queue_depth }, &mut payload);
    let _ = write_frame(&mut stream, &payload);
}

/// Sends one response as a single write (prefix + payload coalesced).
fn send(stream: &mut TcpStream, resp: &Response, payload: &mut Vec<u8>, out: &mut Vec<u8>) -> bool {
    encode_response(resp, payload);
    out.clear();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    stream.write_all(out).is_ok()
}

fn session_loop(mut stream: TcpStream, shared: &Arc<Shared>, sub_txs: Vec<mpsc::Sender<Sub>>) {
    shared.counters.sessions.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll.max(Duration::from_millis(20))));
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut payload = Vec::new();
    let mut out = Vec::new();
    let mut reader: Option<ReaderHandle> = None;
    let mut hello_done = false;
    'session: loop {
        // Pop every complete request already buffered, then read more.
        loop {
            let frame = match fb.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(e) => {
                    // Corrupt length prefix: refuse and close.
                    send(
                        &mut stream,
                        &Response::Error {
                            code: ERR_MALFORMED,
                            message: e.to_string(),
                        },
                        &mut payload,
                        &mut out,
                    );
                    break 'session;
                }
            };
            let req = match decode_request(&frame) {
                Ok(req) => req,
                Err(e) => {
                    send(
                        &mut stream,
                        &Response::Error {
                            code: ERR_MALFORMED,
                            message: e.to_string(),
                        },
                        &mut payload,
                        &mut out,
                    );
                    break 'session;
                }
            };
            let req_stage = shared.obs.stage_for(&req);
            let t_req = req_stage.begin();
            if !hello_done {
                match req {
                    Request::Hello { version } if version <= PROTO_VERSION => {
                        hello_done = true;
                        let ok = send(
                            &mut stream,
                            &Response::Hello {
                                version: PROTO_VERSION,
                                head_seq: shared.log.head(),
                            },
                            &mut payload,
                            &mut out,
                        );
                        if !ok {
                            break 'session;
                        }
                        req_stage.end(t_req);
                        continue;
                    }
                    Request::Hello { .. } => {
                        send(
                            &mut stream,
                            &Response::Error {
                                code: ERR_VERSION,
                                message: format!("server speaks protocol {PROTO_VERSION}"),
                            },
                            &mut payload,
                            &mut out,
                        );
                        break 'session;
                    }
                    _ => {
                        send(
                            &mut stream,
                            &Response::Error {
                                code: ERR_ORDER,
                                message: "first message must be Hello".into(),
                            },
                            &mut payload,
                            &mut out,
                        );
                        break 'session;
                    }
                }
            }
            let resp = match req {
                Request::Hello { .. } => Response::Hello {
                    version: PROTO_VERSION,
                    head_seq: shared.log.head(),
                },
                Request::Apply(u) => {
                    if !shared.admission.admit(shared.ingest.queue_depth()) {
                        Response::Busy {
                            queue_depth: shared.ingest.queue_depth(),
                        }
                    } else {
                        match shared.ingest.try_submit(u) {
                            Ok(ticket) => match ticket.wait() {
                                Ok(seq) => Response::Verdict(Ok(seq)),
                                Err(ServeError::Rejected(e)) => Response::Verdict(Err(e)),
                                Err(_) => shutdown_error(),
                            },
                            Err(ServeError::QueueFull) => {
                                // Ground truth: the queue is full even if
                                // the sampled depth said otherwise.
                                shared.admission.on_queue_full();
                                Response::Busy {
                                    queue_depth: shared.ingest.queue_depth(),
                                }
                            }
                            Err(_) => shutdown_error(),
                        }
                    }
                }
                Request::ApplyBatch(us) => {
                    if !shared.admission.admit(shared.ingest.queue_depth()) {
                        Response::Busy {
                            queue_depth: shared.ingest.queue_depth(),
                        }
                    } else {
                        match shared.ingest.submit_batch(us) {
                            Ok(ticket) => match ticket.wait() {
                                Ok(verdicts) => Response::Verdicts(verdicts),
                                Err(_) => shutdown_error(),
                            },
                            Err(_) => shutdown_error(),
                        }
                    }
                }
                Request::Contains(v) => {
                    let r = reader.get_or_insert_with(|| shared.reader.lock().unwrap().fork());
                    Response::Bool(r.contains(v))
                }
                Request::Len => {
                    let r = reader.get_or_insert_with(|| shared.reader.lock().unwrap().fork());
                    Response::Len(r.len() as u64)
                }
                Request::Snapshot => {
                    let r = reader.get_or_insert_with(|| shared.reader.lock().unwrap().fork());
                    let solution = r.snapshot();
                    Response::Snapshot {
                        seq: r.seq(),
                        solution,
                    }
                }
                Request::Stats => Response::Stats(Box::new(shared.stats())),
                Request::Subscribe { after_seq, filter } => {
                    let ok = send(
                        &mut stream,
                        &Response::Subscribed {
                            resume_seq: after_seq,
                        },
                        &mut payload,
                        &mut out,
                    );
                    if ok {
                        // Convert the connection: a hub worker (chosen
                        // round-robin) owns the socket from here; this
                        // session thread ends.
                        let _ = stream.set_read_timeout(None);
                        shared
                            .counters
                            .subscriptions
                            .fetch_add(1, Ordering::Relaxed);
                        let hub = shared.rr.fetch_add(1, Ordering::Relaxed) % sub_txs.len();
                        if sub_txs[hub]
                            .send(Sub {
                                stream,
                                seq: after_seq,
                                filter,
                                behind: 0,
                                lag: None,
                            })
                            .is_err()
                        {
                            shared
                                .counters
                                .subscriptions
                                .fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    shared.counters.sessions.fetch_sub(1, Ordering::Relaxed);
                    shared.obs.req_subscribe.end(t_req);
                    return;
                }
                Request::Ping => Response::Pong,
                Request::Metrics => Response::Metrics(Box::new(dynamis_obs::global().snapshot())),
                Request::Bootstrap => {
                    // Multi-frame answer: meta, then length-capped
                    // membership chunks; afterwards the session stays
                    // in request/response (the client subscribes next,
                    // usually with `after_seq = meta.seq`).
                    if !stream_bootstrap(shared, &mut stream, &mut payload, &mut out) {
                        break 'session;
                    }
                    shared.obs.req_bootstrap.end(t_req);
                    continue;
                }
            };
            let is_shutdown = matches!(resp, Response::Error { code, .. } if code == ERR_SHUTDOWN);
            let sent = send(&mut stream, &resp, &mut payload, &mut out);
            req_stage.end(t_req);
            if !sent || is_shutdown {
                break 'session;
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // clean close
            Ok(n) => fb.extend(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    shared.counters.sessions.fetch_sub(1, Ordering::Relaxed);
}

/// Streams the log's base checkpoint (the newest durable checkpoint
/// after a recovered restart, in broadcast numbering) as one
/// `BootstrapMeta` plus length-capped `BootstrapChunk` frames. The CRC
/// is the durable layer's checksum over the members' little-endian
/// bytes, verified by the client after reassembly. Returns false if a
/// write failed (the session closes).
fn stream_bootstrap(
    shared: &Shared,
    stream: &mut TcpStream,
    payload: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> bool {
    let (seq, members) = shared.log.base_checkpoint();
    let mut bytes = Vec::with_capacity(members.len() * 4);
    for &v in &members {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let crc = dynamis_durable::format::crc32(&bytes);
    let chunk = shared.cfg.bootstrap_chunk.max(1);
    let chunks = members.len().div_ceil(chunk) as u32;
    let meta = Response::BootstrapMeta {
        seq,
        members: members.len() as u64,
        chunks,
        crc,
    };
    if !send(stream, &meta, payload, out) {
        return false;
    }
    for (index, slice) in members.chunks(chunk).enumerate() {
        let frame = Response::BootstrapChunk {
            index: index as u32,
            members: slice.to_vec(),
        };
        if !send(stream, &frame, payload, out) {
            return false;
        }
    }
    true
}

fn shutdown_error() -> Response {
    Response::Error {
        code: ERR_SHUTDOWN,
        message: "service stopped".into(),
    }
}

/// Keeps only the vertices `filter` accepts. The trivial filter
/// passes the vector through untouched.
fn mask_solution(mut solution: Vec<u32>, filter: SubFilter) -> Vec<u32> {
    if !filter.is_all() {
        solution.retain(|&v| filter.accepts(v));
    }
    solution
}

/// Intersects one delta with a subscriber's filter (stats carry over
/// unchanged — they describe the engine's work, not the subset).
fn mask_delta(delta: &SolutionDelta, filter: SubFilter) -> SolutionDelta {
    SolutionDelta {
        entered: delta
            .entered
            .iter()
            .copied()
            .filter(|&v| filter.accepts(v))
            .collect(),
        left: delta
            .left
            .iter()
            .copied()
            .filter(|&v| filter.accepts(v))
            .collect(),
        stats: delta.stats,
    }
}

/// Installs a freshly handed-off subscriber: socket options plus its
/// per-subscriber lag gauge (`net_sub_lag_<id>`, unique across hub
/// workers).
fn install_sub(shared: &Shared, mut sub: Sub) -> Sub {
    let _ = sub.stream.set_nodelay(true);
    let _ = sub.stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let id = shared.next_sub_id.fetch_add(1, Ordering::Relaxed) + 1;
    sub.lag = Some(SubLag::new(id));
    sub
}

/// One fan-out hub worker: owns the subscription sockets assigned to
/// it, tails the log independently of its siblings, and shares the
/// encode-once frame cache with them.
fn hub_loop(shared: &Arc<Shared>, sub_rx: mpsc::Receiver<Sub>, hub_idx: usize) {
    let mut subs: Vec<Sub> = Vec::new();
    let mut hub_seq = 0u64; // newest seq assembled into the shared blob
    let mut blob = Vec::new(); // this round's frames (cache-encoded)
    let mut payload = Vec::new();
    let mut scratch = Vec::new();
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        // Install newly handed-off subscribers.
        let mut roster_changed = false;
        loop {
            match sub_rx.try_recv() {
                Ok(sub) => {
                    subs.push(install_sub(shared, sub));
                    roster_changed = true;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        // Assemble this round's new entries into one write blob; the
        // frames come from the shared cache, so across N workers each
        // entry is encoded once.
        let blob_start = hub_seq;
        blob.clear();
        let t_encode = shared.obs.hub_encode.begin();
        match shared.log.tail_after(hub_seq, 4096) {
            LogTail::UpToDate => {}
            LogTail::Entries(entries) => {
                for e in &entries {
                    let frame = shared.frames.frame_for(e);
                    blob.extend_from_slice(&frame);
                    hub_seq = e.seq;
                }
            }
            LogTail::Checkpoint { seq, .. } => {
                // The hub itself fell behind the window (a stall while
                // the writer blasted past it). Jump forward; every
                // straggling subscriber gets its own checkpoint below.
                dynamis_obs::event(
                    "checkpoint_reseed",
                    format!("hub {hub_idx} jumped from seq {hub_seq} to {seq}"),
                );
                hub_seq = seq;
            }
        }
        shared.obs.hub_encode.end(t_encode);
        let mut progressed = !blob.is_empty();
        let before = subs.len();
        subs.retain_mut(|sub| {
            if sub.seq == blob_start && !blob.is_empty() && sub.filter.is_all() {
                // Caught-up fast path: one pre-encoded write. Filtered
                // subscribers never ride it — their bytes are masked
                // per-subscriber below.
                let t = shared.obs.sub_write.begin();
                let wrote = sub.stream.write_all(&blob);
                shared.obs.sub_write.end(t);
                if wrote.is_err() {
                    shared
                        .counters
                        .subscriptions
                        .fetch_sub(1, Ordering::Relaxed);
                    return false;
                }
                sub.seq = hub_seq;
                sub.behind = 0;
                return true;
            }
            if sub.seq == hub_seq {
                sub.behind = 0;
                return true;
            }
            // Straggler path: advance this subscriber individually.
            match advance_sub(shared, sub, &mut payload, &mut scratch) {
                Ok(advanced) => {
                    progressed |= advanced;
                    true
                }
                Err(()) => {
                    shared
                        .counters
                        .subscriptions
                        .fetch_sub(1, Ordering::Relaxed);
                    false
                }
            }
        });
        roster_changed |= subs.len() != before;
        // Refresh the fan-out lag gauges on every round that moved data
        // or changed the roster (an idle round changes neither).
        if progressed || roster_changed {
            let head = shared.log.head();
            let mut max = 0u64;
            let mut sum = 0u64;
            for sub in &subs {
                let lag = head.saturating_sub(sub.seq);
                if let Some(l) = &sub.lag {
                    l.gauge.set(lag);
                }
                max = max.max(lag);
                sum += lag;
            }
            let slot = &shared.hub_lag[hub_idx];
            slot.max.store(max, Ordering::Relaxed);
            slot.sum.store(sum, Ordering::Relaxed);
            slot.count.store(subs.len() as u64, Ordering::Relaxed);
            shared.refresh_lag_gauges();
        }
        if stopping {
            // Final flush: push every subscriber to the final head,
            // bounded by the flush timeout, then close everything.
            let head = shared.log.head();
            let deadline = Instant::now() + shared.cfg.flush_timeout;
            while subs.iter().any(|s| s.seq < head) && Instant::now() < deadline {
                subs.retain_mut(|sub| {
                    if sub.seq >= head {
                        return true;
                    }
                    match advance_sub(shared, sub, &mut payload, &mut scratch) {
                        Ok(_) => true,
                        Err(()) => {
                            shared
                                .counters
                                .subscriptions
                                .fetch_sub(1, Ordering::Relaxed);
                            false
                        }
                    }
                });
            }
            let n = subs.len() as i64;
            shared
                .counters
                .subscriptions
                .fetch_sub(n, Ordering::Relaxed);
            let slot = &shared.hub_lag[hub_idx];
            slot.max.store(0, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            slot.count.store(0, Ordering::Relaxed);
            shared.refresh_lag_gauges();
            return;
        }
        if !progressed {
            // Idle: park on the handoff channel for up to one poll
            // tick (new log entries are detected next round).
            match sub_rx.recv_timeout(shared.cfg.poll) {
                Ok(sub) => {
                    subs.push(install_sub(shared, sub));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Acceptor gone: keep serving existing subscribers
                    // until stop is set.
                    if subs.is_empty() && shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    thread::sleep(shared.cfg.poll);
                }
            }
        }
    }
}

/// Advances one straggling subscriber by up to `sub_batch` entries (or
/// one checkpoint). `Ok(true)` if anything was sent; `Err(())` drops
/// the subscriber (write failure — it can reconnect and resume).
///
/// Two slow-consumer regimes end in a checkpoint here: falling *out of
/// the log window* (the log itself answers with `Checkpoint`), and the
/// subtler bounded crawl — a subscriber absorbing exactly `sub_batch`
/// entries per round while the writer outruns it, which stays inside
/// the window forever without ever catching up. The `behind` counter
/// detects the crawl: after [`NetConfig::straggler_rounds`] consecutive
/// saturated rounds that leave the subscriber more than `sub_batch`
/// behind the head, the hub folds the log into a fresh checkpoint
/// ([`SharedLog::snapshot_at_head`]) and reseeds the subscriber at the
/// head in one write instead of letting it crawl forever.
fn advance_sub(
    shared: &Shared,
    sub: &mut Sub,
    payload: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<bool, ()> {
    let k = shared.cfg.straggler_rounds;
    if k > 0 && sub.behind >= k {
        let (seq, solution) = shared.log.snapshot_at_head();
        sub.behind = 0;
        if seq > sub.seq {
            dynamis_obs::event(
                "straggler_reseed",
                format!(
                    "subscriber force-reseeded from seq {} to {seq} after {k} saturated rounds",
                    sub.seq
                ),
            );
            let solution = mask_solution(solution, sub.filter);
            write_one(
                shared,
                sub,
                &Response::Checkpoint { seq, solution },
                payload,
                out,
            )?;
            sub.seq = seq;
            return Ok(true);
        }
    }
    match shared.log.tail_after(sub.seq, shared.cfg.sub_batch) {
        LogTail::UpToDate => {
            sub.behind = 0;
            Ok(false)
        }
        LogTail::Entries(entries) => {
            let saturated = entries.len() >= shared.cfg.sub_batch;
            out.clear();
            let mut last = sub.seq;
            if sub.filter.is_all() {
                for e in &entries {
                    let frame = shared.frames.frame_for(e);
                    out.extend_from_slice(&frame);
                    last = e.seq;
                }
            } else {
                // Filtered path: mask each delta, suppress entries that
                // mask to empty, and coalesce the suppressed tail into
                // one empty position-marker delta so the subscriber's
                // sequence number still tracks the head.
                let mut wrote_through = sub.seq;
                for e in &entries {
                    last = e.seq;
                    let masked = mask_delta(&e.delta, sub.filter);
                    if masked.is_empty() {
                        continue;
                    }
                    encode_response(
                        &Response::Delta {
                            seq: e.seq,
                            delta: masked,
                        },
                        payload,
                    );
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(payload);
                    wrote_through = e.seq;
                }
                if wrote_through < last {
                    encode_response(
                        &Response::Delta {
                            seq: last,
                            delta: SolutionDelta::default(),
                        },
                        payload,
                    );
                    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(payload);
                }
            }
            let t = shared.obs.sub_write.begin();
            let wrote = sub.stream.write_all(out);
            shared.obs.sub_write.end(t);
            wrote.map_err(|_| ())?;
            sub.seq = last;
            // Crawl detection: a saturated advance that still leaves
            // the subscriber more than a batch behind means the writer
            // is outrunning it.
            if saturated && shared.log.head().saturating_sub(sub.seq) > shared.cfg.sub_batch as u64
            {
                sub.behind = sub.behind.saturating_add(1);
            } else {
                sub.behind = 0;
            }
            Ok(true)
        }
        LogTail::Checkpoint { seq, solution } => {
            dynamis_obs::event(
                "checkpoint_reseed",
                format!("subscriber reseeded from seq {} to {seq}", sub.seq),
            );
            let solution = mask_solution(solution, sub.filter);
            write_one(
                shared,
                sub,
                &Response::Checkpoint { seq, solution },
                payload,
                out,
            )?;
            sub.seq = seq;
            sub.behind = 0;
            Ok(true)
        }
    }
}

/// Encodes and writes one response frame to a subscriber, charging the
/// write stage. `Err(())` means the write failed and the subscriber
/// should be dropped.
fn write_one(
    shared: &Shared,
    sub: &mut Sub,
    resp: &Response,
    payload: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<(), ()> {
    encode_response(resp, payload);
    out.clear();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let t = shared.obs.sub_write.begin();
    let wrote = sub.stream.write_all(out);
    shared.obs.sub_write.end(t);
    wrote.map_err(|_| ())
}
