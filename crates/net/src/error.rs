//! The network layer's error type.

use dynamis_core::{EngineError, MirrorError};
use dynamis_serve::wire::WireError;
use std::fmt;
use std::io;

/// Why a network operation failed — on either side of the socket.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The peer sent bytes the codec refused (typed; see [`WireError`]).
    Wire(WireError),
    /// The peer violated the protocol: a well-formed message that is
    /// nonsensical at this point (e.g. a query answered with the wrong
    /// response kind).
    Protocol(&'static str),
    /// Version negotiation failed: the server speaks `server`, this
    /// client speaks `client`, and they share no common version.
    Handshake {
        /// Protocol version the server offered.
        server: u16,
        /// Protocol version this client requested.
        client: u16,
    },
    /// Admission control shed the request — the service's ingest queue
    /// is saturated. Retry later; `queue_depth` is the depth the server
    /// observed when it shed.
    Busy {
        /// Ingest-queue depth at shed time.
        queue_depth: u64,
    },
    /// The engine rejected the update (the ticketed verdict's typed
    /// error, carried over the wire).
    Rejected(EngineError),
    /// The connection ended cleanly while a reply was still owed, or
    /// the server refused the session at the door.
    ServerClosed,
    /// A subscription stream skipped a sequence number: the client
    /// expected `expected` next but received `got`. A correct server
    /// never does this; a resumed stream that starts too far forward
    /// does. Re-subscribe from the last applied sequence.
    Gap {
        /// The sequence number the mirror needed next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// A delta arrived in order but contradicted the mirror's state —
    /// the stream is corrupt; re-subscribe from a checkpoint.
    Mirror(MirrorError),
    /// The server's negotiated protocol version predates a feature this
    /// client asked for (e.g. filtered subscriptions or snapshot
    /// bootstrap against a version-1 server). Refused locally, before
    /// any bytes hit the wire.
    Unsupported {
        /// The feature that needs a newer server.
        feature: &'static str,
        /// Protocol version the server negotiated.
        server: u16,
        /// Minimum protocol version the feature needs.
        needed: u16,
    },
    /// A filtered subscription delivered a vertex outside its filter —
    /// a server bug; the stream cannot be trusted.
    OutOfFilter {
        /// The out-of-filter vertex that arrived.
        vertex: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Wire(e) => write!(f, "wire decode error: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Handshake { server, client } => write!(
                f,
                "handshake failed: server speaks protocol {server}, client {client}"
            ),
            NetError::Busy { queue_depth } => write!(
                f,
                "shed by admission control (ingest queue depth {queue_depth}); retry later"
            ),
            NetError::Rejected(e) => write!(f, "engine rejected the update: {e}"),
            NetError::ServerClosed => write!(f, "server closed the connection"),
            NetError::Gap { expected, got } => write!(
                f,
                "subscription stream gap: expected seq {expected}, got {got}"
            ),
            NetError::Mirror(e) => write!(f, "subscription stream corrupt: {e}"),
            NetError::Unsupported {
                feature,
                server,
                needed,
            } => write!(
                f,
                "{feature} needs protocol {needed}, but the server speaks {server}"
            ),
            NetError::OutOfFilter { vertex } => write!(
                f,
                "filtered subscription delivered out-of-filter vertex {vertex}"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            NetError::Rejected(e) => Some(e),
            NetError::Mirror(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<MirrorError> for NetError {
    fn from(e: MirrorError) -> Self {
        NetError::Mirror(e)
    }
}
