//! Network front end for the dynamic-MIS serving stack: a
//! length-prefixed binary wire protocol over TCP exposing the serve
//! layer's single-writer service (and the sharded engine behind it) to
//! remote clients.
//!
//! The crate is std-only and splits into:
//!
//! - [`frame`] — the transport unit: `u32` little-endian length prefix
//!   plus payload, with a reassembly buffer for streaming reads.
//! - [`proto`] — the typed [`proto::Request`]/[`proto::Response`]
//!   vocabulary, negotiated once per session ([`proto::PROTO_VERSION`]
//!   in `Hello`) and composed from `dynamis-serve`'s value codec so
//!   wire bytes match the serve layer's definitions exactly. Protocol
//!   2 adds filtered subscriptions ([`proto::SubFilter`]) and the
//!   snapshot cold-start handshake.
//! - [`server`] — thread-per-connection sessions over one
//!   [`server::NetBackend`], plus a pool of hub workers
//!   ([`server::NetConfig::hubs`], round-robin subscriber assignment)
//!   that own the subscription sockets and fan sequenced deltas out of
//!   the shared broadcast log — each entry encoded once process-wide
//!   through a shared frame cache, written once per subscriber.
//! - [`client`] — the blocking [`client::NetClient`], the
//!   [`client::Subscription`] consumer, and the strict
//!   [`client::RemoteMirror`] replica that makes "every delta, exactly
//!   once, in order" checkable (per vertex subset, for filtered
//!   streams). `NetClient::bootstrap` seeds a fresh mirror from the
//!   server's base checkpoint instead of replaying from sequence 0.
//! - [`admission`] — hysteretic shed/accept gate extending the serve
//!   layer's backpressure to clients with typed `Busy` replies.
//! - [`load`] — the load generator behind `dynamis net-load`:
//!   thousands of polled subscriber sockets per thread, writer
//!   round-trip percentiles, and stream-integrity accounting.
//!
//! A remote mirror fed by a subscription replays exactly what an
//! in-process `SolutionMirror` attached to the same service sees:
//! the same sequenced deltas, in the same order, with checkpoint
//! fallback when a resume point has aged out of the log window.

pub mod admission;
pub mod client;
pub mod error;
pub mod frame;
pub mod load;
pub mod proto;
pub mod server;

pub use admission::Admission;
pub use client::{NetClient, RemoteMirror, SubEvent, Subscription};
pub use error::NetError;
pub use load::{LoadConfig, LoadReport};
pub use proto::{Request, Response, SubFilter, PROTO_VERSION};
pub use server::{NetBackend, NetConfig, NetServer, NetServerHandle};
