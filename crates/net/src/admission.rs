//! Admission control: extends the serve layer's backpressure to
//! network clients with hysteresis, so a saturated ingest queue sheds
//! requests with a typed `Busy` reply instead of stalling the writer
//! (or the session thread) behind the blocking gate.
//!
//! The state machine mirrors the queue gate's batched-release shape:
//! shedding starts when the observed queue depth reaches `high` (or the
//! non-blocking submit path reports the queue full — the ground truth),
//! and stops only once the depth has drained to `low`. The wide gap
//! keeps the service from flapping between accept and shed at the
//! boundary, exactly like the writer's whole-round releases keep
//! feeders from waking once per slot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Hysteretic shed/accept gate shared by every session thread.
#[derive(Debug)]
pub struct Admission {
    shedding: AtomicBool,
    shed_count: AtomicU64,
    high: u64,
    low: u64,
}

impl Admission {
    /// A gate that starts shedding at queue depth `high` and re-admits
    /// at `low` (clamped to `< high`).
    pub fn new(high: u64, low: u64) -> Self {
        let high = high.max(1);
        Admission {
            shedding: AtomicBool::new(false),
            shed_count: AtomicU64::new(0),
            high,
            low: low.min(high - 1),
        }
    }

    /// Decides one update request given the current ingest-queue depth.
    /// Returns `true` to admit; `false` means reply `Busy` (and the
    /// shed is already counted).
    pub fn admit(&self, queue_depth: u64) -> bool {
        if self.shedding.load(Ordering::Relaxed) {
            if queue_depth <= self.low {
                self.shedding.store(false, Ordering::Relaxed);
            } else {
                self.shed_count.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        } else if queue_depth >= self.high {
            self.shedding.store(true, Ordering::Relaxed);
            self.shed_count.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Records that a non-blocking submit hit a full queue *after*
    /// admission — the ground truth overriding the sampled depth. Flips
    /// the gate into shedding so subsequent requests are refused at the
    /// door until the queue drains to `low`.
    pub fn on_queue_full(&self) {
        self.shedding.store(true, Ordering::Relaxed);
        self.shed_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shed that bypassed [`Admission::admit`] (e.g. a whole
    /// session refused at the accept door).
    pub fn count_shed(&self) {
        self.shed_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the gate is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding.load(Ordering::Relaxed)
    }

    /// Requests shed so far (monotone).
    pub fn shed_count(&self) -> u64 {
        self.shed_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_does_not_flap_at_the_boundary() {
        let a = Admission::new(100, 25);
        assert!(a.admit(0));
        assert!(a.admit(99), "below high: admit");
        assert!(!a.admit(100), "at high: shed starts");
        assert!(a.is_shedding());
        // Depth dips just below high — still shedding (hysteresis).
        assert!(!a.admit(99));
        assert!(!a.admit(26));
        // Only at low does the gate reopen.
        assert!(a.admit(25));
        assert!(!a.is_shedding());
        assert_eq!(a.shed_count(), 3);
    }

    #[test]
    fn queue_full_is_ground_truth() {
        let a = Admission::new(1000, 10);
        assert!(a.admit(5));
        a.on_queue_full();
        assert!(a.is_shedding());
        assert!(
            !a.admit(500),
            "sampled depth below high, but queue said full"
        );
        assert!(a.admit(10));
    }
}
