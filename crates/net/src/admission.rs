//! Admission control: extends the serve layer's backpressure to
//! network clients with hysteresis, so a saturated ingest queue sheds
//! requests with a typed `Busy` reply instead of stalling the writer
//! (or the session thread) behind the blocking gate.
//!
//! The state machine mirrors the queue gate's batched-release shape:
//! shedding starts when the observed queue depth reaches `high` (or the
//! non-blocking submit path reports the queue full — the ground truth),
//! and stops only once the depth has drained to `low`. The wide gap
//! keeps the service from flapping between accept and shed at the
//! boundary, exactly like the writer's whole-round releases keep
//! feeders from waking once per slot.

use dynamis_obs::Counter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hysteretic shed/accept gate shared by every session thread.
#[derive(Debug)]
pub struct Admission {
    shedding: AtomicBool,
    shed_count: AtomicU64,
    high: u64,
    low: u64,
    /// Shed-state flips (both directions), exported as
    /// `net_shed_transitions_total`; each flip also records a
    /// `shed_on` / `shed_off` event.
    transitions: Arc<Counter>,
}

impl Admission {
    /// A gate that starts shedding at queue depth `high` and re-admits
    /// at `low` (clamped to `< high`).
    pub fn new(high: u64, low: u64) -> Self {
        let high = high.max(1);
        Admission {
            shedding: AtomicBool::new(false),
            shed_count: AtomicU64::new(0),
            high,
            low: low.min(high - 1),
            transitions: dynamis_obs::global().counter("net_shed_transitions_total"),
        }
    }

    /// Records a shed-state flip: the transitions counter plus a ring
    /// event. `swap` at the call sites guarantees one record per actual
    /// transition even under racing sessions.
    fn on_transition(&self, shedding: bool, queue_depth: u64) {
        self.transitions.inc();
        let kind = if shedding { "shed_on" } else { "shed_off" };
        dynamis_obs::event(kind, format!("queue depth {queue_depth}"));
    }

    /// Decides one update request given the current ingest-queue depth.
    /// Returns `true` to admit; `false` means reply `Busy` (and the
    /// shed is already counted).
    pub fn admit(&self, queue_depth: u64) -> bool {
        if self.shedding.load(Ordering::Relaxed) {
            if queue_depth <= self.low {
                if self.shedding.swap(false, Ordering::Relaxed) {
                    self.on_transition(false, queue_depth);
                }
            } else {
                self.shed_count.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        } else if queue_depth >= self.high {
            if !self.shedding.swap(true, Ordering::Relaxed) {
                self.on_transition(true, queue_depth);
            }
            self.shed_count.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Records that a non-blocking submit hit a full queue *after*
    /// admission — the ground truth overriding the sampled depth. Flips
    /// the gate into shedding so subsequent requests are refused at the
    /// door until the queue drains to `low`.
    pub fn on_queue_full(&self) {
        if !self.shedding.swap(true, Ordering::Relaxed) {
            self.on_transition(true, self.high);
        }
        self.shed_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shed that bypassed [`Admission::admit`] (e.g. a whole
    /// session refused at the accept door).
    pub fn count_shed(&self) {
        self.shed_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the gate is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding.load(Ordering::Relaxed)
    }

    /// Requests shed so far (monotone).
    pub fn shed_count(&self) -> u64 {
        self.shed_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_does_not_flap_at_the_boundary() {
        let a = Admission::new(100, 25);
        assert!(a.admit(0));
        assert!(a.admit(99), "below high: admit");
        assert!(!a.admit(100), "at high: shed starts");
        assert!(a.is_shedding());
        // Depth dips just below high — still shedding (hysteresis).
        assert!(!a.admit(99));
        assert!(!a.admit(26));
        // Only at low does the gate reopen.
        assert!(a.admit(25));
        assert!(!a.is_shedding());
        assert_eq!(a.shed_count(), 3);
    }

    #[test]
    fn queue_full_is_ground_truth() {
        let a = Admission::new(1000, 10);
        assert!(a.admit(5));
        a.on_queue_full();
        assert!(a.is_shedding());
        assert!(
            !a.admit(500),
            "sampled depth below high, but queue said full"
        );
        assert!(a.admit(10));
    }
}
