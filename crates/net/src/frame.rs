//! Length-prefixed framing: every protocol message travels as one
//! frame — a little-endian `u32` byte count followed by that many
//! payload bytes. Framing is below the codec: a frame's payload is one
//! encoded [`crate::proto::Request`] or [`crate::proto::Response`].
//!
//! Two readers are provided: the blocking [`read_frame`] for
//! thread-per-connection sessions, and the incremental [`FrameBuffer`]
//! for poll-loop consumers (the load generator sweeps tens of
//! thousands of non-blocking subscriber sockets through one of these
//! per socket).

use crate::error::NetError;
use dynamis_serve::wire::WireError;
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload. Far above any legal message (a
/// checkpoint of ~4M vertices); a bigger length prefix is corrupt by
/// definition and is rejected before any allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one frame: length prefix plus payload, no flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame into `buf` (cleared and reused — no steady-state
/// allocation). Returns `Ok(false)` on a clean end-of-stream *at a
/// frame boundary*; end-of-stream mid-frame is a truncation error, not
/// a clean close.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, NetError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(NetError::Wire(WireError::Truncated("frame length")));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Wire(WireError::TooLong {
            what: "frame",
            len: len as u64,
        }));
    }
    buf.clear();
    buf.resize(len, 0);
    let mut filled = 0;
    while filled < len {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(NetError::Wire(WireError::Truncated("frame payload"))),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Incremental frame reassembly for non-blocking sockets: feed it
/// whatever bytes arrived, pop complete frames as they form. Partial
/// prefixes and partial payloads are carried across feeds.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted once it outgrows the live
    /// region, so the buffer never creeps).
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame's payload, if one has fully
    /// arrived. `Ok(None)` means "feed me more bytes"; an oversized
    /// length prefix is a typed error (the connection is corrupt).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let live = &self.buf[self.pos..];
        if live.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(NetError::Wire(WireError::TooLong {
                what: "frame",
                len: len as u64,
            }));
        }
        if live.len() < 4 + len {
            return Ok(None);
        }
        let payload = live[4..4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet popped as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buffer_reassembles_across_arbitrary_splits() {
        let mut wire = Vec::new();
        for payload in [&b"alpha"[..], &b""[..], &b"bb"[..]] {
            write_frame(&mut wire, payload).unwrap();
        }
        // Feed one byte at a time: three frames must pop, in order.
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(p) = fb.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![b"alpha".to_vec(), b"".to_vec(), b"bb".to_vec()]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(NetError::Wire(WireError::TooLong { .. }))
        ));
    }

    #[test]
    fn blocking_reader_distinguishes_clean_close_from_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"xyz").unwrap();
        let mut buf = Vec::new();
        // Complete frame then clean EOF.
        let mut cur = io::Cursor::new(wire.clone());
        assert!(read_frame(&mut cur, &mut buf).unwrap());
        assert_eq!(buf, b"xyz");
        assert!(!read_frame(&mut cur, &mut buf).unwrap());
        // Truncated mid-payload: typed error.
        let mut cur = io::Cursor::new(wire[..5].to_vec());
        assert!(matches!(
            read_frame(&mut cur, &mut buf),
            Err(NetError::Wire(WireError::Truncated(_)))
        ));
    }
}
