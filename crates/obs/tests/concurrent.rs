//! Concurrent-recording property tests: a histogram hammered from many
//! threads loses no updates, and per-thread (shard-cell style)
//! snapshots merge to exactly the union — saturating, never wrapping.
//! Same class of bug the PR7 wire fuzzer existed to catch, now pinned
//! at the metrics layer.

use dynamis_obs::{bucket_index, Histogram, HistogramSnapshot, MetricsRegistry, NUM_BUCKETS};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;
use std::thread;

/// Latency-shaped draw: uniform exponent, so every octave gets traffic.
fn draw(rng: &mut SmallRng) -> u64 {
    let shift = rng.gen_range(0..40u32);
    rng.gen_range(0..u64::MAX) >> (63 - shift.min(63))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads record into ONE shared histogram; the final snapshot
    /// holds every value, bucket-exactly.
    #[test]
    fn shared_histogram_loses_no_updates(seed in 0u64..u64::MAX, threads in 2usize..6) {
        let hist = Arc::new(Histogram::new());
        let per_thread = 2_000usize;
        let mut expected = vec![0u64; NUM_BUCKETS];
        let mut expected_sum = 0u128;
        let mut handles = Vec::new();
        for t in 0..threads {
            let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
            let values: Vec<u64> = (0..per_thread).map(|_| draw(&mut rng)).collect();
            for &v in &values {
                expected[bucket_index(v)] += 1;
                expected_sum += v as u128;
            }
            let hist = Arc::clone(&hist);
            handles.push(thread::spawn(move || {
                for v in values {
                    hist.record(v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count as usize, threads * per_thread);
        prop_assert_eq!(snap.sum as u128, expected_sum & u64::MAX as u128, "sum wraps mod 2^64 only");
        for (i, c) in snap.buckets {
            prop_assert_eq!(expected[i as usize], c, "bucket {}", i);
        }
        prop_assert_eq!(
            expected.iter().filter(|&&c| c > 0).count(),
            hist.snapshot().buckets.len()
        );
    }

    /// N threads record into their OWN histograms (the shard-cell
    /// shape); merging the per-thread snapshots equals one histogram
    /// that saw every value.
    #[test]
    fn merged_cell_snapshots_equal_the_union(seed in 0u64..u64::MAX, threads in 2usize..6) {
        let per_thread = 1_000usize;
        let union = Histogram::new();
        let mut merged = HistogramSnapshot::default();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 17);
                let values: Vec<u64> = (0..per_thread).map(|_| draw(&mut rng)).collect();
                thread::spawn(move || {
                    let cell = Histogram::new();
                    for v in &values {
                        cell.record(*v);
                    }
                    (cell.snapshot(), values)
                })
            })
            .collect();
        for h in handles {
            let (snap, values) = h.join().unwrap();
            merged.merge(&snap);
            for v in values {
                union.record(v);
            }
        }
        prop_assert_eq!(merged, union.snapshot());
    }

    /// Concurrent registration from many threads yields one shared
    /// metric per name, and the registry snapshot sees every increment.
    #[test]
    fn registry_is_race_free(seed in 0u64..u64::MAX, threads in 2usize..6) {
        let registry = Arc::new(MetricsRegistry::new());
        let rounds = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let registry = Arc::clone(&registry);
                let mut rng = SmallRng::seed_from_u64(seed ^ t as u64);
                thread::spawn(move || {
                    let c = registry.counter("shared_total");
                    let h = registry.histogram("shared_ns");
                    for _ in 0..rounds {
                        c.inc();
                        h.record(rng.gen_range(0..1_000_000u64));
                        registry.events().record("tick", String::new());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        let total = threads as u64 * rounds;
        prop_assert_eq!(snap.counter("shared_total"), Some(total));
        prop_assert_eq!(snap.histogram("shared_ns").unwrap().count, total);
        prop_assert_eq!(
            snap.events.len() as u64 + snap.events_dropped,
            total,
            "every event is retained or counted as dropped, never lost silently"
        );
    }
}
