//! Unified telemetry for the dynamis serving stack.
//!
//! Every layer of the system — the core engine, the single-writer
//! service, the sharded coordinator, and the network front end —
//! records into one process-global [`MetricsRegistry`] of cheap atomic
//! [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s. Recording
//! is lock-free (one or a few relaxed atomic RMWs) and never blocks the
//! hot path; registration (name → handle) takes a mutex but happens
//! once per call site, after which the caller caches the `Arc` handle.
//!
//! Three design rules keep the overhead inside the ≤ 3% hot-path
//! budget measured by `crates/bench/src/bin/obs.rs`:
//!
//! 1. **Counters and gauges are always on.** They cost one relaxed
//!    atomic op — the same price the pre-existing ad-hoc stats structs
//!    already paid.
//! 2. **Stage timers are gated.** Reading the clock costs ~20–25 ns,
//!    which is real money against a ~1 µs update. [`Stage::begin`]
//!    returns `None` unless [`set_enabled`] turned timing on, and every
//!    record path accepts that `None` for free. Per-update core timers
//!    additionally sample (see [`Sampler`]) so even the enabled cost
//!    stays amortized.
//! 3. **Rare events never block.** The bounded [`EventLog`] ring uses
//!    `try_lock` and counts drops instead of waiting.
//!
//! A [`MetricsSnapshot`] is the single export schema: the in-process
//! API ([`MetricsRegistry::snapshot`]), the `Response::Metrics` wire
//! call, and the Prometheus/JSON text encoders all produce exactly the
//! same structure, pinned by round-trip tests.

mod events;
mod hist;
mod registry;
mod snapshot;
mod stage;

pub use events::{Event, EventLog};
pub use hist::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot};
pub use hist::{MAX_QUANTILE_ERROR, NUM_BUCKETS};
pub use registry::MetricsRegistry;
pub use snapshot::{JsonError, MetricsSnapshot, SNAPSHOT_VERSION};
pub use stage::{Sampler, Stage};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns stage timing on or off process-wide. Counters, gauges, and
/// events are unaffected — they are always on. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stage timing is enabled (one relaxed load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reads the clock iff stage timing is enabled. The `None` arm is the
/// zero-cost-when-disabled gate: every consumer treats `None` as "do
/// not record".
#[inline]
pub fn mark() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry every layer records into.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Records a rare structured event into the global registry's ring
/// (never blocks; drops are counted).
pub fn event(kind: &str, detail: String) {
    global().events().record(kind, detail);
}
