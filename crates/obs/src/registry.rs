//! The name → metric registry. Registration is the cold path (mutexed
//! map, get-or-create); the returned `Arc` handles are what call sites
//! cache and record through lock-free.

use crate::events::EventLog;
use crate::hist::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricsSnapshot, SNAPSHOT_VERSION};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Default event-ring capacity for a registry.
const EVENT_CAP: usize = 256;

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics plus one event ring. Most code uses the
/// process-global one via [`crate::global`]; benches and tests may hold
/// private registries.
#[derive(Debug)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    events: EventLog,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
            events: EventLog::new(EVENT_CAP),
        }
    }

    /// Get-or-create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.entry(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Get-or-create the gauge `name` (panics on a kind mismatch, as
    /// [`MetricsRegistry::counter`] does).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.entry(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get-or-create the histogram `name` (panics on a kind mismatch,
    /// as [`MetricsRegistry::counter`] does).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.entry(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    fn entry(&self, name: &str, mk: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap();
        map.entry(name.to_string()).or_insert_with(mk).clone()
    }

    /// Exports an externally owned histogram under `name`, replacing
    /// any previous metric with that name — for subsystems that own
    /// their histogram instance (per-service isolation) but want it in
    /// the registry's snapshot.
    pub fn register_histogram(&self, name: &str, h: Arc<Histogram>) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Histogram(h));
    }

    /// Removes a metric (used for per-entity series — e.g. the
    /// per-subscriber lag gauges — so the registry stays bounded by
    /// *live* entities). Handles already held keep working; they just
    /// stop being exported.
    pub fn unregister(&self, name: &str) {
        self.metrics.lock().unwrap().remove(name);
    }

    /// The registry's event ring.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// A consistent-enough point-in-time view of every metric, sorted
    /// by name (the map is ordered), plus the retained events.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in self.metrics.lock().unwrap().iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((name.clone(), h.snapshot())),
            }
        }
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters,
            gauges,
            histograms,
            events: self.events.snapshot(),
            events_dropped: self.events.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create_and_snapshot_is_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("depth").set(7);
        r.histogram("lat_ns").record(100);
        assert_eq!(r.counter("b_total").get(), 2, "same handle");
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_total".into(), 1), ("b_total".into(), 2)]
        );
        assert_eq!(snap.gauges, vec![("depth".into(), 7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn unregister_bounds_per_entity_series() {
        let r = MetricsRegistry::new();
        let g = r.gauge("net_sub_lag_5");
        g.set(3);
        r.unregister("net_sub_lag_5");
        assert!(r.snapshot().gauges.is_empty());
        g.set(9); // the held handle stays harmless
    }
}
