//! Stage timers: named latency decomposition recorded into histograms,
//! gated so a disabled process pays one relaxed load per stage and
//! never reads the clock.

use crate::hist::Histogram;
use crate::{enabled, global};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A named latency stage backed by a registry histogram (nanoseconds).
/// Cheap to clone; call sites cache one per stage.
#[derive(Debug, Clone)]
pub struct Stage {
    hist: Arc<Histogram>,
}

impl Stage {
    /// A stage recording into `name` in the global registry. By
    /// convention stage names end in `_ns`.
    pub fn global(name: &str) -> Stage {
        Stage {
            hist: global().histogram(name),
        }
    }

    /// A stage over an existing histogram handle.
    pub fn over(hist: Arc<Histogram>) -> Stage {
        Stage { hist }
    }

    /// Starts the stage: `Some(now)` when timing is enabled, else
    /// `None` (the zero-cost gate — no clock read).
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends the stage begun by [`Stage::begin`], recording elapsed
    /// nanoseconds (no-op on `None`).
    #[inline]
    pub fn end(&self, started: Option<Instant>) {
        if let Some(at) = started {
            self.record_duration(at.elapsed());
        }
    }

    /// Ends the stage using an already-read clock value, so a batch
    /// loop can account many begins against one `now` (no-op on
    /// `None`).
    #[inline]
    pub fn end_at(&self, started: Option<Instant>, now: Instant) {
        if let Some(at) = started {
            self.record_duration(now.saturating_duration_since(at));
        }
    }

    /// Records a pre-computed span.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.hist.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Times a closure (records only when enabled).
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t = self.begin();
        let r = f();
        self.end(t);
        r
    }

    /// The backing histogram.
    pub fn histogram(&self) -> &Arc<Histogram> {
        &self.hist
    }
}

/// A 1-in-N gate for per-update timers on paths too hot to read the
/// clock every time (the core engine applies an update in ~1 µs; a
/// clock read costs ~25 ns). Single-owner — lives inside the owning
/// engine, no atomics.
#[derive(Debug, Clone)]
pub struct Sampler {
    tick: u32,
    mask: u32,
}

impl Sampler {
    /// Samples 1 in `2^shift` ticks.
    pub fn one_in_pow2(shift: u32) -> Sampler {
        Sampler {
            tick: 0,
            mask: (1u32 << shift) - 1,
        }
    }

    /// Advances the sampler; true on the sampled tick (and only then
    /// should the caller read the clock).
    #[inline]
    pub fn tick(&mut self) -> bool {
        let hit = self.tick & self.mask == 0;
        self.tick = self.tick.wrapping_add(1);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;
    use std::sync::Mutex;

    /// The enabled flag is process-global and tests run in parallel:
    /// serialize the two tests that toggle it.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_stage_records_nothing() {
        let _g = GATE.lock().unwrap();
        let stage = Stage::over(Arc::new(Histogram::new()));
        set_enabled(false);
        assert!(stage.begin().is_none());
        stage.time(|| ());
        assert_eq!(stage.histogram().count(), 0);
    }

    #[test]
    fn enabled_stage_records_elapsed_nanos() {
        let _g = GATE.lock().unwrap();
        let stage = Stage::over(Arc::new(Histogram::new()));
        set_enabled(true);
        let t = stage.begin();
        assert!(t.is_some());
        stage.end(t);
        stage.record_duration(Duration::from_micros(3));
        set_enabled(false);
        let snap = stage.histogram().snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.max >= 3_000);
    }

    #[test]
    fn sampler_hits_exactly_one_in_n() {
        let mut s = Sampler::one_in_pow2(4);
        let hits = (0..160).filter(|_| s.tick()).count();
        assert_eq!(hits, 10);
    }
}
