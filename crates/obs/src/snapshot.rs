//! The single export schema. One [`MetricsSnapshot`] structure is
//! produced by the in-process API, carried verbatim over the wire by
//! `Response::Metrics`, and rendered by the Prometheus-text and JSON
//! encoders here; [`MetricsSnapshot::from_json`] closes the loop so the
//! CLI and CI can validate what a server emitted.

use crate::events::Event;
use crate::hist::HistogramSnapshot;
use std::fmt::Write as _;

/// Version of the snapshot schema (carried in every encoding).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A point-in-time view of every registered metric plus the retained
/// event ring. All series are sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Monotone counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histograms as `(name, snapshot)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained rare events, oldest first.
    pub events: Vec<Event>,
    /// Events dropped or evicted from the ring.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// A histogram snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Folds another snapshot in: counters and drop counts add
    /// (saturating), gauges keep the maximum, histograms merge
    /// bucket-wise, events concatenate in time order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_series(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(b)
        });
        merge_series(&mut self.gauges, &other.gauges, |a, b| *a = (*a).max(b));
        for (name, hist) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(i) => self.histograms[i].1.merge(hist),
                Err(i) => self.histograms.insert(i, (name.clone(), hist.clone())),
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.at_micros);
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
    }

    /// Prometheus text exposition: counters and gauges as themselves,
    /// histograms as summaries (p50/p95/p99 quantile series plus
    /// `_sum`/`_count`/`_max`). Events have no Prometheus shape and are
    /// exported only by the JSON encoding; their drop count is exposed
    /// as `dynamis_events_dropped`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in ["0.5", "0.95", "0.99"] {
                let v = h.quantile(q.parse().unwrap());
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "# TYPE {name}_max gauge\n{name}_max {}", h.max);
        }
        let _ = writeln!(
            out,
            "# TYPE dynamis_events_dropped counter\ndynamis_events_dropped {}",
            self.events_dropped
        );
        out
    }

    /// JSON encoding of the full snapshot (handwritten — the workspace
    /// is offline and serde-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"version\":{}", self.version);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(out, "{}{}:{v}", comma(i), json_str(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}:{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                comma(i),
                json_str(name),
                h.count,
                h.sum,
                h.max
            );
            for (j, (b, c)) in h.buckets.iter().enumerate() {
                let _ = write!(out, "{}[{b},{c}]", comma(j));
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"at_micros\":{},\"kind\":{},\"detail\":{}}}",
                comma(i),
                e.at_micros,
                json_str(&e.kind),
                json_str(&e.detail)
            );
        }
        let _ = write!(out, "],\"events_dropped\":{}}}", self.events_dropped);
        out
    }

    /// Parses [`MetricsSnapshot::to_json`] output back into a snapshot.
    /// Total: every malformed input is a typed [`JsonError`], never a
    /// panic or an unbounded allocation.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, JsonError> {
        let value = json::parse(text)?;
        let obj = value.as_obj("snapshot")?;
        let mut snap = MetricsSnapshot {
            version: obj.field("version")?.as_u64("version")? as u32,
            events_dropped: obj.field("events_dropped")?.as_u64("events_dropped")?,
            ..MetricsSnapshot::default()
        };
        for (name, v) in obj.field("counters")?.as_obj("counters")?.entries() {
            snap.counters.push((name.clone(), v.as_u64("counter")?));
        }
        for (name, v) in obj.field("gauges")?.as_obj("gauges")?.entries() {
            snap.gauges.push((name.clone(), v.as_u64("gauge")?));
        }
        for (name, v) in obj.field("histograms")?.as_obj("histograms")?.entries() {
            let h = v.as_obj("histogram")?;
            let mut hist = HistogramSnapshot {
                count: h.field("count")?.as_u64("count")?,
                sum: h.field("sum")?.as_u64("sum")?,
                max: h.field("max")?.as_u64("max")?,
                buckets: Vec::new(),
            };
            for pair in h.field("buckets")?.as_arr("buckets")? {
                let pair = pair.as_arr("bucket pair")?;
                if pair.len() != 2 {
                    return Err(JsonError::new("bucket pair must have 2 elements"));
                }
                let idx = pair[0].as_u64("bucket index")?;
                if idx >= crate::hist::NUM_BUCKETS as u64 {
                    return Err(JsonError::new("bucket index out of range"));
                }
                hist.buckets
                    .push((idx as u32, pair[1].as_u64("bucket count")?));
            }
            snap.histograms.push((name.clone(), hist));
        }
        for e in obj.field("events")?.as_arr("events")? {
            let e = e.as_obj("event")?;
            snap.events.push(Event {
                at_micros: e.field("at_micros")?.as_u64("at_micros")?,
                kind: e.field("kind")?.as_str("kind")?.to_string(),
                detail: e.field("detail")?.as_str("detail")?.to_string(),
            });
        }
        Ok(snap)
    }
}

fn lookup<'a, T>(series: &'a [(String, T)], name: &str) -> Option<&'a T> {
    series
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &series[i].1)
}

fn merge_series(into: &mut Vec<(String, u64)>, from: &[(String, u64)], f: impl Fn(&mut u64, u64)) {
    for (name, v) in from {
        match into.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => f(&mut into[i].1, *v),
            Err(i) => into.insert(i, (name.clone(), *v)),
        }
    }
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

/// JSON string literal (quoted, escaped).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A typed JSON parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A minimal total JSON reader: just enough for the snapshot schema
/// (objects, arrays, strings, unsigned integers, and the literals),
/// depth-capped so adversarial nesting cannot overflow the stack.
mod json {
    use super::JsonError;

    const MAX_DEPTH: usize = 24;

    #[derive(Debug)]
    pub enum Value {
        Obj(Vec<(String, Value)>),
        Arr(Vec<Value>),
        Str(String),
        Num(u64),
        Lit, // true / false / null — tolerated, never produced
    }

    impl Value {
        pub fn as_obj(&self, what: &str) -> Result<Obj<'_>, JsonError> {
            match self {
                Value::Obj(fields) => Ok(Obj(fields)),
                _ => Err(JsonError::new(format!("{what}: expected object"))),
            }
        }

        pub fn as_arr(&self, what: &str) -> Result<&[Value], JsonError> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(JsonError::new(format!("{what}: expected array"))),
            }
        }

        pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(JsonError::new(format!("{what}: expected unsigned integer"))),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(JsonError::new(format!("{what}: expected string"))),
            }
        }
    }

    /// Field access over a parsed object.
    pub struct Obj<'a>(&'a [(String, Value)]);

    impl<'a> Obj<'a> {
        pub fn field(&self, name: &str) -> Result<&'a Value, JsonError> {
            self.0
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field {name}")))
        }

        pub fn entries(&self) -> impl Iterator<Item = &'a (String, Value)> {
            self.0.iter()
        }
    }

    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new("trailing bytes after value"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                c as char, *pos
            )))
        }
    }

    fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = string(b, pos)?;
                    expect(b, pos, b':')?;
                    fields.push((key, value(b, pos, depth + 1)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(JsonError::new("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos, depth + 1)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(JsonError::new("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = b.get(*pos) {
                    if !c.is_ascii_digit() {
                        break;
                    }
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((c - b'0') as u64))
                        .ok_or_else(|| JsonError::new("integer overflow"))?;
                    *pos += 1;
                }
                if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
                    return Err(JsonError::new("non-integer number"));
                }
                Ok(Value::Num(n))
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if b[*pos..].starts_with(lit.as_bytes()) {
                        *pos += lit.len();
                        return Ok(Value::Lit);
                    }
                }
                Err(JsonError::new(format!("unexpected byte at {}", *pos)))
            }
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
        if b.get(*pos) != Some(&b'"') {
            return Err(JsonError::new(format!("expected string at byte {}", *pos)));
        }
        *pos += 1;
        let mut out = Vec::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out)
                        .map_err(|_| JsonError::new("invalid utf-8 in string"));
                }
                b'\\' => {
                    let esc = b.get(*pos).ok_or_else(|| JsonError::new("open escape"))?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or_else(|| JsonError::new("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            *pos += 4;
                            // Surrogates (the encoder never emits them)
                            // decode as the replacement character.
                            let c = char::from_u32(cp).unwrap_or('\u{fffd}');
                            out.extend_from_slice(c.to_string().as_bytes());
                        }
                        _ => return Err(JsonError::new("unknown escape")),
                    }
                }
                c => out.push(c),
            }
        }
        Err(JsonError::new("unterminated string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters: vec![("a_total".into(), 3), ("b_total".into(), u64::MAX)],
            gauges: vec![("depth".into(), 9)],
            histograms: vec![(
                "lat_ns".into(),
                HistogramSnapshot {
                    count: 4,
                    sum: 1234,
                    max: 1000,
                    buckets: vec![(0, 1), (17, 2), (100, 1)],
                },
            )],
            events: vec![Event {
                at_micros: 55,
                kind: "shed_on".into(),
                detail: "queue \"deep\"\nline2".into(),
            }],
            events_dropped: 7,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        assert_eq!(MetricsSnapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            ..MetricsSnapshot::default()
        };
        assert_eq!(MetricsSnapshot::from_json(&snap.to_json()).unwrap(), snap);
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 3"));
        assert!(text.contains("# TYPE depth gauge\ndepth 9"));
        assert!(text.contains("lat_ns{quantile=\"0.95\"}"));
        assert!(text.contains("lat_ns_count 4"));
        assert!(text.contains("lat_ns_sum 1234"));
        assert!(text.contains("dynamis_events_dropped 7"));
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"version\":1}",
            "{\"version\":-1}",
            "{\"version\":1.5}",
            "{\"version\":99999999999999999999999999}",
            "\"unterminated",
            "{\"version\":1,\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":[],\"events_dropped\":[]}",
            "nullx",
        ] {
            assert!(MetricsSnapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
        // Deep nesting is refused, not a stack overflow.
        let deep = "[".repeat(100_000);
        assert!(MetricsSnapshot::from_json(&deep).is_err());
    }

    #[test]
    fn merge_combines_series() {
        let mut a = sample();
        let mut b = sample();
        b.counters[0].1 = 2;
        b.gauges[0].1 = 4;
        b.counters.push(("z_total".into(), 1));
        b.counters.sort();
        a.merge(&b);
        assert_eq!(a.counter("a_total"), Some(5));
        assert_eq!(a.counter("b_total"), Some(u64::MAX), "saturates");
        assert_eq!(a.counter("z_total"), Some(1));
        assert_eq!(a.gauge("depth"), Some(9), "gauge keeps max");
        assert_eq!(a.histogram("lat_ns").unwrap().count, 8);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.events_dropped, 14);
    }
}
