//! The three metric primitives: monotone counters, last-write gauges,
//! and log-bucketed histograms with mergeable snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (relaxed atomics — observability
/// only, never synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, lag, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Values below this are their own exact bucket.
const EXACT: u64 = 16;
/// Linear sub-buckets per power-of-two octave above [`EXACT`].
const SUBS: usize = 8;
/// First octave covered by sub-buckets (`log2(EXACT)`).
const FIRST_OCTAVE: usize = 4;

/// Total bucket count: 16 exact + 8 sub-buckets for each of the 60
/// octaves `2^4 ..= 2^63`. Index 495's range ends exactly at
/// `u64::MAX`.
pub const NUM_BUCKETS: usize = EXACT as usize + (64 - FIRST_OCTAVE) * SUBS;

/// Worst-case relative error of a bucket-reported quantile: a bucket
/// spans `lo .. lo + lo/8`, and [`HistogramSnapshot::quantile`] reports
/// the bucket's upper bound, so the report exceeds the true rank value
/// by at most 1/8. Values below 16 are exact.
pub const MAX_QUANTILE_ERROR: f64 = 0.125;

/// Bucket index for a recorded value. Values `< 16` map to themselves;
/// above, each power-of-two octave splits into 8 linear sub-buckets, so
/// a bucket's width is 1/8 of its lower bound.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let o = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (o - 3)) & 7) as usize;
        EXACT as usize + (o - FIRST_OCTAVE) * SUBS + sub
    }
}

/// Inclusive `(low, high)` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if (i as u64) < EXACT {
        return (i as u64, i as u64);
    }
    let k = i - EXACT as usize;
    let o = FIRST_OCTAVE + k / SUBS;
    let sub = (k % SUBS) as u64;
    let width = 1u64 << (o - 3);
    let lo = (1u64 << o) + sub * width;
    (lo, lo + (width - 1))
}

/// A lock-free log-bucketed histogram. Recording is a handful of
/// relaxed `fetch_add`s; snapshots are consistent enough for
/// observability (bucket-by-bucket relaxed loads) and merge with
/// saturating arithmetic.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its ~4 KiB bucket array once).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value: four relaxed atomic RMWs, no locks, no
    /// allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time histogram copy: totals plus the sparse non-empty
/// `(bucket index, count)` pairs, ascending by index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, index ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value, so the report is an
    /// upper estimate within [`MAX_QUANTILE_ERROR`] relative error
    /// (exact below 16). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bounds(i as usize).1;
            }
        }
        // Tolerate a racy snapshot whose bucket sum trails `count`.
        self.max
    }

    /// Folds another snapshot in, saturating instead of wrapping on
    /// every addition (a wrapped counter reads as a time-travel bug;
    /// a saturated one reads as "a lot").
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca.saturating_add(cb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_consistent() {
        let mut prev = 0usize;
        let mut v = 0u64;
        loop {
            let i = bucket_index(v);
            assert!(i >= prev, "index must not decrease at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
            if v > u64::MAX / 2 {
                break;
            }
            v = v.saturating_mul(2).saturating_add(1);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn bucket_width_is_one_eighth_of_its_octave() {
        for i in 16..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let octave = 1u64 << (63 - lo.leading_zeros());
            assert_eq!(hi - lo + 1, octave / 8, "bucket {i}");
        }
    }

    /// The reported quantile never exceeds the true value by more than
    /// the documented relative error bound — pinned here because
    /// `net-load` reports its p50/p95/p99 through this path.
    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        // A skewed latency-like distribution over five decades.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 1u64;
        while x < 10_000_000 {
            for k in 0..7 {
                values.push(x + k * (x / 3 + 1));
            }
            x = x.saturating_mul(3) / 2 + 1;
        }
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = snap.quantile(q);
            assert!(est >= truth, "estimate {est} below truth {truth} at q={q}");
            let err = (est - truth) as f64 / truth as f64;
            assert!(
                err <= MAX_QUANTILE_ERROR + 1e-9,
                "q={q}: estimate {est} vs truth {truth} (err {err:.4})"
            );
        }
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 1,
            max: 5,
            buckets: vec![(3, u64::MAX - 1)],
        };
        let b = HistogramSnapshot {
            count: 10,
            sum: 10,
            max: 9,
            buckets: vec![(3, 10), (7, 1)],
        };
        a.merge(&b);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.max, 9);
        assert_eq!(a.buckets, vec![(3, u64::MAX), (7, 1)]);
    }

    #[test]
    fn snapshot_totals_match_recordings() {
        let h = Histogram::new();
        for v in [0, 1, 15, 16, 17, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1_001_049);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 7);
        assert_eq!(s.quantile(0.0), 0);
    }
}
