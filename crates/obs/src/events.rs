//! A bounded ring of rare structured events (shed transitions,
//! checkpoint reseeds, swap-round deferrals). Recording never blocks:
//! the ring is guarded by `try_lock`, and anything that cannot get in —
//! a contended lock or an evicted oldest entry — is counted instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the owning log was created.
    pub at_micros: u64,
    /// Event class, e.g. `shed_on`, `checkpoint_reseed`.
    pub kind: String,
    /// Free-form detail (small — the ring is for rare events).
    pub detail: String,
}

/// Bounded, never-blocking event ring.
#[derive(Debug)]
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    cap: usize,
    dropped: AtomicU64,
    epoch: Instant,
}

impl EventLog {
    /// A ring retaining the newest `cap` events.
    pub fn new(cap: usize) -> Self {
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Records an event. If the ring is contended the event is dropped
    /// (and counted) rather than blocking the caller; if the ring is
    /// full the oldest entry is evicted (and counted).
    pub fn record(&self, kind: &str, detail: String) {
        let Ok(mut ring) = self.ring.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let at_micros = self.epoch.elapsed().as_micros() as u64;
        ring.push_back(Event {
            at_micros,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Events dropped or evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.ring
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record("k", format!("e{i}"));
        }
        let events = log.snapshot();
        assert_eq!(
            events.iter().map(|e| e.detail.as_str()).collect::<Vec<_>>(),
            ["e2", "e3", "e4"]
        );
        assert_eq!(log.dropped(), 2);
        assert!(events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
    }

    #[test]
    fn contended_record_drops_instead_of_blocking() {
        let log = EventLog::new(8);
        let guard = log.ring.lock().unwrap();
        log.record("k", "blocked".into());
        drop(guard);
        assert_eq!(log.dropped(), 1);
        assert!(log.snapshot().is_empty());
    }
}
