//! End-to-end tests of the `dynamis` CLI binary: real process spawns,
//! real files, every subcommand.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dynamis"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynamis_cli_e2e_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr was: {err}");
}

#[test]
fn unknown_command_fails_with_message() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn datasets_lists_all_22_standins() {
    let out = cli().arg("datasets").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Epinions", "hollywood", "uk-2007", "Friendster"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("Easy") || l.contains("Hard"))
            .count(),
        22,
        "one row per Table I graph"
    );
}

#[test]
fn stats_convert_solve_pipeline() {
    let dir = temp_dir("pipeline");
    let edge = dir.join("g.txt");
    std::fs::write(&edge, "# toy\n0 1\n1 2\n2 3\n3 0\n0 2\n").unwrap();

    let out = cli()
        .args(["stats", edge.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices   : 4"));
    assert!(text.contains("edges      : 5"));
    assert!(text.contains("triangles  : 2"));

    // Convert through every format and back.
    let dimacs = dir.join("g.col");
    let metis = dir.join("g.graph");
    let binary = dir.join("g.dyng");
    for target in [&dimacs, &metis, &binary] {
        let out = cli()
            .args(["convert", edge.to_str().unwrap(), target.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "convert to {target:?} failed");
        let back = dir.join("back.txt");
        let out = cli()
            .args(["convert", target.to_str().unwrap(), back.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "convert back from {target:?} failed");
        let text = std::fs::read_to_string(&back).unwrap();
        assert_eq!(
            text.lines().filter(|l| !l.starts_with('#')).count(),
            5,
            "edge count survives {target:?}"
        );
    }

    // Static solve: C₄ + chord has α = 2... actually {1, 3} for the
    // 4-cycle with chord (0,2): α = 2.
    let out = cli()
        .args(["solve", edge.to_str().unwrap(), "--algo", "exact"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("|I| = 2"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_on_dataset_reports_rate() {
    let out = cli()
        .args([
            "run",
            "--dataset",
            "Email",
            "--algo",
            "two",
            "--updates",
            "500",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DyTwoSwap"), "got: {text}");
    assert!(text.contains("500 updates"));
    assert!(text.contains("solution:"));
}

#[test]
fn record_then_replay_are_consistent() {
    let dir = temp_dir("trace");
    let trace = dir.join("wl.trace");
    let out = cli()
        .args([
            "record",
            "--dataset",
            "Email",
            "--updates",
            "300",
            "--seed",
            "5",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Replay twice with the same engine: byte-identical reports modulo
    // timing, so compare the |I| field.
    let size = |out: &std::process::Output| {
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        text.split("|I| = ").nth(1).map(|s| s.trim().to_string())
    };
    let a = cli()
        .args(["replay", trace.to_str().unwrap()])
        .output()
        .unwrap();
    let b = cli()
        .args(["replay", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(a.status.success() && b.status.success());
    assert_eq!(size(&a), size(&b), "replay is deterministic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_are_rejected() {
    for args in [
        vec!["run"],                             // neither dataset nor graph
        vec!["run", "--dataset", "NoSuchGraph"], // unknown dataset
        vec!["run", "--dataset", "Email", "--algo", "bogus"],
        vec!["solve", "/nonexistent/file.txt"],
        vec!["replay", "/nonexistent/wl.trace"],
    ] {
        let out = cli().args(&args).output().unwrap();
        assert!(!out.status.success(), "should fail: {args:?}");
    }
}
