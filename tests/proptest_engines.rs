//! Property-based tests (proptest): random graphs + random schedules ⇒
//! engine invariants, exact-solver agreement, and generator contracts.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::{
    brute_force_alpha, compact_live, is_independent_dynamic, is_k_maximal_dynamic,
};
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DyOneSwap keeps independence + 1-maximality under arbitrary valid
    /// schedules on arbitrary G(n, m) graphs.
    #[test]
    fn one_swap_invariant_random(seed in 0u64..10_000, n in 8usize..28, steps in 10usize..80) {
        let m = (n * (n - 1) / 4).min(3 * n);
        let g = gnm(n, m, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xdead);
        let ups = stream.take_updates(steps);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        e.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert!(is_independent_dynamic(e.graph(), &e.solution()));
        prop_assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
    }

    /// DyTwoSwap ends 2-maximal on arbitrary schedules.
    #[test]
    fn two_swap_invariant_random(seed in 0u64..10_000, n in 8usize..22, steps in 10usize..60) {
        let m = (n * (n - 1) / 4).min(3 * n);
        let g = gnm(n, m, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xbeef);
        let ups = stream.take_updates(steps);
        let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        e.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
    }

    /// The ratio guarantee of Theorem 6 holds at the end of every run.
    #[test]
    fn ratio_guarantee_random(seed in 0u64..10_000, n in 6usize..18) {
        let m = n;
        let g = gnm(n, m, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::edges_only(), seed + 5);
        let ups = stream.take_updates(30);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        let (csr, _) = compact_live(e.graph());
        let alpha = brute_force_alpha(&csr);
        let bound = e.graph().max_degree() as f64 / 2.0 + 1.0;
        prop_assert!(alpha as f64 <= bound * e.size() as f64 + 1e-9);
    }

    /// The exact solver agrees with brute force on every random graph.
    #[test]
    fn exact_solver_agrees_with_brute_force(seed in 0u64..10_000, n in 4usize..20) {
        let m = (n * (n - 1) / 3).min(40);
        let g = gnm(n, m, seed);
        let (csr, _) = compact_live(&g);
        let r = solve_exact(&csr, ExactConfig::default()).expect("small graph");
        prop_assert_eq!(r.alpha, brute_force_alpha(&csr));
    }

    /// Streams always replay onto the base graph without errors, and the
    /// shadow matches the replay.
    #[test]
    fn stream_replay_contract(seed in 0u64..10_000, n in 4usize..30, steps in 1usize..120) {
        let m = n.min(2 * n / 3 + 1);
        let g = gnm(n, m, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed);
        let ups = stream.take_updates(steps);
        let mut replay = g;
        for u in &ups {
            dynamis::gen::apply_update(&mut replay, u).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        replay.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert_eq!(replay.num_edges(), stream.shadow().num_edges());
        prop_assert_eq!(replay.num_vertices(), stream.shadow().num_vertices());
    }

    /// Two-swap quality dominates one-swap on identical runs.
    #[test]
    fn two_swap_dominates_one_swap(seed in 0u64..5_000, n in 10usize..24) {
        let g = gnm(n, 2 * n, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed * 7 + 1);
        let ups = stream.take_updates(50);
        let mut e1 = EngineBuilder::on(g.clone()).build_as::<DyOneSwap>().unwrap();
        let mut e2 = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for u in &ups {
            e1.try_apply(u).unwrap();
            e2.try_apply(u).unwrap();
        }
        // Both are 1-maximal; e2 additionally 2-maximal. Individual runs
        // can differ either way by swap luck, but e2 can never be *worse*
        // than the guarantee floor: compare against alpha.
        let (csr, _) = compact_live(e2.graph());
        if csr.num_vertices() <= 40 {
            let alpha = brute_force_alpha(&csr);
            prop_assert!(e2.size() <= alpha);
            prop_assert!(e1.size() <= alpha);
        }
    }
}
