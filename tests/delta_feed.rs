//! The solution-delta contract of the session API: for **every** engine
//! in the workspace, the [`SolutionDelta`]s reported by `try_apply` —
//! and the drainable feed behind `drain_delta` — replay into a mirror
//! that matches `solution()` exactly at every step. This is the
//! adjustment-complexity view of the paper's framework made into an
//! invariant: consumers never need to rematerialize `I`.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::{
    DgDis, DyArw, DyOneSwap, DyTwoSwap, DynamicGraph, DynamicMis, EngineBuilder, GenericKSwap,
    MaximalOnly, Restart, RestartSolver, SolutionMirror,
};
use proptest::prelude::*;

/// Every maintainer in the workspace, over its own copy of `g` —
/// the paper engines at k ∈ {1, 2, 3} plus all four baselines.
fn all_engines(g: &DynamicGraph) -> Vec<Box<dyn DynamicMis>> {
    let on = |g: &DynamicGraph| EngineBuilder::on(g.clone());
    vec![
        Box::new(on(g).build_as::<DyOneSwap>().unwrap()),
        Box::new(on(g).build_as::<DyTwoSwap>().unwrap()),
        Box::new(on(g).k(1).build_as::<GenericKSwap>().unwrap()),
        Box::new(on(g).k(2).build_as::<GenericKSwap>().unwrap()),
        Box::new(on(g).k(3).build_as::<GenericKSwap>().unwrap()),
        Box::new(on(g).build_as::<DyArw>().unwrap()),
        Box::new(on(g).build_as::<MaximalOnly>().unwrap()),
        Box::new(DgDis::one_dis(on(g)).unwrap()),
        Box::new(DgDis::two_dis(on(g)).unwrap()),
        Box::new(Restart::from_builder(on(g), RestartSolver::Greedy, 3).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replaying the per-update deltas from an **empty** mirror (primed
    /// only by the bootstrap drain) reconstructs `solution()` exactly
    /// after every update, for every engine and random interleavings of
    /// all four update kinds.
    #[test]
    fn per_update_deltas_mirror_the_solution(
        seed in 0u64..10_000,
        n in 8usize..20,
        steps in 5usize..45,
    ) {
        let m = (n * (n - 1) / 4).min(3 * n);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xfeed)
            .take_updates(steps);
        for mut e in all_engines(&g) {
            let name = e.name();
            let mut mirror = SolutionMirror::new();
            mirror
                .apply(&e.drain_delta())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(mirror.solution(), e.solution(), "{} bootstrap", name);
            for u in &ups {
                let delta = e.try_apply(u).unwrap();
                mirror.apply(&delta).map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert_eq!(
                    mirror.solution(),
                    e.solution(),
                    "{} diverged after {:?}",
                    name,
                    u
                );
                prop_assert_eq!(mirror.len(), e.size(), "{} size", name);
            }
        }
    }

    /// The drainable feed nets correctly across update bursts: a mirror
    /// synchronized only at irregular drain points (never per update)
    /// still lands on `solution()` at each drain — including a consumer
    /// that starts from an empty mirror after construction.
    #[test]
    fn drained_feed_replays_in_bursts(
        seed in 0u64..10_000,
        n in 8usize..18,
        steps in 6usize..40,
        stride in 2usize..7,
    ) {
        let m = (n * (n - 1) / 4).min(3 * n);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xabcd)
            .take_updates(steps);
        for mut e in all_engines(&g) {
            let name = e.name();
            let mut mirror = SolutionMirror::new();
            for (i, u) in ups.iter().enumerate() {
                let _per_update = e.try_apply(u).unwrap();
                if i % stride == stride - 1 {
                    mirror
                        .apply(&e.drain_delta())
                        .map_err(|e| TestCaseError::fail(e.to_string()))?;
                    prop_assert_eq!(
                        mirror.solution(),
                        e.solution(),
                        "{} diverged at drain {}",
                        name,
                        i
                    );
                }
            }
            mirror
                .apply(&e.drain_delta())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(mirror.solution(), e.solution(), "{} final", name);
        }
    }

    /// Rejected updates contribute nothing to either read side: the
    /// per-update delta stream and the drainable feed are identical
    /// whether or not invalid operations were interleaved.
    #[test]
    fn rejected_updates_leave_no_trace_in_the_feed(
        seed in 0u64..10_000,
        n in 8usize..16,
    ) {
        let g = gnm(n, 2 * n, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0x5a5a)
            .take_updates(10);
        let dead = n as u32 + 50; // never a live vertex
        for mut e in all_engines(&g) {
            let name = e.name();
            let mut mirror = SolutionMirror::new();
            mirror
                .apply(&e.drain_delta())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            for u in &ups {
                prop_assert!(
                    e.try_apply(&dynamis::Update::RemoveVertex(dead)).is_err(),
                    "{} accepted a dead-vertex update",
                    name
                );
                let delta = e.try_apply(u).unwrap();
                mirror.apply(&delta).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            prop_assert_eq!(mirror.solution(), e.solution(), "{}", name);
        }
    }
}
