//! Cross-format I/O agreement: the same graph written through every codec
//! reads back identical, including under property-based random graphs.

use dynamis::gen::uniform::gnm;
use dynamis::graph::io::{
    decode_graph, encode_graph, parse_dimacs, parse_edge_list, parse_metis, read_dynamic,
    write_dimacs, write_edge_list, write_metis,
};
use dynamis::DynamicGraph;
use proptest::prelude::*;

fn same_graph(a: &DynamicGraph, b: &DynamicGraph) -> bool {
    a.num_vertices() == b.num_vertices()
        && a.num_edges() == b.num_edges()
        && a.edges().all(|(u, v)| b.has_edge(u, v))
}

#[test]
fn all_formats_round_trip_the_same_graph() {
    let g = gnm(50, 120, 5);

    let mut txt = Vec::new();
    write_edge_list(&g, &mut txt).unwrap();
    let (n, edges) = parse_edge_list(txt.as_slice()).unwrap();
    let from_txt = DynamicGraph::from_edges(n, &edges);

    let mut dim = Vec::new();
    write_dimacs(&g, &mut dim).unwrap();
    let (n, edges) = parse_dimacs(dim.as_slice()).unwrap();
    let from_dimacs = DynamicGraph::from_edges(n, &edges);

    let mut met = Vec::new();
    write_metis(&g, &mut met).unwrap();
    let (n, edges) = parse_metis(met.as_slice()).unwrap();
    let from_metis = DynamicGraph::from_edges(n, &edges);

    let from_binary = decode_graph(&encode_graph(&g)).unwrap();

    for (label, other) in [
        ("edge list", &from_txt),
        ("dimacs", &from_dimacs),
        ("metis", &from_metis),
        ("binary", &from_binary),
    ] {
        assert!(same_graph(&g, other), "{label} round trip diverged");
    }
}

/// METIS compacts dead vertex slots; binary preserves them. Both must
/// preserve the edge *structure* of a graph with holes.
#[test]
fn formats_handle_dead_slots() {
    let mut g = gnm(20, 40, 8);
    g.remove_vertex(3).unwrap();
    g.remove_vertex(11).unwrap();

    let bin = decode_graph(&encode_graph(&g)).unwrap();
    assert!(same_graph(&g, &bin), "binary must preserve ids exactly");
    assert!(!bin.is_alive(3) && !bin.is_alive(11));

    let mut met = Vec::new();
    write_metis(&g, &mut met).unwrap();
    let (n, edges) = parse_metis(met.as_slice()).unwrap();
    assert_eq!(n, g.num_vertices(), "metis compacts to live vertices");
    assert_eq!(edges.len(), g.num_edges());
}

/// Real SNAP dumps open with `#`-comment banners (and some mirrors use
/// `%`): every such line must be skipped wherever it appears, including
/// interleaved with data.
#[test]
fn snap_comment_lines_are_skipped_everywhere() {
    let text = "# Directed graph (each unordered pair of nodes is saved once)\n\
                # Nodes: 4 Edges: 3\n\
                # FromNodeId\tToNodeId\n\
                0\t1\n\
                % matrix-market style comment mid-file\n\
                1\t2\n\
                #trailing banner\n\
                2\t3\n";
    let (n, edges) = parse_edge_list(text.as_bytes()).unwrap();
    assert_eq!(n, 4);
    assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
}

/// SNAP traces routinely repeat edges (both orientations of an
/// undirected pair, plain duplicates) and contain self-loops; ingestion
/// into a `DynamicGraph` must collapse all of that instead of tripping
/// the engine's duplicate-edge validation later.
#[test]
fn snap_duplicate_edges_and_self_loops_collapse_on_ingest() {
    let text = "0 1\n1 0\n0 1\n2 2\n1 2\n2 1\n";
    let (n, edges) = parse_edge_list(text.as_bytes()).unwrap();
    assert_eq!(edges.len(), 6, "the parser reports the raw lines");
    let g = DynamicGraph::from_edges(n, &edges);
    assert_eq!(g.num_edges(), 2, "ingest dedups pairs and drops loops");
    assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    assert!(!g.has_edge(2, 2));
    g.check_consistency().unwrap();
}

/// Tabs, runs of spaces, leading/trailing blanks, CRLF line endings,
/// and blank lines — all whitespace variants seen in the wild parse to
/// the same graph.
#[test]
fn snap_whitespace_variants_parse_identically() {
    let canonical = "0 1\n1 2\n2 3\n";
    let variants = [
        "0\t1\n1\t2\n2\t3\n",         // tabs
        "  0   1  \n\t1 2\n2    3\n", // mixed runs + padding
        "0 1\r\n1 2\r\n2 3\r\n",      // CRLF
        "\n0 1\n\n1 2\n   \n2 3\n\n", // blank/whitespace-only lines
    ];
    let (n0, e0) = parse_edge_list(canonical.as_bytes()).unwrap();
    for v in variants {
        let (n, e) = parse_edge_list(v.as_bytes()).unwrap();
        assert_eq!((n, &e), (n0, &e0), "variant {v:?} diverged");
    }
}

/// End-to-end: a messy SNAP file on disk feeds straight into the graph
/// the shard bench builds engines on.
#[test]
fn snap_file_ingests_into_a_dynamic_graph() {
    let dir = std::env::temp_dir().join(format!("dynamis_snap_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("messy.txt");
    std::fs::write(
        &path,
        "# Nodes: 5 Edges: 4\n0\t1\n1 0\n\n1\t2\n3   4\n# done\n",
    )
    .unwrap();
    let g = read_dynamic(&path).unwrap();
    assert_eq!(g.num_vertices(), 5);
    assert_eq!(g.num_edges(), 3);
    assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(3, 4));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary codec: encode ∘ decode = identity on arbitrary G(n, m).
    #[test]
    fn binary_codec_identity(seed in 0u64..100_000, n in 1usize..60, density in 0usize..4) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        prop_assert!(same_graph(&g, &back));
        back.check_consistency().map_err(TestCaseError::fail)?;
    }

    /// DIMACS writer output always re-parses to the same structure.
    #[test]
    fn dimacs_write_parse_identity(seed in 0u64..100_000, n in 1usize..40) {
        let g = gnm(n, (2 * n).min(n * (n - 1) / 2), seed);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let (pn, edges) = parse_dimacs(buf.as_slice()).unwrap();
        let back = DynamicGraph::from_edges(pn, &edges);
        prop_assert_eq!(back.num_edges(), g.num_edges());
        prop_assert!(g.edges().all(|(u, v)| back.has_edge(u, v)));
    }

    /// METIS writer output always re-parses (modulo id compaction the
    /// edge and vertex counts survive).
    #[test]
    fn metis_write_parse_counts(seed in 0u64..100_000, n in 2usize..40) {
        let g = gnm(n, (2 * n).min(n * (n - 1) / 2), seed);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let (pn, edges) = parse_metis(buf.as_slice()).unwrap();
        prop_assert_eq!(pn, g.num_vertices());
        prop_assert_eq!(edges.len(), g.num_edges());
    }
}

// ------------------------------------------------ durable snapshot formats

mod durable_formats {
    use dynamis::durable::format::{CKPT_K_OFFSET, CKPT_VERSION_OFFSET};
    use dynamis::durable::{
        prepare, scan, DurableError, DurableOptions, MemStorage, SyncPolicy, WalStorage,
    };
    use dynamis::gen::uniform::gnm;
    use dynamis::{DynamicMis, EngineBuilder, Update};
    use std::sync::Arc;

    /// A durable directory with one checkpoint and a short WAL.
    fn recorded() -> MemStorage {
        let storage = MemStorage::new();
        let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());
        let opts = DurableOptions {
            sync: SyncPolicy::Never,
            ..DurableOptions::default()
        };
        let mut prepared = prepare(arc, 2, opts).unwrap();
        let g = gnm(20, 40, 3);
        let builder = prepared.resume_builder(EngineBuilder::on(g).k(2));
        let mut engine = prepared.attach(builder.build().unwrap()).unwrap();
        for v in 0..8 {
            let _ = engine.try_apply(&Update::RemoveVertex(v));
        }
        drop(engine);
        storage
    }

    fn only_checkpoint(storage: &MemStorage) -> String {
        storage
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("ckpt-") && n.ends_with(".snap"))
            .unwrap()
    }

    /// A checkpoint stamped with a newer format version is refused with
    /// the typed error — recovery never guesses at a future layout.
    #[test]
    fn newer_version_snapshot_file_is_refused() {
        let storage = recorded();
        storage.corrupt(&only_checkpoint(&storage), CKPT_VERSION_OFFSET, 0x40);
        match scan(&storage, None, None) {
            Err(DurableError::UnsupportedVersion { found, supported }) => {
                assert!(found > supported);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    /// Opening a directory with a different `k` than it was written with
    /// is refused before anything is read or repaired.
    #[test]
    fn mismatched_k_directory_is_refused() {
        let storage = recorded();
        let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());
        match prepare(arc, 5, DurableOptions::default()) {
            Err(DurableError::KMismatch {
                found: 2,
                expected: 5,
            }) => {}
            Err(other) => panic!("expected KMismatch, got {other:?}"),
            Ok(_) => panic!("expected KMismatch, got Ok"),
        }
    }

    /// A checkpoint whose header `k` disagrees with the manifest is a
    /// typed refusal too (scan-level, independent of caller expectation).
    #[test]
    fn mismatched_k_snapshot_file_is_refused() {
        let storage = recorded();
        storage.corrupt(&only_checkpoint(&storage), CKPT_K_OFFSET, 0x04);
        match scan(&storage, None, None) {
            Err(DurableError::KMismatch {
                found: 6,
                expected: 2,
            }) => {}
            other => panic!("expected KMismatch, got {other:?}"),
        }
    }
}
