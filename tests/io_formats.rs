//! Cross-format I/O agreement: the same graph written through every codec
//! reads back identical, including under property-based random graphs.

use dynamis::gen::uniform::gnm;
use dynamis::graph::io::{
    decode_graph, encode_graph, parse_dimacs, parse_edge_list, parse_metis, write_dimacs,
    write_edge_list, write_metis,
};
use dynamis::DynamicGraph;
use proptest::prelude::*;

fn same_graph(a: &DynamicGraph, b: &DynamicGraph) -> bool {
    a.num_vertices() == b.num_vertices()
        && a.num_edges() == b.num_edges()
        && a.edges().all(|(u, v)| b.has_edge(u, v))
}

#[test]
fn all_formats_round_trip_the_same_graph() {
    let g = gnm(50, 120, 5);

    let mut txt = Vec::new();
    write_edge_list(&g, &mut txt).unwrap();
    let (n, edges) = parse_edge_list(txt.as_slice()).unwrap();
    let from_txt = DynamicGraph::from_edges(n, &edges);

    let mut dim = Vec::new();
    write_dimacs(&g, &mut dim).unwrap();
    let (n, edges) = parse_dimacs(dim.as_slice()).unwrap();
    let from_dimacs = DynamicGraph::from_edges(n, &edges);

    let mut met = Vec::new();
    write_metis(&g, &mut met).unwrap();
    let (n, edges) = parse_metis(met.as_slice()).unwrap();
    let from_metis = DynamicGraph::from_edges(n, &edges);

    let from_binary = decode_graph(&encode_graph(&g)).unwrap();

    for (label, other) in [
        ("edge list", &from_txt),
        ("dimacs", &from_dimacs),
        ("metis", &from_metis),
        ("binary", &from_binary),
    ] {
        assert!(same_graph(&g, other), "{label} round trip diverged");
    }
}

/// METIS compacts dead vertex slots; binary preserves them. Both must
/// preserve the edge *structure* of a graph with holes.
#[test]
fn formats_handle_dead_slots() {
    let mut g = gnm(20, 40, 8);
    g.remove_vertex(3).unwrap();
    g.remove_vertex(11).unwrap();

    let bin = decode_graph(&encode_graph(&g)).unwrap();
    assert!(same_graph(&g, &bin), "binary must preserve ids exactly");
    assert!(!bin.is_alive(3) && !bin.is_alive(11));

    let mut met = Vec::new();
    write_metis(&g, &mut met).unwrap();
    let (n, edges) = parse_metis(met.as_slice()).unwrap();
    assert_eq!(n, g.num_vertices(), "metis compacts to live vertices");
    assert_eq!(edges.len(), g.num_edges());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Binary codec: encode ∘ decode = identity on arbitrary G(n, m).
    #[test]
    fn binary_codec_identity(seed in 0u64..100_000, n in 1usize..60, density in 0usize..4) {
        let m = (n * density).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        prop_assert!(same_graph(&g, &back));
        back.check_consistency().map_err(TestCaseError::fail)?;
    }

    /// DIMACS writer output always re-parses to the same structure.
    #[test]
    fn dimacs_write_parse_identity(seed in 0u64..100_000, n in 1usize..40) {
        let g = gnm(n, (2 * n).min(n * (n - 1) / 2), seed);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let (pn, edges) = parse_dimacs(buf.as_slice()).unwrap();
        let back = DynamicGraph::from_edges(pn, &edges);
        prop_assert_eq!(back.num_edges(), g.num_edges());
        prop_assert!(g.edges().all(|(u, v)| back.has_edge(u, v)));
    }

    /// METIS writer output always re-parses (modulo id compaction the
    /// edge and vertex counts survive).
    #[test]
    fn metis_write_parse_counts(seed in 0u64..100_000, n in 2usize..40) {
        let g = gnm(n, (2 * n).min(n * (n - 1) / 2), seed);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let (pn, edges) = parse_metis(buf.as_slice()).unwrap();
        prop_assert_eq!(pn, g.num_vertices());
        prop_assert_eq!(edges.len(), g.num_edges());
    }
}
