//! `ShardMap` invariants under the locality-aware partitioner: ownership
//! stays write-once through construction's refinement moves, per-shard
//! vertex loads respect the balance bound, and incremental fresh-id
//! assignment is a deterministic function of the replayed stream.

use dynamis::gen::structured::planted_communities;
use dynamis::gen::uniform::gnm;
use dynamis::graph::partition::balance_cap;
use dynamis::graph::{Partitioner, ShardMap};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every vertex slot ends construction with exactly one in-range
    /// owner — the boundary-refinement moves rebalance the partition
    /// during the build but can never leave a slot unowned or doubly
    /// counted afterward.
    #[test]
    fn ownership_is_total_and_write_once(
        seed in 0u64..100_000,
        n in 2usize..80,
        density in 0usize..4,
        p in 1usize..6,
    ) {
        let g = gnm(n, (n * density).min(n * (n - 1) / 2), seed);
        let map = ShardMap::with_partitioner(&g, p, Partitioner::Locality);
        for v in 0..g.capacity() as u32 {
            prop_assert!(map.owner(v) < p, "vertex {v} owner out of range");
        }
        let total: usize = (0..p).map(|s| map.owned_by(s).count()).sum();
        prop_assert_eq!(total, g.capacity(), "slots partitioned exactly once");
        // Owners are frozen: a rebuilt map agrees slot for slot, and
        // re-asking for an owned id cannot move it.
        let replay = ShardMap::with_partitioner(&g, p, Partitioner::Locality);
        let mut probe = map.clone();
        for v in 0..g.capacity() as u32 {
            prop_assert_eq!(replay.owner(v), map.owner(v));
            prop_assert_eq!(probe.assign_fresh_near(v, &[]), map.owner(v));
        }
    }

    /// The locality partitioner's per-shard vertex loads never exceed
    /// the documented balance cap, on uniform and community graphs.
    #[test]
    fn loads_stay_within_the_balance_bound(
        seed in 0u64..100_000,
        n in 4usize..90,
        p in 2usize..6,
    ) {
        let g = gnm(n, (3 * n).min(n * (n - 1) / 2), seed);
        let map = ShardMap::locality_aware(&g, p);
        let cap = balance_cap(g.num_vertices(), p);
        for (s, &l) in map.vertex_loads(&g).iter().enumerate() {
            prop_assert!(l <= cap, "shard {s}: load {l} > cap {cap}");
        }
    }

    /// Replaying the same fresh-id stream against identically built maps
    /// yields identical owners (the sharded engine replays exactly this
    /// on `InsertVertex`), and neighbor-majority picks the right shard.
    #[test]
    fn fresh_assignment_replays_deterministically(
        seed in 0u64..100_000,
        fresh in 1usize..24,
        p in 2usize..5,
    ) {
        let g = planted_communities(p, 8, 4, 3, seed);
        let base = g.capacity() as u32;
        let mut a = ShardMap::locality_aware(&g, p);
        let mut b = ShardMap::locality_aware(&g, p);
        for i in 0..fresh as u32 {
            // Mix isolated ids (round-robin path) with ids wired into
            // one planted block (majority path).
            let neighbors: Vec<u32> = if i % 3 == 0 {
                Vec::new()
            } else {
                let block = (seed as u32 + i) % p as u32;
                (0..4).map(|j| block * 8 + j).collect()
            };
            let owner = a.assign_fresh_near(base + i, &neighbors);
            prop_assert_eq!(owner, b.assign_fresh_near(base + i, &neighbors));
            prop_assert!(owner < p);
            if !neighbors.is_empty() {
                // All hinted neighbors share a block; if that block maps
                // to one shard, majority must follow it.
                let owners: Vec<usize> = neighbors.iter().map(|&v| a.owner(v)).collect();
                if owners.windows(2).all(|w| w[0] == w[1]) {
                    prop_assert_eq!(owner, owners[0], "majority ignored");
                }
            }
        }
    }
}
