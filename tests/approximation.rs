//! Theorem-level checks: the (Δ/2 + 1) guarantee (Theorems 2/6), the
//! worst-case families of Theorem 3, and the PLB bound of Theorem 4.

use dynamis::core::approximation_bound;
use dynamis::gen::plb::PlbFit;
use dynamis::gen::structured::{k_prime, q_prime};
use dynamis::gen::{powerlaw::chung_lu, stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::{compact_live, is_k_maximal};
use dynamis::EngineBuilder;
use dynamis::{CsrGraph, DyOneSwap, DyTwoSwap, DynamicMis};

/// α(G_t) ≤ (Δ_t/2 + 1)·|I_t| at every step of a dynamic run.
#[test]
fn ratio_bound_holds_throughout_dynamic_run() {
    for seed in 0..4u64 {
        let g = gnm(18, 30, seed);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed + 100);
        let ups = stream.take_updates(80);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for (i, u) in ups.iter().enumerate() {
            e.try_apply(u).unwrap();
            if i % 5 != 0 {
                continue;
            }
            let (csr, _) = compact_live(e.graph());
            let alpha = solve_exact(&csr, ExactConfig::default())
                .expect("tiny graph")
                .alpha;
            let bound = approximation_bound(e.graph().max_degree());
            assert!(
                alpha as f64 <= bound * e.size() as f64 + 1e-9,
                "seed {seed} step {i}: alpha {alpha} > ({bound})·{}",
                e.size()
            );
        }
    }
}

/// Theorem 3, k ∈ {2, 3}: in K'_n the original vertices form a k-maximal
/// set of size n while α = n(n−1)/2 and Δ = n − 1, so the ratio Δ/2 + 1
/// is met with equality asymptotically (|I| = 2α/Δ ... exactly α/((n-1)/2)).
#[test]
fn k_prime_worst_case_family() {
    for n in 4..7usize {
        let g = k_prime(n);
        let csr = CsrGraph::from_dynamic(&g);
        let originals: Vec<u32> = (0..n as u32).collect();
        assert!(
            is_k_maximal(&csr, &originals, 3),
            "original vertices of K'_{n} must be 3-maximal"
        );
        let alpha = solve_exact(&csr, ExactConfig::default()).unwrap().alpha;
        assert_eq!(alpha, n * (n - 1) / 2, "subdivision vertices are optimal");
        let delta = csr.max_degree();
        assert_eq!(delta, n - 1);
        // The bound is tight on this family: α = (Δ/2)·|I|.
        assert_eq!(2 * alpha, delta * originals.len());
    }
}

/// Theorem 3, k ≥ 4: Q'_d with the hypercube vertices as the k-maximal
/// set; α = 2^{d-1}·d and Δ = d.
#[test]
fn q_prime_worst_case_family() {
    let d = 4;
    let g = q_prime(d);
    let csr = CsrGraph::from_dynamic(&g);
    let originals: Vec<u32> = (0..(1u32 << d)).collect();
    assert!(
        is_k_maximal(&csr, &originals, 4),
        "hypercube vertices of Q'_4 must be 4-maximal"
    );
    let m0 = (1usize << (d - 1)) * d;
    let alpha = solve_exact(&csr, ExactConfig::default()).unwrap().alpha;
    assert_eq!(alpha, m0);
    assert_eq!(2 * alpha, csr.max_degree() * originals.len());
}

/// Theorem 4: on PLB graphs with β > 2 the fitted constant bound must be
/// respected by (indeed, far exceed) the engine's measured accuracy.
#[test]
fn plb_constant_bound_respected() {
    let g = chung_lu(4000, 2.6, 5.0, 42);
    let csr = CsrGraph::from_dynamic(&g);
    let est = PlbFit::default().fit(&csr.degree_histogram()).unwrap();
    let alpha = solve_exact(
        &csr,
        ExactConfig {
            node_budget: 5_000_000,
        },
    )
    .map(|r| r.alpha);
    let e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    if let (Some(alpha), Some(bound)) = (alpha, est.theorem4_ratio()) {
        let measured = alpha as f64 / e.size() as f64;
        assert!(
            measured <= bound + 1e-9,
            "measured ratio {measured:.3} exceeds Theorem 4 bound {bound:.3}"
        );
        // Sanity: the engines are far better than the worst case.
        assert!(measured < 1.2, "swap engines should be near-optimal here");
    }
}

/// The maintained solution of DyTwoSwap dominates DyOneSwap's on the
/// worst-case family after it is perturbed dynamically.
#[test]
fn engines_escape_worst_case_start_dynamically() {
    let g = k_prime(6);
    // Start from the BAD initial solution (the original clique vertices).
    let originals: Vec<u32> = (0..6u32).collect();
    let mut e = EngineBuilder::on(g)
        .initial(&originals)
        .build_as::<DyOneSwap>()
        .unwrap();
    let bad = e.size();
    // Churn a few subdivision edges: each conflicting reinsert gives the
    // engine a chance to swap toward the subdivision side.
    let edges: Vec<(u32, u32)> = e.graph().edges().collect();
    for &(u, v) in edges.iter().take(10) {
        e.try_apply(&dynamis::Update::RemoveEdge(u, v)).unwrap();
        e.try_apply(&dynamis::Update::InsertEdge(u, v)).unwrap();
    }
    assert!(e.size() >= bad, "dynamics never degrade below 1-maximality");
    e.check_consistency().unwrap();
}
