//! Workload-level integration tests: the dataset registry drives real
//! engines end-to-end, streams honor their configured mixes, and the PLB
//! machinery classifies the stand-ins the way the paper's analysis
//! expects.

use dynamis::gen::adversarial::{AdversarialConfig, AdversarialStream};
use dynamis::gen::plb::PlbFit;
use dynamis::gen::{datasets, StreamConfig, Update, UpdateStream};
use dynamis::statics::verify::is_maximal_dynamic;
use dynamis::EngineBuilder;
use dynamis::{CsrGraph, DyOneSwap, DyTwoSwap, DynamicMis};

#[test]
fn dataset_standins_run_end_to_end() {
    // One representative per class, full pipeline: build → stream →
    // engine → invariants.
    for name in ["Epinions", "soc-pokec"] {
        let spec = datasets::by_name(name).unwrap();
        let g = spec.build();
        let ups = UpdateStream::new(&g, StreamConfig::default(), 1).take_updates(2_000);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        e.check_consistency().unwrap();
        assert!(is_maximal_dynamic(e.graph(), &e.solution()));
        assert!(e.size() > 0);
    }
}

#[test]
fn adversarial_stream_keeps_engines_consistent() {
    // The deletion-heavy worst case: insert bursts onto solution
    // vertices, then targeted removal of the highest-degree members.
    // Both eager engines must survive the repair cascades with every
    // framework invariant intact and the solution maximal throughout.
    let g = datasets::by_name("Email").unwrap().build();
    let ups = AdversarialStream::new(
        &g,
        AdversarialConfig {
            burst: 64,
            targets: 16,
            replace: true,
        },
        13,
    )
    .take_updates(3_000);
    let deletions = ups
        .iter()
        .filter(|u| matches!(u, Update::RemoveVertex(..)))
        .count();
    assert!(deletions > 100, "stream must actually be deletion-heavy");
    let mut e1 = EngineBuilder::on(g.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut e2 = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    for u in &ups {
        e1.try_apply(u).unwrap();
        e2.try_apply(u).unwrap();
    }
    e1.check_consistency().unwrap();
    e2.check_consistency().unwrap();
    assert!(is_maximal_dynamic(e1.graph(), &e1.solution()));
    assert!(is_maximal_dynamic(e2.graph(), &e2.solution()));
    // Repairs are the signature of targeted solution-vertex deletion.
    assert!(e1.stats().repairs > 0);
    assert!(e2.stats().repairs > 0);
}

#[test]
fn stream_mix_ratios_are_respected() {
    let g = datasets::by_name("Email").unwrap().build();
    let ups = UpdateStream::new(&g, StreamConfig::default(), 7).take_updates(20_000);
    let (mut ei, mut ed, mut vi, mut vd) = (0usize, 0usize, 0usize, 0usize);
    for u in &ups {
        match u {
            Update::InsertEdge(..) => ei += 1,
            Update::RemoveEdge(..) => ed += 1,
            Update::InsertVertex { .. } => vi += 1,
            Update::RemoveVertex(..) => vd += 1,
        }
    }
    // Default mix is 45/45/5/5; allow generous sampling slack.
    let total = ups.len() as f64;
    assert!((ei as f64 / total - 0.45).abs() < 0.05, "edge inserts {ei}");
    assert!((ed as f64 / total - 0.45).abs() < 0.05, "edge deletes {ed}");
    assert!(
        (vi as f64 / total - 0.05).abs() < 0.03,
        "vertex inserts {vi}"
    );
    assert!(
        (vd as f64 / total - 0.05).abs() < 0.03,
        "vertex deletes {vd}"
    );
}

#[test]
fn plb_classifies_standins_as_beta_above_two() {
    // The paper's premise: "the majority of real-world networks satisfy
    // the power-law bounded property with β > 2". Our stand-ins are
    // generated that way; the fitter must agree.
    let mut above_two = 0usize;
    let mut tested = 0usize;
    for spec in datasets::easy() {
        let g = spec.build();
        let csr = CsrGraph::from_dynamic(&g);
        if let Some(est) = PlbFit::default().fit(&csr.degree_histogram()) {
            tested += 1;
            if est.beta > 2.0 {
                above_two += 1;
            }
        }
    }
    assert!(tested >= 10);
    assert!(
        above_two * 3 >= tested * 2,
        "at least two thirds of easy stand-ins should fit β > 2 ({above_two}/{tested})"
    );
}

#[test]
fn degree_distribution_survives_paper_scale_churn() {
    // The PLB premise must hold on the *dynamic* graph too. At the
    // paper's heaviest ratio (#updates ≈ n, the "hot topic" scenario)
    // the tail survives; uniform churn only Poissonizes the distribution
    // far beyond that regime.
    let spec = datasets::by_name("web-Google").unwrap();
    let g = spec.build();
    let n = g.num_vertices();
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), 13);
    let _ups = stream.take_updates(n); // #updates = n
    let end = stream.shadow();
    let csr = CsrGraph::from_dynamic(end);
    let est = PlbFit::default().fit(&csr.degree_histogram()).unwrap();
    assert!(
        est.beta > 1.5 && est.beta < 4.0,
        "churned graph lost its power-law shape: β = {}",
        est.beta
    );
    assert!(csr.max_degree() > 3 * csr.avg_degree() as usize);
}
