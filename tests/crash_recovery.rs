//! Real crash tests: a durable `net-serve` process is killed with
//! SIGKILL mid-service (no destructors, no flushes — the honest crash),
//! restarted on the same data directory, and must come back holding
//! every acknowledged update, with subscribers from the first life
//! resuming gap-free from their last applied sequence number.
//!
//! Under `--wal-sync always` the server fsyncs an accepted update
//! *before* acknowledging it, so the recovery contract is exact:
//! `RECOVERED seq=N` with N = the number of acknowledged updates.

use dynamis::net::{NetClient, RemoteMirror};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynamis_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A path graph 0–1–2–…–39 as an edge-list file: every later
/// `InsertEdge(i, i + 2)` is fresh, so the test stream is 100% accepted.
fn write_path_graph(dir: &Path) -> PathBuf {
    let p = dir.join("g.txt");
    let mut body = String::new();
    for i in 0..39u32 {
        body.push_str(&format!("{} {}\n", i, i + 1));
    }
    std::fs::write(&p, body).unwrap();
    p
}

struct Server {
    child: Child,
    // Held open: EOF on the server's stdin means graceful shutdown.
    _stdin: ChildStdin,
    addr: String,
    recovered_line: String,
}

fn start_server(graph: &Path, data_dir: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dynamis"))
        .args([
            "net-serve",
            "--graph",
            graph.to_str().unwrap(),
            "--k",
            "2",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--wal-sync",
            "always",
            "--checkpoint-every",
            "8",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut recovered_line = String::new();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before LISTENING")
            .unwrap();
        if line.starts_with("RECOVERED ") {
            recovered_line = line;
        } else if let Some(a) = line.strip_prefix("LISTENING ") {
            break a.to_string();
        }
    };
    Server {
        child,
        _stdin: stdin,
        addr,
        recovered_line,
    }
}

/// Drives `sub` until the mirror reaches `seq` (or panics at deadline).
fn catch_up(sub: &mut dynamis::net::Subscription, mirror: &mut RemoteMirror, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while mirror.seq() < seq {
        assert!(
            Instant::now() < deadline,
            "mirror stuck at {}",
            mirror.seq()
        );
        if let Some(ev) = sub.next_event().unwrap() {
            mirror.apply_event(&ev).unwrap();
        }
    }
}

#[test]
fn kill_dash_nine_loses_nothing_and_subscribers_resume_gap_free() {
    let dir = temp_dir("kill9");
    let graph = write_path_graph(&dir);
    let data = dir.join("wal");
    std::fs::create_dir_all(&data).unwrap();

    // ---- first life --------------------------------------------------
    let mut server = start_server(&graph, &data);
    assert_eq!(server.recovered_line, "RECOVERED seq=0 replayed=0");

    let mut writer = NetClient::connect(&server.addr).unwrap();
    let sub_client = NetClient::connect(&server.addr).unwrap();
    let mut sub = sub_client.subscribe(0).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut mirror = RemoteMirror::new();

    // 30 guaranteed-accepted updates, acked (hence fsynced) one at a
    // time; remember the broadcast seq of the last one.
    let mut last_broadcast = 0;
    for i in 0..30u32 {
        last_broadcast = writer.apply(dynamis::Update::InsertEdge(i, i + 2)).unwrap();
    }
    catch_up(&mut sub, &mut mirror, last_broadcast);
    let pre_crash_seq = mirror.seq();
    let pre_crash_len = mirror.len();
    assert!(pre_crash_len > 0);

    // ---- the crash ---------------------------------------------------
    server.child.kill().unwrap(); // SIGKILL: no drop handlers run
    server.child.wait().unwrap();
    drop(sub);
    drop(writer);

    // ---- second life -------------------------------------------------
    let server = start_server(&graph, &data);
    assert_eq!(
        server.recovered_line, "RECOVERED seq=30 replayed=6",
        "every acknowledged update must be recovered (checkpoints land at \
         seq 8/16/24 with --checkpoint-every 8, so 6 WAL records replay)"
    );

    // The old subscriber reconnects where it left off: it must resume
    // without a gap — either a clean continuation or a checkpoint
    // re-seed at a sequence at or above its own, never behind it.
    let sub_client = NetClient::connect(&server.addr).unwrap();
    let mut sub = sub_client.subscribe(pre_crash_seq).unwrap();
    sub.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();

    let mut writer = NetClient::connect(&server.addr).unwrap();
    let mut last_broadcast = 0;
    for i in 0..10u32 {
        last_broadcast = writer.apply(dynamis::Update::InsertEdge(i, i + 3)).unwrap();
    }
    assert!(last_broadcast > pre_crash_seq);
    catch_up(&mut sub, &mut mirror, last_broadcast);

    // The resumed replica equals the server's state, exactly.
    let (snap_seq, solution) = writer.snapshot().unwrap();
    assert!(snap_seq >= last_broadcast);
    catch_up(&mut sub, &mut mirror, snap_seq);
    assert_eq!(mirror.solution(), solution);

    // Graceful shutdown this time (EOF on stdin).
    drop(server);
}

/// Killing the server before anything was accepted recovers to seq 0
/// and serves normally.
#[test]
fn kill_dash_nine_with_empty_wal_restarts_clean() {
    let dir = temp_dir("kill9_empty");
    let graph = write_path_graph(&dir);
    let data = dir.join("wal");
    std::fs::create_dir_all(&data).unwrap();

    let mut server = start_server(&graph, &data);
    server.child.kill().unwrap();
    server.child.wait().unwrap();

    let server = start_server(&graph, &data);
    assert_eq!(server.recovered_line, "RECOVERED seq=0 replayed=0");
    let mut client = NetClient::connect(&server.addr).unwrap();
    assert!(client.len().unwrap() > 0);
    client.apply(dynamis::Update::InsertEdge(0, 5)).unwrap();
}

/// The offline `dynamis recover` subcommand agrees with the server's
/// own recovery and leaves the directory servable.
#[test]
fn recover_subcommand_verify_and_replay() {
    let dir = temp_dir("recover_cmd");
    let graph = write_path_graph(&dir);
    let data = dir.join("wal");
    std::fs::create_dir_all(&data).unwrap();

    let mut server = start_server(&graph, &data);
    let mut writer = NetClient::connect(&server.addr).unwrap();
    for i in 0..12u32 {
        writer.apply(dynamis::Update::InsertEdge(i, i + 2)).unwrap();
    }
    server.child.kill().unwrap();
    server.child.wait().unwrap();
    drop(writer);

    let out = Command::new(env!("CARGO_BIN_EXE_dynamis"))
        .args(["recover", "--data-dir", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("recovered seq=12"),
        "verify output was: {text}"
    );
    assert!(text.contains("verified"), "verify output was: {text}");

    let out = Command::new(env!("CARGO_BIN_EXE_dynamis"))
        .args([
            "recover",
            "--data-dir",
            data.to_str().unwrap(),
            "--mode",
            "replay",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("repaired, seq=12"),
        "replay output was: {text}"
    );

    // The replayed directory still serves.
    let server = start_server(&graph, &data);
    assert_eq!(server.recovered_line, "RECOVERED seq=12 replayed=0");
}
