//! Behavioral tests of the engine machinery that the invariant suites
//! don't pin down: statistics counters, perturbation effects, batching
//! equivalence, and heap accounting.

use dynamis::core::EngineConfig;
use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::verify::is_k_maximal_dynamic;
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis, Update};

#[test]
fn stats_counters_track_what_happened() {
    // Star: inserting the center edge forces an eviction and a 1-swap
    // cascade; counters must reflect real events.
    let g = dynamis::DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3)]);
    let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
    let before = e.stats();
    e.try_apply(&Update::InsertEdge(0, 4)).unwrap();
    e.try_apply(&Update::RemoveEdge(0, 1)).unwrap();
    let after = e.stats();
    assert_eq!(after.updates, before.updates + 2);
    assert!(after.one_swaps >= before.one_swaps);
    assert!(after.repairs >= before.repairs);
}

#[test]
fn two_swap_counter_fires_on_a_crafted_two_swap() {
    // Path v0-v1-v2-v3-v4 with I = {v1, v3} 1-maximal but not 2-maximal?
    // No — use the triangle-of-pairs shape: remove {a, b}, insert
    // {x, y, z}. Build: a adjacent to x, y; b adjacent to y?, z; x, y, z
    // mutually non-adjacent, a–b non-adjacent, and no 1-swap anywhere.
    // a = 0, b = 1, x = 2, y = 3, z = 4; x–a, y–a, y–b (count 2? y sees a
    // and b), z–b. ¯I₁(0) = {2}, ¯I₁(1) = {4}, ¯I₂({0,1}) = {3}:
    // cliques everywhere, so 1-maximal. The triple {2, 3, 4} is
    // independent → a 2-swap.
    let g = dynamis::DynamicGraph::from_edges(5, &[(0, 2), (0, 3), (1, 3), (1, 4)]);
    assert!(is_k_maximal_dynamic(&g, &[0, 1], 1), "no 1-swap by design");
    assert!(!is_k_maximal_dynamic(&g, &[0, 1], 2), "2-swap exists");
    let e = EngineBuilder::on(g)
        .initial(&[0, 1])
        .build_as::<DyTwoSwap>()
        .unwrap();
    assert_eq!(e.size(), 3, "the 2-swap is taken at construction");
    assert!(e.stats().two_swaps >= 1, "counted as a 2-swap");
}

#[test]
fn perturbation_changes_trajectories_but_keeps_invariants() {
    let g = gnm(40, 80, 3);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 4).take_updates(400);
    let mut plain = EngineBuilder::on(g.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut perturbed = EngineBuilder::on(g)
        .config(EngineConfig {
            perturbation: true,
            perturb_budget: 2,
        })
        .build_as::<DyOneSwap>()
        .unwrap();
    for u in &ups {
        plain.try_apply(u).unwrap();
        perturbed.try_apply(u).unwrap();
    }
    plain.check_consistency().unwrap();
    perturbed.check_consistency().unwrap();
    assert!(is_k_maximal_dynamic(
        perturbed.graph(),
        &perturbed.solution(),
        1
    ));
    assert!(
        perturbed.stats().perturbations > 0,
        "perturbation must actually fire on a 400-update run"
    );
}

#[test]
fn batch_and_per_update_end_in_the_same_invariant_class() {
    let g = gnm(30, 60, 7);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 8).take_updates(300);
    let mut one_by_one = EngineBuilder::on(g.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    for u in &ups {
        one_by_one.try_apply(u).unwrap();
    }
    let mut batched = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    for chunk in ups.chunks(64) {
        batched.try_apply_batch(chunk).unwrap();
    }
    for e in [&one_by_one, &batched] {
        e.check_consistency().unwrap();
        assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
    }
    assert_eq!(
        one_by_one.graph().num_edges(),
        batched.graph().num_edges(),
        "same final graph"
    );
}

#[test]
fn heap_accounting_is_monotone_in_graph_size() {
    let small = EngineBuilder::on(gnm(100, 200, 1))
        .build_as::<DyTwoSwap>()
        .unwrap();
    let large = EngineBuilder::on(gnm(10_000, 20_000, 1))
        .build_as::<DyTwoSwap>()
        .unwrap();
    assert!(large.heap_bytes() > small.heap_bytes());
    assert!(small.heap_bytes() > 0);
}

#[test]
fn duplicate_edge_insert_and_missing_edge_remove_are_rejected() {
    // The session API rejects redundant operations gracefully — an
    // `Err` with the engine state untouched, never a panic or silent
    // corruption.
    let g = dynamis::DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
    let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    let size = e.size();
    assert!(matches!(
        e.try_apply(&Update::InsertEdge(0, 1)), // already present
        Err(dynamis::EngineError::DuplicateEdge(0, 1))
    ));
    assert!(matches!(
        e.try_apply(&Update::RemoveEdge(0, 2)), // never existed
        Err(dynamis::EngineError::MissingEdge(0, 2))
    ));
    e.check_consistency().unwrap();
    assert_eq!(e.size(), size);
    assert_eq!(e.graph().num_edges(), 2);
}

#[test]
fn solution_and_contains_agree() {
    let g = gnm(50, 120, 11);
    let e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
    let sol = e.solution();
    let set: std::collections::BTreeSet<u32> = sol.iter().copied().collect();
    for v in 0..50u32 {
        assert_eq!(e.contains(v), set.contains(&v), "vertex {v}");
    }
    assert_eq!(sol.len(), e.size());
    let mut sorted = sol.clone();
    sorted.sort_unstable();
    assert_eq!(sol, sorted, "solution() returns sorted ids");
}
