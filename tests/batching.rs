//! Batch-mode extension: `try_apply_batch` must preserve every invariant
//! of per-update application (k-maximality, framework consistency) while
//! skipping intermediate swap cascades. The eager engines override the
//! trait default with a real deferred-drain batch path; every baseline
//! gets a correct batch path from the trait default — covered uniformly
//! here.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::verify::{is_k_maximal_dynamic, is_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{
    DgDis, DyArw, DyOneSwap, DyTwoSwap, DynamicGraph, DynamicMis, MaximalOnly, Restart,
    RestartSolver, SolutionMirror,
};

#[test]
fn batched_one_swap_is_one_maximal() {
    for seed in 0..5u64 {
        let g = gnm(30, 60, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 1).take_updates(300);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for chunk in ups.chunks(50) {
            e.try_apply_batch(chunk).unwrap();
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                "seed {seed}: batch left a 1-swap open"
            );
        }
    }
}

#[test]
fn batched_two_swap_is_two_maximal() {
    for seed in 0..4u64 {
        let g = gnm(22, 40, seed + 9);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 3).take_updates(200);
        let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for chunk in ups.chunks(40) {
            e.try_apply_batch(chunk).unwrap();
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 2),
                "seed {seed}: batch left a ≤2-swap open"
            );
        }
    }
}

#[test]
fn batch_and_per_update_reach_same_graph() {
    let g = gnm(40, 80, 17);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 18).take_updates(400);
    let mut per = EngineBuilder::on(g.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    let mut bat = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    for u in &ups {
        per.try_apply(u).unwrap();
    }
    bat.try_apply_batch(&ups).unwrap();
    assert_eq!(per.graph().num_edges(), bat.graph().num_edges());
    assert_eq!(per.graph().num_vertices(), bat.graph().num_vertices());
    // Solutions may differ (both are valid 2-maximal sets), but both are
    // bound by the same guarantee and neither may be trivially bad.
    let floor = per.size().min(bat.size()) as f64;
    let ceil = per.size().max(bat.size()) as f64;
    assert!(
        ceil / floor < 1.25,
        "batch quality collapsed: {floor} vs {ceil}"
    );
}

#[test]
fn batch_skips_intermediate_swaps() {
    // A burst that inserts and immediately deletes the same edge over and
    // over: per-update mode churns swaps, batch mode sees a near-no-op.
    let g = gnm(30, 60, 23);
    let mut ups = Vec::new();
    let stream_edges: Vec<(u32, u32)> = g.edges().take(10).collect();
    for _ in 0..20 {
        for &(u, v) in &stream_edges {
            ups.push(dynamis::Update::RemoveEdge(u, v));
            ups.push(dynamis::Update::InsertEdge(u, v));
        }
    }
    let mut per = EngineBuilder::on(g.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut bat = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
    for u in &ups {
        per.try_apply(u).unwrap();
    }
    bat.try_apply_batch(&ups).unwrap();
    assert!(
        bat.stats().one_swaps <= per.stats().one_swaps,
        "batching should not create extra swap work"
    );
    bat.check_consistency().unwrap();
}

/// Every baseline answers `try_apply_batch` through the trait default:
/// chunked batch application reaches the same graph as per-update
/// application, stays maximal (the invariant all four maintain), and
/// the returned deltas merge into an exact mirror of the solution.
#[test]
fn baselines_batch_via_the_trait_default() {
    let g = gnm(30, 60, 41);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 42).take_updates(240);
    let on = |g: &DynamicGraph| EngineBuilder::on(g.clone());
    let engines: Vec<Box<dyn DynamicMis>> = vec![
        Box::new(on(&g).build_as::<DyArw>().unwrap()),
        Box::new(on(&g).build_as::<MaximalOnly>().unwrap()),
        Box::new(DgDis::one_dis(on(&g)).unwrap()),
        Box::new(DgDis::two_dis(on(&g)).unwrap()),
        Box::new(Restart::from_builder(on(&g), RestartSolver::Greedy, 16).unwrap()),
    ];
    for mut e in engines {
        let name = e.name();
        let mut mirror = SolutionMirror::new();
        mirror.apply(&e.drain_delta()).unwrap();
        for chunk in ups.chunks(48) {
            let delta = e
                .try_apply_batch(chunk)
                .unwrap_or_else(|err| panic!("{name}: batch rejected: {err}"));
            mirror.apply(&delta).unwrap();
            assert_eq!(
                mirror.solution(),
                e.solution(),
                "{name}: batch delta drifted"
            );
        }
        // Restart is only guaranteed maximal right after a solve; the
        // others maintain maximality continuously.
        if !name.starts_with("Restart") {
            assert!(
                is_maximal_dynamic(e.graph(), &e.solution()),
                "{name}: batch left the solution non-maximal"
            );
        }
    }
}

/// A rejected update inside a batch reports its index, keeps the valid
/// prefix applied, and leaves the engine consistent — for the real
/// batch path (eager engines) and the trait default (baselines) alike.
#[test]
fn batch_rejection_reports_index_and_keeps_prefix() {
    let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
    let schedule = [
        dynamis::Update::RemoveEdge(1, 2), // valid
        dynamis::Update::InsertEdge(0, 1), // duplicate → rejected at 1
        dynamis::Update::RemoveEdge(3, 4), // never reached
    ];
    // Eager engine: overridden batch path.
    let g = DynamicGraph::from_edges(5, &edges);
    let mut eager: DyTwoSwap = EngineBuilder::on(g).build_as().unwrap();
    let err = eager.try_apply_batch(&schedule).unwrap_err();
    assert!(matches!(err, dynamis::EngineError::Batch { index: 1, .. }));
    assert!(!eager.graph().has_edge(1, 2), "prefix applied");
    assert!(eager.graph().has_edge(3, 4), "suffix not applied");
    eager.check_consistency().unwrap();
    assert!(is_k_maximal_dynamic(eager.graph(), &eager.solution(), 2));
    // Baseline: trait-default batch path.
    let g = DynamicGraph::from_edges(5, &edges);
    let mut base: DyArw = EngineBuilder::on(g).build_as().unwrap();
    let err = base.try_apply_batch(&schedule).unwrap_err();
    assert!(matches!(err, dynamis::EngineError::Batch { index: 1, .. }));
    assert!(!base.graph().has_edge(1, 2));
    assert!(base.graph().has_edge(3, 4));
}
