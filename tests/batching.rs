//! Batch-mode extension: `apply_batch` must preserve every invariant of
//! per-update application (k-maximality, framework consistency) while
//! skipping intermediate swap cascades.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::verify::is_k_maximal_dynamic;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis};

#[test]
fn batched_one_swap_is_one_maximal() {
    for seed in 0..5u64 {
        let g = gnm(30, 60, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 1).take_updates(300);
        let mut e = DyOneSwap::new(g, &[]);
        for chunk in ups.chunks(50) {
            e.apply_batch(chunk);
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                "seed {seed}: batch left a 1-swap open"
            );
        }
    }
}

#[test]
fn batched_two_swap_is_two_maximal() {
    for seed in 0..4u64 {
        let g = gnm(22, 40, seed + 9);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 3).take_updates(200);
        let mut e = DyTwoSwap::new(g, &[]);
        for chunk in ups.chunks(40) {
            e.apply_batch(chunk);
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 2),
                "seed {seed}: batch left a ≤2-swap open"
            );
        }
    }
}

#[test]
fn batch_and_per_update_reach_same_graph() {
    let g = gnm(40, 80, 17);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 18).take_updates(400);
    let mut per = DyTwoSwap::new(g.clone(), &[]);
    let mut bat = DyTwoSwap::new(g, &[]);
    for u in &ups {
        per.apply_update(u);
    }
    bat.apply_batch(&ups);
    assert_eq!(per.graph().num_edges(), bat.graph().num_edges());
    assert_eq!(per.graph().num_vertices(), bat.graph().num_vertices());
    // Solutions may differ (both are valid 2-maximal sets), but both are
    // bound by the same guarantee and neither may be trivially bad.
    let floor = per.size().min(bat.size()) as f64;
    let ceil = per.size().max(bat.size()) as f64;
    assert!(
        ceil / floor < 1.25,
        "batch quality collapsed: {floor} vs {ceil}"
    );
}

#[test]
fn batch_skips_intermediate_swaps() {
    // A burst that inserts and immediately deletes the same edge over and
    // over: per-update mode churns swaps, batch mode sees a near-no-op.
    let g = gnm(30, 60, 23);
    let mut ups = Vec::new();
    let stream_edges: Vec<(u32, u32)> = g.edges().take(10).collect();
    for _ in 0..20 {
        for &(u, v) in &stream_edges {
            ups.push(dynamis::Update::RemoveEdge(u, v));
            ups.push(dynamis::Update::InsertEdge(u, v));
        }
    }
    let mut per = DyOneSwap::new(g.clone(), &[]);
    let mut bat = DyOneSwap::new(g, &[]);
    for u in &ups {
        per.apply_update(u);
    }
    bat.apply_batch(&ups);
    assert!(
        bat.stats().one_swaps <= per.stats().one_swaps,
        "batching should not create extra swap work"
    );
    bat.check_consistency().unwrap();
}
