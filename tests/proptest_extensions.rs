//! Property-based tests for the extension modules: snapshots, certify,
//! Restart, GenericKSwap at k = 3, temporal workloads, the matching
//! machinery, and the intrusive half-edge payload layer.

use dynamis::baselines::{Restart, RestartSolver};
use dynamis::gen::temporal::{burst, BurstConfig};
use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::graph::algo::{greedy_matching, hopcroft_karp, koenig_vertex_cover, two_coloring};
use dynamis::statics::certify::{certify_independent, certify_one_maximal};
use dynamis::statics::verify::{compact_live, is_k_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap, Snapshot};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Snapshot capture → encode → decode → resume is lossless and the
    /// resumed engine is immediately consistent.
    #[test]
    fn snapshot_round_trip_any_engine_state(seed in 0u64..10_000, n in 6usize..24, steps in 0usize..60) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0x51a).take_updates(steps);
        let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        let snap = Snapshot::capture(&e);
        let back = Snapshot::decode(&snap.encode()).map_err(|x| TestCaseError::fail(x.to_string()))?;
        prop_assert_eq!(&back.solution, &snap.solution);
        let resumed = EngineBuilder::new().resume(back.clone()).build_as::<DyTwoSwap>().unwrap();
        resumed.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert_eq!(resumed.size(), e.size());
    }

    /// The scalable certifier accepts every engine state the brute-force
    /// checker accepts, on arbitrary schedules.
    #[test]
    fn certifier_accepts_engine_output(seed in 0u64..10_000, n in 6usize..24, steps in 0usize..50) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xcafe).take_updates(steps);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        let sol = e.solution();
        certify_independent(e.graph(), &sol).map_err(|v| TestCaseError::fail(v.to_string()))?;
        certify_one_maximal(e.graph(), &sol).map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert!(is_k_maximal_dynamic(e.graph(), &sol, 1));
    }

    /// GenericKSwap(k = 3) maintains 3-maximality (and hence 1-/2-) on
    /// arbitrary schedules.
    #[test]
    fn generic_k3_invariant(seed in 0u64..10_000, n in 6usize..16, steps in 0usize..40) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xabba).take_updates(steps);
        let mut e = EngineBuilder::on(g).k(3).build_as::<GenericKSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        prop_assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 3));
    }

    /// Restart keeps a valid independent set at every interval setting.
    #[test]
    fn restart_always_valid(seed in 0u64..10_000, n in 6usize..24, steps in 1usize..50, interval in 1usize..20) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xf00d).take_updates(steps);
        let mut e = Restart::from_builder(EngineBuilder::on(g), RestartSolver::Greedy, interval).unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
            e.check_valid().map_err(TestCaseError::fail)?;
        }
    }

    /// Burst workloads replay cleanly and leave engines 1-maximal.
    #[test]
    fn burst_workloads_preserve_invariants(seed in 0u64..10_000, n in 8usize..30, bursts in 1usize..5) {
        let base = gnm(n, n, seed);
        let wl = burst(base, BurstConfig { bursts, burst_size: 6, decay: 0.5 }, seed ^ 0xd00d);
        let mut e = EngineBuilder::on(wl.graph.clone()).build_as::<DyOneSwap>().unwrap();
        for u in &wl.updates {
            e.try_apply(u).unwrap();
        }
        e.check_consistency().map_err(TestCaseError::fail)?;
        prop_assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
    }

    /// Matching properties on arbitrary graphs: greedy is a valid maximal
    /// matching; on bipartite graphs Hopcroft–Karp ≥ greedy and König's
    /// cover size equals the matching size.
    #[test]
    fn matching_properties(seed in 0u64..10_000, n in 2usize..30) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        let (csr, _) = compact_live(&g);
        let gm = greedy_matching(&csr);
        gm.validate(&csr).map_err(TestCaseError::fail)?;
        if two_coloring(&csr).is_some() {
            let hk = hopcroft_karp(&csr).expect("bipartite");
            hk.validate(&csr).map_err(TestCaseError::fail)?;
            prop_assert!(hk.size >= gm.size);
            prop_assert!(2 * gm.size >= hk.size, "maximal ≥ half of maximum");
            let cover = koenig_vertex_cover(&csr).expect("bipartite");
            prop_assert_eq!(cover.len(), hk.size);
        }
    }

    /// The two certifier entry points agree with a from-scratch solution
    /// check on arbitrary (graph, subset) pairs, including invalid ones.
    #[test]
    fn certifier_rejects_what_it_should(seed in 0u64..10_000, n in 4usize..20) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, seed);
        // Candidate "solution": every third vertex — often not independent.
        let cand: Vec<u32> = (0..n as u32).step_by(3).collect();
        let ok = certify_independent(&g, &cand).is_ok();
        let truly_independent = {
            let (csr, map) = compact_live(&g);
            let mapped: Vec<u32> = cand.iter().map(|&v| map[v as usize]).collect();
            let set: std::collections::BTreeSet<u32> = mapped.iter().copied().collect();
            let mut ind = true;
            'outer: for &v in &mapped {
                for &u in csr.neighbors(v) {
                    if set.contains(&u) {
                        ind = false;
                        break 'outer;
                    }
                }
            }
            ind
        };
        prop_assert_eq!(ok, truly_independent);
    }
}

/// Shadow-model property for the intrusive half-edge payload layer:
/// a `DynamicGraph` driven through random insert/remove/mark/unmark
/// interleavings must (a) pass the full mirror + payload consistency
/// check and (b) report exactly the marked-neighbor sets an independent
/// shadow model predicts.
mod payload_slots {
    use dynamis::DynamicGraph;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    /// One random interleaving step applied to both the graph and the
    /// shadow set of marked (owner, neighbor) pairs.
    fn step(g: &mut DynamicGraph, shadow: &mut BTreeSet<(u32, u32)>, rng: &mut SmallRng) {
        let cap = g.capacity() as u32;
        match rng.gen_range(0u32..100) {
            // Insert a random edge.
            0..=39 => {
                let (u, v) = (rng.gen_range(0..cap), rng.gen_range(0..cap));
                if u != v && g.is_alive(u) && g.is_alive(v) {
                    g.insert_edge(u, v).unwrap();
                }
            }
            // Remove a random edge: its marks die with it.
            40..=64 => {
                let (u, v) = (rng.gen_range(0..cap), rng.gen_range(0..cap));
                if u != v && g.is_alive(u) && g.is_alive(v) && g.remove_edge(u, v).unwrap() {
                    shadow.remove(&(u, v));
                    shadow.remove(&(v, u));
                }
            }
            // Toggle a mark on a random half-edge.
            65..=89 => {
                let u = rng.gen_range(0..cap);
                if g.is_alive(u) && g.degree(u) > 0 {
                    let pos = rng.gen_range(0..g.degree(u)) as u32;
                    let n = g.neighbor_at(u, pos as usize);
                    if g.is_marked(u, pos) {
                        g.unmark_neighbor(u, pos);
                        assert!(shadow.remove(&(u, n)), "shadow missing a mark");
                    } else {
                        g.mark_neighbor(u, pos);
                        assert!(shadow.insert((u, n)), "shadow had a phantom mark");
                    }
                }
            }
            // Remove a vertex: marks it held and marks on edges to it die.
            _ => {
                let v = rng.gen_range(0..cap);
                if g.is_alive(v) && g.num_vertices() > 2 {
                    g.remove_vertex(v).unwrap();
                    shadow.retain(|&(a, b)| a != v && b != v);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Mirror/payload-slot consistency survives arbitrary
        /// interleavings, and the marked sets match the shadow exactly.
        #[test]
        fn marks_track_shadow_model(seed in 0u64..100_000, n in 4usize..40, steps in 1usize..400) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = DynamicGraph::new();
            g.add_vertices(n);
            let mut shadow: BTreeSet<(u32, u32)> = BTreeSet::new();
            for _ in 0..steps {
                step(&mut g, &mut shadow, &mut rng);
            }
            g.check_consistency().map_err(TestCaseError::fail)?;
            // The graph's marked sets must equal the shadow's, per vertex.
            for v in 0..g.capacity() as u32 {
                let mut got: Vec<u32> = if g.is_alive(v) {
                    g.marked_neighbors(v).collect()
                } else {
                    Vec::new()
                };
                got.sort_unstable();
                let want: Vec<u32> = shadow
                    .range((v, 0)..=(v, u32::MAX))
                    .map(|&(_, n)| n)
                    .collect();
                prop_assert_eq!(got, want, "marked set of vertex {} diverged", v);
            }
        }

        /// Handles stay coherent: after arbitrary churn, every edge's
        /// handle resolves to half-edges that point back at each other.
        #[test]
        fn edge_handles_stay_reciprocal(seed in 0u64..100_000, n in 4usize..30, steps in 1usize..250) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = DynamicGraph::new();
            g.add_vertices(n);
            let mut shadow = BTreeSet::new();
            for _ in 0..steps {
                step(&mut g, &mut shadow, &mut rng);
            }
            let edges: Vec<(u32, u32)> = g.edges().collect();
            for (u, v) in edges {
                let h = g.edge_handle(u, v).expect("listed edge must resolve");
                prop_assert_eq!(g.neighbor_at(h.u, h.pos_u as usize), h.v);
                prop_assert_eq!(g.neighbor_at(h.v, h.pos_v as usize), h.u);
            }
        }
    }
}
