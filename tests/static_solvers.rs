//! Integration tests across the static-solver stack: the exact solver,
//! ARW, greedy, and reducing–peeling cross-validated on generated
//! families with known or computable optima.

use dynamis::gen::structured::{complete, cycle, hypercube, path, star};
use dynamis::gen::{ba::barabasi_albert, powerlaw::chung_lu, uniform::gnp};
use dynamis::statics::arw::{arw_local_search, ArwConfig};
use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::{is_independent, is_maximal};
use dynamis::statics::{greedy_mis, reducing_peeling};
use dynamis::CsrGraph;

fn csr(g: &dynamis::DynamicGraph) -> CsrGraph {
    CsrGraph::from_dynamic(g)
}

#[test]
fn exact_on_closed_form_families() {
    // α(P_n) = ⌈n/2⌉, α(C_n) = ⌊n/2⌋, α(K_n) = 1, α(K_{1,n-1}) = n−1,
    // α(Q_d) = 2^{d-1}.
    for n in [2usize, 5, 8, 11] {
        let a = solve_exact(&csr(&path(n)), ExactConfig::default()).unwrap();
        assert_eq!(a.alpha, n.div_ceil(2), "path P_{n}");
    }
    for n in [3usize, 6, 9] {
        let a = solve_exact(&csr(&cycle(n)), ExactConfig::default()).unwrap();
        assert_eq!(a.alpha, n / 2, "cycle C_{n}");
    }
    assert_eq!(
        solve_exact(&csr(&complete(7)), ExactConfig::default())
            .unwrap()
            .alpha,
        1
    );
    assert_eq!(
        solve_exact(&csr(&star(9)), ExactConfig::default())
            .unwrap()
            .alpha,
        8
    );
    for d in [2usize, 3, 4] {
        let a = solve_exact(&csr(&hypercube(d)), ExactConfig::default()).unwrap();
        assert_eq!(a.alpha, 1 << (d - 1), "hypercube Q_{d}");
    }
}

#[test]
fn heuristic_sandwich_on_random_families() {
    // greedy ≤ ARW ≤ α and peeling ≤ α, all independent and maximal.
    for seed in 0..3u64 {
        for g in [
            gnp(120, 0.05, seed),
            chung_lu(150, 2.5, 4.0, seed),
            barabasi_albert(130, 2, seed),
        ] {
            let c = csr(&g);
            let all: Vec<u32> = (0..c.num_vertices() as u32).collect();
            let greedy = greedy_mis(&c);
            let arw = arw_local_search(
                &c,
                ArwConfig {
                    perturbations: 15,
                    seed,
                },
            );
            let peel = reducing_peeling(&c);
            for (name, sol) in [("greedy", &greedy), ("arw", &arw), ("peel", &peel)] {
                assert!(is_independent(&c, sol), "{name} not independent");
                assert!(is_maximal(&c, sol, &all), "{name} not maximal");
            }
            assert!(arw.len() >= greedy.len(), "ARW must not lose to greedy");
            if let Some(exact) = solve_exact(
                &c,
                ExactConfig {
                    node_budget: 2_000_000,
                },
            ) {
                assert!(arw.len() <= exact.alpha);
                assert!(peel.len() <= exact.alpha);
                // Reducing–peeling is near-optimal on sparse graphs.
                assert!(
                    peel.len() * 100 >= exact.alpha * 90,
                    "peeling unexpectedly weak: {} vs {}",
                    peel.len(),
                    exact.alpha
                );
            }
        }
    }
}

#[test]
fn exact_reductions_alone_solve_very_sparse_graphs() {
    // Trees and near-trees collapse under degree-0/1/2 reductions, so the
    // node count stays at the single bootstrap node.
    let g = chung_lu(400, 2.9, 1.5, 3);
    let r = solve_exact(&csr(&g), ExactConfig::default()).unwrap();
    assert!(
        r.nodes < 100,
        "sparse power-law graphs should kernelize away (nodes = {})",
        r.nodes
    );
}

#[test]
fn dataset_standins_have_computable_alpha_in_easy_class() {
    // Smoke the paper's easy/hard split on two representatives.
    let easy = dynamis::gen::datasets::by_name("Email").unwrap().build();
    let r = solve_exact(
        &csr(&easy),
        ExactConfig {
            node_budget: 3_000_000,
        },
    );
    assert!(r.is_some(), "Email stand-in must be easy for the solver");
    let sol = r.unwrap();
    let c = csr(&easy);
    assert!(is_independent(&c, &sol.solution));
    assert_eq!(sol.solution.len(), sol.alpha);
}
