//! Engines under structured temporal workloads (sliding windows, bursts)
//! and workload-trace persistence: the extension workloads must exercise
//! the same invariant machinery as the paper's uniform streams.

use dynamis::gen::temporal::{burst, sliding_window, BurstConfig, SlidingWindowConfig};
use dynamis::gen::trace::{read_trace, write_trace};
use dynamis::gen::{rmat, uniform::gnm, RmatConfig};
use dynamis::statics::verify::{is_k_maximal_dynamic, is_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis, MaximalOnly};

#[test]
fn one_swap_survives_sliding_window() {
    let wl = sliding_window(
        SlidingWindowConfig {
            n: 60,
            window: 120,
            arrivals: 600,
        },
        11,
    );
    let mut e = EngineBuilder::on(wl.graph.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    for (i, u) in wl.updates.iter().enumerate() {
        e.try_apply(u).unwrap();
        if i % 97 == 0 {
            e.check_consistency().unwrap();
            assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
        }
    }
    // Window steady state: at most `window` edges live.
    assert!(e.graph().num_edges() <= 120);
    assert!(e.size() > 0);
}

#[test]
fn two_swap_survives_bursts() {
    let base = gnm(70, 100, 3);
    let wl = burst(
        base,
        BurstConfig {
            bursts: 6,
            burst_size: 30,
            decay: 0.8,
        },
        5,
    );
    let mut e = EngineBuilder::on(wl.graph.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    for (i, u) in wl.updates.iter().enumerate() {
        e.try_apply(u).unwrap();
        if i % 71 == 0 {
            e.check_consistency().unwrap();
        }
    }
    assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
    assert_eq!(e.graph().num_edges(), wl.final_graph().num_edges());
}

/// A burst hammers one hub; right after the spike the hub has high degree
/// and should not sit in a 1-maximal solution unless it must. Quality
/// comparison: the swap engine must match or beat the repair-only
/// baseline on the same burst workload (both are maximal; the engine has
/// strictly more machinery).
#[test]
fn burst_quality_engine_at_least_matches_repair_baseline() {
    let base = gnm(80, 140, 9);
    let wl = burst(base, BurstConfig::default(), 13);
    let mut engine = EngineBuilder::on(wl.graph.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut floor = EngineBuilder::on(wl.graph.clone())
        .build_as::<MaximalOnly>()
        .unwrap();
    for u in &wl.updates {
        engine.try_apply(u).unwrap();
        floor.try_apply(u).unwrap();
    }
    assert!(is_maximal_dynamic(floor.graph(), &floor.solution()));
    assert!(
        engine.size() >= floor.size(),
        "swap machinery lost to repair-only: {} < {}",
        engine.size(),
        floor.size()
    );
}

/// Trace round trip is behavior-preserving: running the same engine on
/// the original and the re-read workload produces identical solutions.
#[test]
fn trace_round_trip_preserves_engine_behavior() {
    let base = gnm(40, 70, 21);
    let wl = burst(base, BurstConfig::default(), 2);
    let mut buf = Vec::new();
    write_trace(&wl, &mut buf).unwrap();
    let back = read_trace(buf.as_slice()).unwrap();

    let mut a = EngineBuilder::on(wl.graph.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    for u in &wl.updates {
        a.try_apply(u).unwrap();
    }
    let mut b = EngineBuilder::on(back.graph.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    for u in &back.updates {
        b.try_apply(u).unwrap();
    }
    assert_eq!(a.solution(), b.solution(), "determinism across the codec");
}

/// R-MAT graphs drive the engines like any other generator output.
#[test]
fn engines_run_on_rmat_graphs() {
    let g = rmat(9, 2000, RmatConfig::default(), 17);
    let e2 = EngineBuilder::on(g.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    assert!(e2.size() > 0);
    assert!(is_maximal_dynamic(e2.graph(), &e2.solution()));
    // Heavy-tailed degrees: the ratio bound is loose but must hold.
    let bound = dynamis::core::approximation_bound(g.max_degree());
    assert!(bound >= 1.0);
}
