//! End-to-end tests of the `dynamis-problems` reductions driven by the
//! real dynamic engines.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::problems::clique::is_clique;
use dynamis::problems::intervals::interval_conflict_dynamic;
use dynamis::problems::labeling::label_conflict_dynamic;
use dynamis::problems::{
    greedy_clique, interval_conflict_graph, is_proper_coloring, is_vertex_cover,
    label_conflict_graph, matching_vertex_cover, max_clique_exact, max_non_overlapping,
    mis_coloring, DynamicVertexCover, Interval, LabelBox,
};
use dynamis::statics::verify::{compact_live, is_independent};
use dynamis::statics::ExactConfig;
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicMis};

/// The dynamic vertex cover stays a valid cover through an entire
/// randomized schedule, and its size is exactly |V| − |I|.
#[test]
fn dynamic_vertex_cover_valid_throughout() {
    for seed in 0..5u64 {
        let g = gnm(26, 45, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed + 7).take_updates(150);
        let mut vc = DynamicVertexCover::new(EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap());
        for (i, u) in ups.iter().enumerate() {
            vc.try_apply(u).unwrap();
            assert!(vc.verify(), "seed {seed} step {i}: cover broken");
            assert_eq!(
                vc.size() + vc.engine().size(),
                vc.engine().graph().num_vertices(),
                "seed {seed} step {i}: complement identity broken"
            );
        }
    }
}

/// The dynamic cover from a 2-maximal engine is never worse than three
/// times the matching 2-approximation on these instances (a loose sanity
/// band: the complement route has no worst-case guarantee, but on sparse
/// random graphs it should at least stay comparable).
#[test]
fn dynamic_cover_is_competitive_with_matching() {
    for seed in 0..4u64 {
        let g = gnm(40, 80, seed);
        let vc = DynamicVertexCover::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyTwoSwap>()
                .unwrap(),
        );
        let (csr, _) = compact_live(&g);
        let matching = matching_vertex_cover(&csr);
        assert!(is_vertex_cover(&g, &vc.cover()));
        assert!(
            vc.size() <= 3 * matching.len().max(1),
            "seed {seed}: {} vs matching {}",
            vc.size(),
            matching.len()
        );
    }
}

/// Interval graphs give exact ground truth at scale: the engines'
/// solutions on the conflict graph must respect α from the earliest-finish
/// greedy, and a 2-maximal solution on these small instances should land
/// close to optimal.
#[test]
fn engines_on_interval_conflict_graphs() {
    let mut state = 0xfeedface_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..6 {
        let n = 30 + (rng() % 30) as usize;
        let intervals: Vec<Interval> = (0..n)
            .map(|_| {
                let s = (rng() % 200) as i64;
                Interval::new(s, s + 1 + (rng() % 25) as i64)
            })
            .collect();
        let alpha = max_non_overlapping(&intervals).len();
        let g = interval_conflict_dynamic(&intervals);
        let e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        assert!(e.size() <= alpha, "round {round}: beats the optimum?!");
        // Interval graphs are perfect; 2-maximal local optima are strong
        // here. Require at least 2/3 of optimal as a regression tripwire.
        assert!(
            3 * e.size() >= 2 * alpha,
            "round {round}: {} far below alpha {alpha}",
            e.size()
        );
        let csr = interval_conflict_graph(&intervals);
        let sol = e.solution();
        assert!(is_independent(&csr, &sol));
    }
}

/// Map labeling end-to-end: grid of features with two stacked candidates
/// each; the engine must label every feature exactly once.
#[test]
fn labeling_grid_selects_one_candidate_per_feature() {
    let mut labels = Vec::new();
    for fx in 0..6u32 {
        for fy in 0..4u32 {
            let feature = fx * 4 + fy;
            let (x, y) = (3.0 * fx as f64, 3.0 * fy as f64);
            labels.push(LabelBox::new(feature, x, y, 2.0, 1.0));
            labels.push(LabelBox::new(feature, x, y + 1.2, 2.0, 1.0));
        }
    }
    let g = label_conflict_dynamic(&labels);
    let e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    assert_eq!(e.size(), 24, "every feature labeled once");
    let csr = label_conflict_graph(&labels);
    assert!(is_independent(&csr, &e.solution()));
}

/// Clique and coloring: complement reduction agrees with brute force on
/// random instances; MIS coloring is proper.
#[test]
fn clique_and_coloring_agree_with_references() {
    let mut state = 0xc0ffee_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..5 {
        let n = 10 + (rng() % 8) as usize;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if rng() % 3 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = dynamis::CsrGraph::from_edges(n, &edges);
        let exact = max_clique_exact(&g, ExactConfig::default()).unwrap();
        assert!(is_clique(&g, &exact), "round {round}");
        let greedy = greedy_clique(&g);
        assert!(is_clique(&g, &greedy), "round {round}");
        assert!(greedy.len() <= exact.len(), "round {round}");
        let coloring = mis_coloring(&g);
        assert!(is_proper_coloring(&g, &coloring), "round {round}");
        // χ ≥ ω always.
        assert!(coloring.num_colors as usize >= exact.len(), "round {round}");
    }
}
