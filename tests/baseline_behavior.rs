//! Behavioral contracts of the baseline maintainers — the properties the
//! paper's comparison narrative rests on.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::verify::{is_k_maximal_dynamic, is_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DgDis, DyArw, DyOneSwap, DynamicMis, MaximalOnly};

/// The DG index's search effort grows with update count — the staleness
/// mechanism behind the paper's Fig. 5(c)/6(a) blow-ups.
#[test]
fn dg_index_search_effort_grows_with_updates() {
    let g = gnm(200, 600, 5);
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), 6);
    let mut e = DgDis::two_dis(EngineBuilder::on(g)).unwrap();
    let mut checkpoints = Vec::new();
    for _ in 0..4 {
        for u in &stream.take_updates(2_000) {
            e.try_apply(u).unwrap();
        }
        checkpoints.push(e.search_steps);
    }
    // Strictly increasing across checkpoints (more updates, more scans)…
    assert!(checkpoints.windows(2).all(|w| w[0] < w[1]));
    // …and the later quarter scans at least as much as the first: the
    // per-update effort does not shrink as the index ages.
    let first = checkpoints[0];
    let last = checkpoints[3] - checkpoints[2];
    assert!(
        last >= first,
        "index aged but got cheaper: first quarter {first}, last quarter {last}"
    );
}

/// Both DG variants keep a maximal (not k-maximal) solution; TwoDIS must
/// not be worse than OneDIS on identical schedules.
#[test]
fn dg_variants_keep_maximal_solutions() {
    for seed in 0..4u64 {
        let g = gnm(60, 150, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed + 50).take_updates(800);
        let mut one = DgDis::one_dis(EngineBuilder::on(g.clone())).unwrap();
        let mut two = DgDis::two_dis(EngineBuilder::on(g)).unwrap();
        for u in &ups {
            one.try_apply(u).unwrap();
            two.try_apply(u).unwrap();
        }
        assert!(
            is_maximal_dynamic(one.graph(), &one.solution()),
            "seed {seed}"
        );
        assert!(
            is_maximal_dynamic(two.graph(), &two.solution()),
            "seed {seed}"
        );
    }
}

/// DyARW and DyOneSwap maintain the same invariant; on schedules long
/// enough to wash out tie-breaking, their sizes track each other within
/// a small band (the paper: "its performance is almost the same as
/// DyOneSwap on all graphs").
#[test]
fn dyarw_tracks_dyoneswap_quality() {
    let mut total_arw = 0usize;
    let mut total_one = 0usize;
    for seed in 0..5u64 {
        let g = gnm(80, 200, seed);
        let ups = UpdateStream::new(&g, StreamConfig::default(), seed + 9).take_updates(1_500);
        let mut arw = EngineBuilder::on(g.clone()).build_as::<DyArw>().unwrap();
        let mut one = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for u in &ups {
            arw.try_apply(u).unwrap();
            one.try_apply(u).unwrap();
        }
        assert!(is_k_maximal_dynamic(arw.graph(), &arw.solution(), 1));
        total_arw += arw.size();
        total_one += one.size();
    }
    let diff = total_arw.abs_diff(total_one);
    assert!(
        diff * 20 <= total_one,
        "cumulative sizes diverged: {total_arw} vs {total_one}"
    );
}

/// The quality floor: on star-heavy graphs the repair-only baseline gets
/// stuck where the swap engines escape.
#[test]
fn maximal_only_is_the_floor_on_stars() {
    // Forest of stars, centers seeded into the solution: repair-only
    // keeps centers (one vertex per star), 1-swap reaches the leaves.
    let mut edges = Vec::new();
    let stars = 10u32;
    let leaves = 5u32;
    for s in 0..stars {
        let center = s * (leaves + 1);
        for l in 1..=leaves {
            edges.push((center, center + l));
        }
    }
    let n = (stars * (leaves + 1)) as usize;
    let centers: Vec<u32> = (0..stars).map(|s| s * (leaves + 1)).collect();
    let g = dynamis::DynamicGraph::from_edges(n, &edges);
    let floor = EngineBuilder::on(g.clone())
        .initial(&centers)
        .build_as::<MaximalOnly>()
        .unwrap();
    let engine = EngineBuilder::on(g)
        .initial(&centers)
        .build_as::<DyOneSwap>()
        .unwrap();
    assert_eq!(floor.size(), stars as usize, "stuck at one per star");
    assert_eq!(
        engine.size(),
        (stars * leaves) as usize,
        "1-swaps cascade to all leaves"
    );
}
