//! The paper's running example (Fig. 4, Examples 1–3) encoded as a test.
//!
//! Fig. 4(a) is reconstructed from the narrative of Examples 1–3
//! (vertices v1…v10 here are ids 0…9):
//!
//! * `I = {v3, v4, v6, v9}` is a maximal independent set;
//! * `¯I₁(v3) = {v1}`, `¯I₁(v6) = {v8}`, `¯I₁(v9) = {v10}` — so v1–v3,
//!   v8–v6, v10–v9 are edges and those outsiders see no other solution
//!   vertex;
//! * `¯I₂(v3, v4) = {v2}`, `¯I₂(v4, v6) = {v5}`, `¯I₂(v3, v9) = {v7}` —
//!   giving v2–v3, v2–v4, v5–v4, v5–v6, v7–v3, v7–v9.
//!
//! Example 2 inserts edge (v3, v4) and walks Algorithm 2 to the Fig. 4(c)
//! state (|I| = 4); Example 3 continues with Algorithm 3 to the Fig. 4(d)
//! state (|I| = 5). The engines' tie-breaking differs from the prose —
//! and does strictly better here: the stated §IV-A eviction rule cascades
//! to |I| = 5 at k = 1 already, and α of the updated graph is 6, not 5
//! (all six outsiders are pairwise non-adjacent). The assertions
//! therefore pin the *outcomes* the paper's invariants force: lower
//! bounds on sizes, k-maximality, and the exact α.

use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::{compact_live, is_k_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DyTwoSwap, DynamicGraph, DynamicMis, Update};

/// Fig. 4(a), 0-indexed: v1…v10 → 0…9.
fn fig4a() -> DynamicGraph {
    DynamicGraph::from_edges(
        10,
        &[
            (0, 2), // v1–v3
            (1, 2), // v2–v3
            (1, 3), // v2–v4
            (4, 3), // v5–v4
            (4, 5), // v5–v6
            (7, 5), // v8–v6
            (6, 2), // v7–v3
            (6, 8), // v7–v9
            (9, 8), // v10–v9
        ],
    )
}

const INITIAL: [u32; 4] = [2, 3, 5, 8]; // {v3, v4, v6, v9}

#[test]
fn initial_solution_matches_example_1() {
    let g = fig4a();
    // The paper's Fig. 4(b) state is 1-maximal: every ¯I₁(v) is a
    // singleton, hence trivially a clique.
    assert!(is_k_maximal_dynamic(&g, &INITIAL, 1));
    // Seeding DyOneSwap with it performs no swap (the drain is a no-op).
    let e = EngineBuilder::on(g)
        .initial(&INITIAL)
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut sol = e.solution();
    sol.sort_unstable();
    assert_eq!(sol, INITIAL.to_vec(), "1-maximal input is kept verbatim");
}

#[test]
fn example_2_one_swap_covers_fig_4c() {
    let g = fig4a();
    let mut e = EngineBuilder::on(g)
        .initial(&INITIAL)
        .build_as::<DyOneSwap>()
        .unwrap();
    // The prose removes v4, swaps v6 with v5, and re-inserts v8, landing
    // on the Fig. 4(c) state of size 4. The eviction rule as *stated* in
    // §IV-A ("if one of them, say v, with ¯I₁(v) ≠ ∅, it removes v")
    // instead evicts v3, and the resulting cascade (v1 in, then the
    // {v7, v10} 1-swap at v9) reaches size 5 — a different tie-break of
    // the same algorithm, strictly better than the walk-through. The
    // invariant-forced outcomes are what we pin down.
    e.try_apply(&Update::InsertEdge(2, 3)).unwrap();
    e.check_consistency().unwrap();
    assert!(e.size() >= 4, "never below the Fig. 4(c) size");
    assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
    // The inserted edge's endpoints cannot both remain.
    assert!(!(e.contains(2) && e.contains(3)));
}

#[test]
fn example_3_two_swap_meets_or_beats_fig_4d() {
    let g = fig4a();
    let mut e = EngineBuilder::on(g)
        .initial(&INITIAL)
        .build_as::<DyTwoSwap>()
        .unwrap();
    e.try_apply(&Update::InsertEdge(2, 3)).unwrap();
    e.check_consistency().unwrap();
    // The prose lands on Fig. 4(d) with |I| = 5. Note the optimum of the
    // updated graph is actually 6: after (v3, v4) is inserted, the six
    // outsiders {v1, v2, v5, v7, v8, v10} are pairwise non-adjacent. The
    // engine must end 2-maximal with at least the Fig. 4(d) size; its
    // tie-breaks happen to reach the true optimum here.
    let (csr, _) = compact_live(e.graph());
    let alpha = solve_exact(&csr, ExactConfig::default())
        .expect("10-vertex graph")
        .alpha;
    assert_eq!(alpha, 6, "all six outsiders are pairwise non-adjacent");
    assert!(e.size() >= 5, "at least the Fig. 4(d) size");
    assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
}

#[test]
fn example_3_candidate_pairs_exist_before_the_swap() {
    // Cross-check the reconstruction: in Fig. 4(b), the hierarchical
    // buckets the paper lists must be exactly ¯I₂(v3,v4) = {v2},
    // ¯I₂(v4,v6) = {v5}, ¯I₂(v3,v9) = {v7}.
    let g = fig4a();
    let in_sol = |v: u32| INITIAL.contains(&v);
    let parents = |u: u32| -> Vec<u32> {
        let mut p: Vec<u32> = g.neighbors(u).filter(|&w| in_sol(w)).collect();
        p.sort_unstable();
        p
    };
    assert_eq!(parents(1), vec![2, 3], "v2 ∈ ¯I₂(v3, v4)");
    assert_eq!(parents(4), vec![3, 5], "v5 ∈ ¯I₂(v4, v6)");
    assert_eq!(parents(6), vec![2, 8], "v7 ∈ ¯I₂(v3, v9)");
    assert_eq!(parents(0), vec![2], "v1 ∈ ¯I₁(v3)");
    assert_eq!(parents(7), vec![5], "v8 ∈ ¯I₁(v6)");
    assert_eq!(parents(9), vec![8], "v10 ∈ ¯I₁(v9)");
}

/// Theorem 1's reduction: a static graph presented as an edge-by-edge
/// insertion stream. The maintained guarantee must hold at every prefix,
/// which is exactly the argument that makes the dynamic problem as hard
/// as the static one.
#[test]
fn theorem_1_edge_stream_reduction() {
    let g = fig4a();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut e = EngineBuilder::on(DynamicGraph::from_edges(10, &[]))
        .build_as::<DyTwoSwap>()
        .unwrap();
    assert_eq!(e.size(), 10, "empty graph: everything is independent");
    for &(u, v) in &edges {
        e.try_apply(&Update::InsertEdge(u, v)).unwrap();
        let bound = dynamis::core::approximation_bound(e.graph().max_degree());
        let (csr, _) = compact_live(e.graph());
        let alpha = solve_exact(&csr, ExactConfig::default())
            .expect("small graph")
            .alpha;
        assert!(
            alpha as f64 <= bound * e.size() as f64 + 1e-9,
            "guarantee broken after inserting ({u}, {v})"
        );
    }
    assert_eq!(e.graph().num_edges(), 9);
}
