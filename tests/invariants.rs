//! Cross-crate invariant suite: every dynamic engine, run over randomized
//! update schedules, must continuously satisfy its defining invariant —
//! independence, maximality, and k-maximality — verified against
//! brute-force swap search and from-scratch state rebuilds.

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::verify::{is_k_maximal_dynamic, is_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DyArw, DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap, MaximalOnly};

fn schedule(
    seed: u64,
    n: usize,
    m: usize,
    count: usize,
) -> (dynamis::DynamicGraph, Vec<dynamis::Update>) {
    let g = gnm(n, m, seed);
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xabcd);
    let ups = stream.take_updates(count);
    (g, ups)
}

#[test]
fn dy_one_swap_stays_one_maximal() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 24, 40, 120);
        let mut e = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
        for (i, u) in ups.iter().enumerate() {
            e.try_apply(u).unwrap();
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed} step {i}: {err}"));
            if i % 7 == 0 {
                assert!(
                    is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                    "seed {seed} step {i}: not 1-maximal after {u:?}"
                );
            }
        }
    }
}

#[test]
fn dy_two_swap_stays_two_maximal() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 20, 32, 100);
        let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for (i, u) in ups.iter().enumerate() {
            e.try_apply(u).unwrap();
            e.check_consistency()
                .unwrap_or_else(|err| panic!("seed {seed} step {i}: {err}"));
            if i % 9 == 0 {
                assert!(
                    is_k_maximal_dynamic(e.graph(), &e.solution(), 2),
                    "seed {seed} step {i}: not 2-maximal after {u:?}"
                );
            }
        }
    }
}

#[test]
fn generic_engine_matches_its_k() {
    for k in 1..=3usize {
        for seed in 0..3u64 {
            let (g, ups) = schedule(seed.wrapping_add(77), 16, 24, 60);
            let mut e = EngineBuilder::on(g)
                .k(k)
                .build_as::<GenericKSwap>()
                .unwrap();
            for (i, u) in ups.iter().enumerate() {
                e.try_apply(u).unwrap();
                e.check_consistency()
                    .unwrap_or_else(|err| panic!("k={k} seed {seed} step {i}: {err}"));
                if i % 11 == 0 {
                    assert!(
                        is_k_maximal_dynamic(e.graph(), &e.solution(), k),
                        "k={k} seed {seed} step {i}: not {k}-maximal after {u:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn dyarw_matches_one_swap_invariant() {
    for seed in 0..4u64 {
        let (g, ups) = schedule(seed ^ 0x5a5a, 22, 36, 100);
        let mut e = EngineBuilder::on(g).build_as::<DyArw>().unwrap();
        for (i, u) in ups.iter().enumerate() {
            e.try_apply(u).unwrap();
            if i % 8 == 0 {
                assert!(
                    is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                    "seed {seed} step {i}: DyARW not 1-maximal after {u:?}"
                );
            }
        }
    }
}

#[test]
fn every_engine_is_always_maximal() {
    let (g, ups) = schedule(99, 30, 60, 150);
    let mut engines: Vec<Box<dyn DynamicMis>> = vec![
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyOneSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyTwoSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .k(2)
                .build_as::<GenericKSwap>()
                .unwrap(),
        ),
        Box::new(EngineBuilder::on(g.clone()).build_as::<DyArw>().unwrap()),
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<MaximalOnly>()
                .unwrap(),
        ),
        Box::new(dynamis::DgDis::one_dis(EngineBuilder::on(g.clone())).unwrap()),
        Box::new(dynamis::DgDis::two_dis(EngineBuilder::on(g)).unwrap()),
    ];
    for (i, u) in ups.iter().enumerate() {
        for e in engines.iter_mut() {
            e.try_apply(u).unwrap();
            assert!(
                is_maximal_dynamic(e.graph(), &e.solution()),
                "{} lost maximality at step {i} after {u:?}",
                e.name()
            );
            assert_eq!(e.size(), e.solution().len(), "{} size drift", e.name());
        }
    }
}

#[test]
fn engines_agree_on_final_graph_shape() {
    // All engines own their graph copies; after replaying the same
    // schedule every copy must be the identical graph.
    let (g, ups) = schedule(7, 26, 50, 200);
    let mut a = EngineBuilder::on(g.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut b = EngineBuilder::on(g.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    let mut c = EngineBuilder::on(g).build_as::<MaximalOnly>().unwrap();
    for u in &ups {
        a.try_apply(u).unwrap();
        b.try_apply(u).unwrap();
        c.try_apply(u).unwrap();
    }
    assert_eq!(a.graph().num_edges(), b.graph().num_edges());
    assert_eq!(a.graph().num_vertices(), c.graph().num_vertices());
    for (u, v) in a.graph().edges() {
        assert!(b.graph().has_edge(u, v));
        assert!(c.graph().has_edge(u, v));
    }
}

#[test]
fn quality_ordering_holds_in_aggregate() {
    // 2-maximal ⊇ quality of 1-maximal ⊇ plain maximal, in expectation:
    // compare summed sizes across seeds (individual runs may tie).
    let mut sum1 = 0usize;
    let mut sum2 = 0usize;
    let mut sum0 = 0usize;
    for seed in 0..5u64 {
        let (g, ups) = schedule(seed.wrapping_mul(31) + 3, 40, 90, 250);
        let mut e1 = EngineBuilder::on(g.clone())
            .build_as::<DyOneSwap>()
            .unwrap();
        let mut e2 = EngineBuilder::on(g.clone())
            .build_as::<DyTwoSwap>()
            .unwrap();
        let mut e0 = EngineBuilder::on(g).build_as::<MaximalOnly>().unwrap();
        for u in &ups {
            e1.try_apply(u).unwrap();
            e2.try_apply(u).unwrap();
            e0.try_apply(u).unwrap();
        }
        sum1 += e1.size();
        sum2 += e2.size();
        sum0 += e0.size();
    }
    assert!(sum2 >= sum1, "k=2 ({sum2}) must dominate k=1 ({sum1})");
    assert!(
        sum1 >= sum0,
        "k=1 ({sum1}) must dominate repair-only ({sum0})"
    );
}
