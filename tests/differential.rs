//! Differential tests: independent implementations of the same
//! specification must agree on the invariant class they maintain, and
//! where the specification pins the exact output (deterministic solver,
//! fresh restart), outputs must match exactly.

use dynamis::baselines::{Restart, RestartSolver};
use dynamis::gen::powerlaw::chung_lu;
use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::greedy_mis;
use dynamis::statics::verify::{compact_live, is_independent_dynamic, is_k_maximal_dynamic};
use dynamis::EngineBuilder;
use dynamis::{DyArw, DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap};
use dynamis_bench::hash_baseline::{HashIndexedOneSwap, HashIndexedTwoSwap};

fn schedule(
    seed: u64,
    n: usize,
    m: usize,
    count: usize,
) -> (dynamis::DynamicGraph, Vec<dynamis::Update>) {
    let g = gnm(n, m, seed);
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed.wrapping_mul(0x9e37));
    let ups = stream.take_updates(count);
    (g, ups)
}

/// The eager DyOneSwap and the lazy GenericKSwap(k = 1) are two
/// implementations of Algorithm 1 with k = 1: after any schedule both are
/// 1-maximal on the same final graph.
#[test]
fn eager_and_lazy_k1_agree_on_invariant() {
    for seed in 0..8u64 {
        let (g, ups) = schedule(seed, 22, 36, 140);
        let mut eager = EngineBuilder::on(g.clone())
            .build_as::<DyOneSwap>()
            .unwrap();
        let mut lazy = EngineBuilder::on(g)
            .k(1)
            .build_as::<GenericKSwap>()
            .unwrap();
        for u in &ups {
            eager.try_apply(u).unwrap();
            lazy.try_apply(u).unwrap();
        }
        assert_eq!(
            eager.graph().num_edges(),
            lazy.graph().num_edges(),
            "seed {seed}: graphs diverged"
        );
        for e in [&eager as &dyn DynamicMis, &lazy as &dyn DynamicMis] {
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                "seed {seed}: {} not 1-maximal",
                e.name()
            );
        }
    }
}

/// Same for DyTwoSwap vs GenericKSwap(k = 2).
#[test]
fn eager_and_lazy_k2_agree_on_invariant() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 18, 30, 90);
        let mut eager = EngineBuilder::on(g.clone())
            .build_as::<DyTwoSwap>()
            .unwrap();
        let mut lazy = EngineBuilder::on(g)
            .k(2)
            .build_as::<GenericKSwap>()
            .unwrap();
        for u in &ups {
            eager.try_apply(u).unwrap();
            lazy.try_apply(u).unwrap();
        }
        for e in [&eager as &dyn DynamicMis, &lazy as &dyn DynamicMis] {
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 2),
                "seed {seed}: {} not 2-maximal",
                e.name()
            );
        }
    }
}

/// DyARW maintains the same invariant class as DyOneSwap (both
/// 1-maximal); their sizes may differ by tie-breaking but never by more
/// than what 1-maximality allows on these tiny graphs.
#[test]
fn dyarw_matches_one_swap_class() {
    for seed in 0..8u64 {
        let (g, ups) = schedule(seed, 20, 34, 120);
        let mut a = EngineBuilder::on(g.clone())
            .build_as::<DyOneSwap>()
            .unwrap();
        let mut b = EngineBuilder::on(g).build_as::<DyArw>().unwrap();
        for u in &ups {
            a.try_apply(u).unwrap();
            b.try_apply(u).unwrap();
        }
        assert!(is_k_maximal_dynamic(a.graph(), &a.solution(), 1));
        assert!(is_k_maximal_dynamic(b.graph(), &b.solution(), 1));
        assert!(is_independent_dynamic(b.graph(), &b.solution()));
    }
}

/// Restart(Greedy, interval = 1) right after an update must equal the
/// static greedy on the final graph exactly — the baseline *is* the
/// static solver, modulo the live-vertex compaction.
#[test]
fn restart_interval_one_equals_static_greedy() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 24, 40, 60);
        let mut r = Restart::from_builder(EngineBuilder::on(g), RestartSolver::Greedy, 1).unwrap();
        for u in &ups {
            r.try_apply(u).unwrap();
        }
        let (csr, map) = compact_live(r.graph());
        let want = greedy_mis(&csr);
        let got: Vec<u32> = r.solution().iter().map(|&v| map[v as usize]).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut want_sorted = want.clone();
        want_sorted.sort_unstable();
        assert_eq!(got_sorted, want_sorted, "seed {seed}");
    }
}

/// Quality ordering that must hold on every instance: any 2-maximal set
/// is also 1-maximal, so DyTwoSwap's guarantee subsumes DyOneSwap's;
/// and every engine dominates the largest independent set that a single
/// vertex could represent.
#[test]
fn two_maximal_solutions_are_also_one_maximal() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 18, 28, 80);
        let mut e = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
        assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
    }
}

/// The intrusive-handle engines against the preserved hash-indexed
/// replica of the pre-rewrite layout (`dynamis_bench::hash_baseline`),
/// on identical seeded streams.
///
/// For k = 1 the two layouts process candidates in the same order (the
/// `C₁` queue is dense in both), so the *exact solutions* must match —
/// the rewrite changed the data layout, not the algorithm. For k = 2 the
/// `C₂` draining granularity differs (flat triples vs pair-grouped
/// batches), so swap luck may differ: both must be 2-maximal and of
/// near-identical size.
#[test]
fn intrusive_layout_matches_hash_indexed_reference() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 40, 80, 300);
        let mut new1 = EngineBuilder::on(g.clone())
            .build_as::<DyOneSwap>()
            .unwrap();
        let mut old1 = HashIndexedOneSwap::new(g.clone(), &[]);
        let mut new2 = EngineBuilder::on(g.clone())
            .build_as::<DyTwoSwap>()
            .unwrap();
        let mut old2 = HashIndexedTwoSwap::new(g, &[]);
        for u in &ups {
            new1.try_apply(u).unwrap();
            old1.try_apply(u).unwrap();
            new2.try_apply(u).unwrap();
            old2.try_apply(u).unwrap();
        }
        assert_eq!(
            new1.solution(),
            old1.solution(),
            "seed {seed}: k = 1 solutions diverged across layouts"
        );
        new1.check_consistency().unwrap();
        new2.check_consistency().unwrap();
        assert!(is_k_maximal_dynamic(old2.graph(), &old2.solution(), 2));
        assert!(is_k_maximal_dynamic(new2.graph(), &new2.solution(), 2));
        let (s_new, s_old) = (new2.size() as i64, old2.size() as i64);
        assert!(
            (s_new - s_old).abs() <= 2,
            "seed {seed}: k = 2 sizes drifted: intrusive {s_new} vs hash {s_old}"
        );
        assert_eq!(
            new1.stats().hot_hash_probes,
            0,
            "seed {seed}: intrusive hot path hashed"
        );
        assert!(old1.hot_hash_probes() > 0, "replica must hash");
    }
}

/// Golden pinning: the engines are deterministic, so a fixed seed must
/// reproduce the exact same solution forever. The pinned values were
/// produced by this implementation (intrusive half-edge layout); any
/// future refactor that silently changes swap order will trip this.
#[test]
fn pinned_solutions_on_seeded_powerlaw_stream() {
    fn fingerprint(sol: &[u32]) -> u64 {
        // FNV-1a over the sorted id stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for &v in sol {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
    let base = chung_lu(2_000, 2.4, 6.0, 1234);
    let ups = UpdateStream::new(&base, StreamConfig::default(), 5678).take_updates(4_000);

    let mut e1 = EngineBuilder::on(base.clone())
        .build_as::<DyOneSwap>()
        .unwrap();
    let mut e2 = EngineBuilder::on(base).build_as::<DyTwoSwap>().unwrap();
    for u in &ups {
        e1.try_apply(u).unwrap();
        e2.try_apply(u).unwrap();
    }
    // Re-running the same build twice must agree with itself...
    assert_eq!((e1.size(), e2.size()), (GOLDEN_K1_SIZE, GOLDEN_K2_SIZE));
    // ...and with the recorded fingerprints.
    assert_eq!(fingerprint(&e1.solution()), GOLDEN_K1_FP);
    assert_eq!(fingerprint(&e2.solution()), GOLDEN_K2_FP);
}

/// Golden values for `pinned_solutions_on_seeded_powerlaw_stream`.
/// Regenerate by running the test with `GOLDEN=print` semantics: the
/// assertion failure output contains the current values.
const GOLDEN_K1_SIZE: usize = 951;
const GOLDEN_K2_SIZE: usize = 957;
const GOLDEN_K1_FP: u64 = 14512994648379547683;
const GOLDEN_K2_FP: u64 = 420742237401555229;

/// All five maintainers applied to one identical schedule end with
/// consistent internal state and valid solutions — the cross-engine
/// smoke check the harness relies on.
#[test]
fn all_engines_survive_identical_schedule() {
    let (g, ups) = schedule(99, 30, 55, 250);
    let mut engines: Vec<Box<dyn DynamicMis>> = vec![
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyOneSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyTwoSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .k(3)
                .build_as::<GenericKSwap>()
                .unwrap(),
        ),
        Box::new(EngineBuilder::on(g.clone()).build_as::<DyArw>().unwrap()),
        Box::new(Restart::from_builder(EngineBuilder::on(g), RestartSolver::Greedy, 16).unwrap()),
    ];
    for u in &ups {
        for e in engines.iter_mut() {
            e.try_apply(u).unwrap();
        }
    }
    let edges = engines[0].graph().num_edges();
    for e in &engines {
        assert_eq!(e.graph().num_edges(), edges, "{} graph diverged", e.name());
        assert!(
            is_independent_dynamic(e.graph(), &e.solution()),
            "{} solution not independent",
            e.name()
        );
        assert!(e.size() > 0, "{} lost its whole solution", e.name());
    }
}
