//! Differential tests: independent implementations of the same
//! specification must agree on the invariant class they maintain, and
//! where the specification pins the exact output (deterministic solver,
//! fresh restart), outputs must match exactly.

use dynamis::baselines::{Restart, RestartSolver};
use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::greedy_mis;
use dynamis::statics::verify::{compact_live, is_independent_dynamic, is_k_maximal_dynamic};
use dynamis::{DyArw, DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap};

fn schedule(seed: u64, n: usize, m: usize, count: usize) -> (dynamis::DynamicGraph, Vec<dynamis::Update>) {
    let g = gnm(n, m, seed);
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), seed.wrapping_mul(0x9e37));
    let ups = stream.take_updates(count);
    (g, ups)
}

/// The eager DyOneSwap and the lazy GenericKSwap(k = 1) are two
/// implementations of Algorithm 1 with k = 1: after any schedule both are
/// 1-maximal on the same final graph.
#[test]
fn eager_and_lazy_k1_agree_on_invariant() {
    for seed in 0..8u64 {
        let (g, ups) = schedule(seed, 22, 36, 140);
        let mut eager = DyOneSwap::new(g.clone(), &[]);
        let mut lazy = GenericKSwap::new(g, &[], 1);
        for u in &ups {
            eager.apply_update(u);
            lazy.apply_update(u);
        }
        assert_eq!(
            eager.graph().num_edges(),
            lazy.graph().num_edges(),
            "seed {seed}: graphs diverged"
        );
        for e in [&eager as &dyn DynamicMis, &lazy as &dyn DynamicMis] {
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 1),
                "seed {seed}: {} not 1-maximal",
                e.name()
            );
        }
    }
}

/// Same for DyTwoSwap vs GenericKSwap(k = 2).
#[test]
fn eager_and_lazy_k2_agree_on_invariant() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 18, 30, 90);
        let mut eager = DyTwoSwap::new(g.clone(), &[]);
        let mut lazy = GenericKSwap::new(g, &[], 2);
        for u in &ups {
            eager.apply_update(u);
            lazy.apply_update(u);
        }
        for e in [&eager as &dyn DynamicMis, &lazy as &dyn DynamicMis] {
            assert!(
                is_k_maximal_dynamic(e.graph(), &e.solution(), 2),
                "seed {seed}: {} not 2-maximal",
                e.name()
            );
        }
    }
}

/// DyARW maintains the same invariant class as DyOneSwap (both
/// 1-maximal); their sizes may differ by tie-breaking but never by more
/// than what 1-maximality allows on these tiny graphs.
#[test]
fn dyarw_matches_one_swap_class() {
    for seed in 0..8u64 {
        let (g, ups) = schedule(seed, 20, 34, 120);
        let mut a = DyOneSwap::new(g.clone(), &[]);
        let mut b = DyArw::new(g, &[]);
        for u in &ups {
            a.apply_update(u);
            b.apply_update(u);
        }
        assert!(is_k_maximal_dynamic(a.graph(), &a.solution(), 1));
        assert!(is_k_maximal_dynamic(b.graph(), &b.solution(), 1));
        assert!(is_independent_dynamic(b.graph(), &b.solution()));
    }
}

/// Restart(Greedy, interval = 1) right after an update must equal the
/// static greedy on the final graph exactly — the baseline *is* the
/// static solver, modulo the live-vertex compaction.
#[test]
fn restart_interval_one_equals_static_greedy() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 24, 40, 60);
        let mut r = Restart::new(g, RestartSolver::Greedy, 1);
        for u in &ups {
            r.apply_update(u);
        }
        let (csr, map) = compact_live(r.graph());
        let want = greedy_mis(&csr);
        let got: Vec<u32> = r
            .solution()
            .iter()
            .map(|&v| map[v as usize])
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut want_sorted = want.clone();
        want_sorted.sort_unstable();
        assert_eq!(got_sorted, want_sorted, "seed {seed}");
    }
}

/// Quality ordering that must hold on every instance: any 2-maximal set
/// is also 1-maximal, so DyTwoSwap's guarantee subsumes DyOneSwap's;
/// and every engine dominates the largest independent set that a single
/// vertex could represent.
#[test]
fn two_maximal_solutions_are_also_one_maximal() {
    for seed in 0..6u64 {
        let (g, ups) = schedule(seed, 18, 28, 80);
        let mut e = DyTwoSwap::new(g, &[]);
        for u in &ups {
            e.apply_update(u);
        }
        assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 1));
        assert!(is_k_maximal_dynamic(e.graph(), &e.solution(), 2));
    }
}

/// All five maintainers applied to one identical schedule end with
/// consistent internal state and valid solutions — the cross-engine
/// smoke check the harness relies on.
#[test]
fn all_engines_survive_identical_schedule() {
    let (g, ups) = schedule(99, 30, 55, 250);
    let mut engines: Vec<Box<dyn DynamicMis>> = vec![
        Box::new(DyOneSwap::new(g.clone(), &[])),
        Box::new(DyTwoSwap::new(g.clone(), &[])),
        Box::new(GenericKSwap::new(g.clone(), &[], 3)),
        Box::new(DyArw::new(g.clone(), &[])),
        Box::new(Restart::new(g, RestartSolver::Greedy, 16)),
    ];
    for u in &ups {
        for e in engines.iter_mut() {
            e.apply_update(u);
        }
    }
    let edges = engines[0].graph().num_edges();
    for e in &engines {
        assert_eq!(e.graph().num_edges(), edges, "{} graph diverged", e.name());
        assert!(
            is_independent_dynamic(e.graph(), &e.solution()),
            "{} solution not independent",
            e.name()
        );
        assert!(e.size() > 0, "{} lost its whole solution", e.name());
    }
}
