//! `dynamis` — command-line driver for the workspace.
//!
//! ```text
//! dynamis datasets                               list the Table I stand-ins
//! dynamis stats <graph>                          structural statistics
//! dynamis convert <in> <out>                     convert between formats
//! dynamis solve <graph> [--algo A]               run a static solver
//! dynamis run --dataset NAME [--algo A] [...]    dynamic maintenance run
//! dynamis record --dataset NAME <out.trace>      record an update trace
//! dynamis replay <trace> [--algo A]              replay a recorded trace
//! dynamis serve-bench --dataset NAME [...]       concurrent serving-layer run
//! dynamis net-serve --dataset NAME [...]         serve over TCP (wire protocol)
//! dynamis net-load --addr HOST:PORT [...]        drive a net-serve with load
//! dynamis metrics --addr HOST:PORT [...]         fetch a telemetry snapshot
//! dynamis recover --data-dir DIR [...]           verify/replay a durable dir
//! ```
//!
//! Graph formats are sniffed from the file extension: `.col`/`.clq` →
//! DIMACS, `.graph`/`.metis` → METIS, `.dyng` → binary, anything else →
//! SNAP edge list.

use dynamis::baselines::{DgDis, Restart, RestartSolver};
use dynamis::durable::{
    prepare as durable_prepare, scan as durable_scan, DurableOptions, FileStorage, SyncPolicy,
    WalStorage,
};
use dynamis::gen::trace::{read_trace_path, write_trace_path};
use dynamis::gen::{datasets, StreamConfig, UpdateStream, Workload};
use dynamis::graph::algo::{
    connected_components, core_decomposition, count_triangles, degree_stats, diameter_lower_bound,
    global_clustering, is_bipartite,
};
use dynamis::graph::io;
use dynamis::net::{LoadConfig, NetBackend, NetConfig, NetServer};
use dynamis::statics::{
    arw_local_search, greedy_mis, luby_mis, reducing_peeling, solve_exact, ArwConfig, ExactConfig,
};
use dynamis::{
    DyArw, DyOneSwap, DyTwoSwap, DynamicGraph, DynamicMis, EngineBuilder, EngineError,
    GenericKSwap, MaximalOnly, MisService, Partitioner, ServeConfig, ShardedService, Update,
};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dynamis datasets
  dynamis stats <graph>
  dynamis convert <in> <out>
  dynamis solve <graph> [--algo greedy|arw|peel|luby|exact]
  dynamis run (--dataset NAME | --graph FILE) [--algo ALGO] [--updates N] [--seed S]
  dynamis record (--dataset NAME | --graph FILE) [--updates N] [--seed S] <out.trace>
  dynamis replay <trace> [--algo ALGO]
  dynamis serve-bench (--dataset NAME | --graph FILE) [--updates N] [--seed S]
                      [--k K] [--readers R] [--burst B] [--stream mixed|adversarial]
                      [--shards P] [--partitioner greedy|locality]
                      [--metrics true]
  dynamis net-serve (--dataset NAME | --graph FILE) [--k K] [--burst B]
                    [--shards P] [--partitioner greedy|locality]
                    [--addr HOST:PORT] [--max-sessions N]
                    [--shed-high H] [--shed-low L] [--metrics true]
                    [--data-dir DIR] [--wal-sync batch|always|never]
                    [--checkpoint-every N]
  dynamis net-load --addr HOST:PORT [--subscribers N] [--writers W]
                   [--updates U] [--vertices V] [--batch B] [--seed S] [--json]
  dynamis metrics --addr HOST:PORT [--json true | --prom true]
                  [--require NAME,NAME,...]
  dynamis recover --data-dir DIR [--mode verify|replay]

dynamic algorithms (ALGO): one (default), two, k:<K>, arw, dgone, dgtwo,
                           maximal, restart:<interval>
net-serve prints `LISTENING <addr>` once ready, serves until stdin closes
(EOF), then drains subscribers and shuts down; net-load reports writer
round-trip percentiles, throughput, and delta-stream integrity
--metrics true enables the gated stage timers (counters are always on);
`metrics` fetches the registry snapshot over the wire — human-readable by
default, --json/--prom for machine output, --require fails unless every
named series exists and is non-zero (for CI smoke checks)
--shards P > 1 serves the canonical sharded engine (P writer threads,
merged per-shard readers) instead of the single-writer service;
--partitioner picks how the vertex space splits across those shards
(degree-greedy balance, or the locality-aware partition that shrinks the
cut — and the coordination cost — on community-structured graphs)
--data-dir makes net-serve durable: accepted updates go to a checksummed
write-ahead log under DIR with periodic snapshot checkpoints, and a
restart recovers the pre-crash state (prints `RECOVERED seq=N replayed=M`
before LISTENING, so old subscribers resume gap-free); --wal-sync picks
when appends reach disk (batch = group commit, default; always = fsync
before every ack, the kill -9-proof setting; never = test/bench only);
recover inspects such a directory offline — verify (default) scans and
replays in memory without mutating, replay repairs torn tails and writes
a fresh compacting checkpoint";

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("datasets") => cmd_datasets(),
        Some("stats") => cmd_stats(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("net-serve") => cmd_net_serve(&args[1..]),
        Some("net-load") => cmd_net_load(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

/// Pulls `--flag value` out of an argument list; returns remaining
/// positional arguments.
fn parse_flags(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let slot = flags
                .iter_mut()
                .find(|(f, _)| *f == name)
                .map(|(_, s)| s)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            **slot = Some(value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok(positional)
}

fn load_graph(path: &str) -> Result<DynamicGraph, String> {
    let lower = path.to_ascii_lowercase();
    let g = if lower.ends_with(".col") || lower.ends_with(".clq") || lower.ends_with(".dimacs") {
        io::read_dimacs(path)
    } else if lower.ends_with(".graph") || lower.ends_with(".metis") {
        io::read_metis(path)
    } else if lower.ends_with(".dyng") {
        io::read_binary(path)
    } else {
        io::read_dynamic(path)
    };
    g.map_err(|e| format!("loading {path}: {e}"))
}

fn save_graph(g: &DynamicGraph, path: &str) -> Result<(), String> {
    let lower = path.to_ascii_lowercase();
    let r = if lower.ends_with(".col") || lower.ends_with(".clq") || lower.ends_with(".dimacs") {
        io::write_dimacs(g, std::fs::File::create(path).map_err(|e| e.to_string())?)
    } else if lower.ends_with(".graph") || lower.ends_with(".metis") {
        io::write_metis(g, std::fs::File::create(path).map_err(|e| e.to_string())?)
    } else if lower.ends_with(".dyng") {
        io::write_binary(g, path)
    } else {
        io::write_edge_list_path(g, path)
    };
    r.map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_datasets() -> Result<(), String> {
    println!("{:<18} {:>9} {:>11} {:>7}  class", "name", "n", "m", "d̄");
    for spec in datasets::DATASETS {
        let g = spec.build();
        println!(
            "{:<18} {:>9} {:>11} {:>7.2}  {:?}",
            spec.name,
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            spec.category
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("stats takes exactly one graph file".into());
    };
    let g = load_graph(path)?;
    let (csr, _) = dynamis::statics::verify::compact_live(&g);
    let ds = degree_stats(&csr);
    let comps = connected_components(&csr);
    let cores = core_decomposition(&csr);
    let (tri, _) = count_triangles(&csr);
    println!("graph      : {path}");
    println!("vertices   : {}", csr.num_vertices());
    println!("edges      : {}", csr.num_edges());
    println!(
        "degree     : min {} / median {} / mean {:.2} / max {}",
        ds.min, ds.median, ds.mean, ds.max
    );
    println!("isolated   : {}", ds.isolated);
    println!("density    : {:.6}", ds.density);
    println!("components : {}", comps.count());
    println!("degeneracy : {}", cores.degeneracy);
    println!("triangles  : {tri}");
    println!("clustering : {:.4}", global_clustering(&csr));
    println!("bipartite  : {}", is_bipartite(&csr));
    println!("diameter ≥ : {}", diameter_lower_bound(&csr, 0));
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let positional = parse_flags(args, &mut [])?;
    let [input, output] = positional.as_slice() else {
        return Err("convert takes <in> <out>".into());
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    println!(
        "converted {input} → {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_solve(args: &[String]) -> Result<(), String> {
    let mut algo = None;
    let positional = parse_flags(args, &mut [("algo", &mut algo)])?;
    let [path] = positional.as_slice() else {
        return Err("solve takes exactly one graph file".into());
    };
    let g = load_graph(path)?;
    let (csr, _) = dynamis::statics::verify::compact_live(&g);
    let algo = algo.as_deref().unwrap_or("greedy");
    let t = Instant::now();
    let (label, solution): (&str, Vec<u32>) = match algo {
        "greedy" => ("greedy", greedy_mis(&csr)),
        "arw" => (
            "ARW",
            arw_local_search(
                &csr,
                ArwConfig {
                    perturbations: 20,
                    seed: 1,
                },
            ),
        ),
        "peel" => ("reducing-peeling", reducing_peeling(&csr)),
        "luby" => ("Luby", luby_mis(&csr, 1).solution),
        "exact" => {
            let r = solve_exact(&csr, ExactConfig::default())
                .ok_or("exact solver budget exhausted (graph too hard)")?;
            ("exact", r.solution)
        }
        other => return Err(format!("unknown static solver `{other}`")),
    };
    println!(
        "{label}: |I| = {} of {} vertices in {:?}",
        solution.len(),
        csr.num_vertices(),
        t.elapsed()
    );
    Ok(())
}

/// Maps an `--algo` string to an engine, all through the one
/// construction path ([`EngineBuilder`]).
fn build_engine(algo: &str, g: &DynamicGraph) -> Result<Box<dyn DynamicMis>, String> {
    let builder = EngineBuilder::on(g.clone());
    let build_err = |e: dynamis::EngineError| format!("building `{algo}`: {e}");
    Ok(match algo {
        "one" => Box::new(builder.build_as::<DyOneSwap>().map_err(build_err)?),
        "two" => Box::new(builder.build_as::<DyTwoSwap>().map_err(build_err)?),
        "arw" => Box::new(builder.build_as::<DyArw>().map_err(build_err)?),
        "dgone" => Box::new(DgDis::one_dis(builder).map_err(build_err)?),
        "dgtwo" => Box::new(DgDis::two_dis(builder).map_err(build_err)?),
        "maximal" => Box::new(builder.build_as::<MaximalOnly>().map_err(build_err)?),
        other => {
            if let Some(k) = other.strip_prefix("k:") {
                let k: usize = k.parse().map_err(|_| format!("bad k in `{other}`"))?;
                Box::new(builder.k(k).build_as::<GenericKSwap>().map_err(build_err)?)
            } else if let Some(iv) = other.strip_prefix("restart:") {
                let iv: usize = iv
                    .parse()
                    .map_err(|_| format!("bad interval in `{other}`"))?;
                Box::new(
                    Restart::from_builder(builder, RestartSolver::Greedy, iv).map_err(build_err)?,
                )
            } else {
                return Err(format!("unknown dynamic algorithm `{other}`"));
            }
        }
    })
}

fn starting_graph(dataset: Option<&str>, graph: Option<&str>) -> Result<DynamicGraph, String> {
    match (dataset, graph) {
        (Some(name), None) => {
            let spec =
                datasets::by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
            Ok(spec.build())
        }
        (None, Some(path)) => load_graph(path),
        _ => Err("pass exactly one of --dataset or --graph".into()),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (mut dataset, mut graph, mut algo, mut updates, mut seed) = (None, None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("dataset", &mut dataset),
            ("graph", &mut graph),
            ("algo", &mut algo),
            ("updates", &mut updates),
            ("seed", &mut seed),
        ],
    )?;
    if !positional.is_empty() {
        return Err("run takes only flags".into());
    }
    let g = starting_graph(dataset.as_deref(), graph.as_deref())?;
    let count: usize = updates
        .as_deref()
        .unwrap_or("10000")
        .parse()
        .map_err(|_| "bad --updates")?;
    let seed: u64 = seed
        .as_deref()
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed")?;
    let ups = UpdateStream::new(&g, StreamConfig::default(), seed).take_updates(count);
    let mut engine = build_engine(algo.as_deref().unwrap_or("one"), &g)?;
    let initial = engine.size();
    let t = Instant::now();
    for u in &ups {
        engine
            .try_apply(u)
            .map_err(|e| format!("update {u:?} rejected: {e}"))?;
    }
    let elapsed = t.elapsed();
    println!(
        "{}: {} updates in {:?} ({:.2} µs/update)",
        engine.name(),
        count,
        elapsed,
        elapsed.as_micros() as f64 / count.max(1) as f64
    );
    println!(
        "solution: {} → {} on (n = {}, m = {}), heap ≈ {:.1} MiB",
        initial,
        engine.size(),
        engine.graph().num_vertices(),
        engine.graph().num_edges(),
        engine.heap_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let (mut dataset, mut graph, mut updates, mut seed) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("dataset", &mut dataset),
            ("graph", &mut graph),
            ("updates", &mut updates),
            ("seed", &mut seed),
        ],
    )?;
    let [out] = positional.as_slice() else {
        return Err("record takes one output trace path".into());
    };
    let g = starting_graph(dataset.as_deref(), graph.as_deref())?;
    let count: usize = updates
        .as_deref()
        .unwrap_or("10000")
        .parse()
        .map_err(|_| "bad --updates")?;
    let seed: u64 = seed
        .as_deref()
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed")?;
    let wl = Workload::generate(g, count, StreamConfig::default(), seed);
    write_trace_path(&wl, out).map_err(|e| e.to_string())?;
    println!("recorded {count} updates to {out}");
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut algo = None;
    let positional = parse_flags(args, &mut [("algo", &mut algo)])?;
    let [trace] = positional.as_slice() else {
        return Err("replay takes one trace path".into());
    };
    let wl = read_trace_path(trace).map_err(|e| e.to_string())?;
    let mut engine = build_engine(algo.as_deref().unwrap_or("one"), &wl.graph)?;
    let t = Instant::now();
    for u in &wl.updates {
        engine
            .try_apply(u)
            .map_err(|e| format!("trace update {u:?} rejected: {e}"))?;
    }
    println!(
        "{}: replayed {} updates from {trace} in {:?}; |I| = {}",
        engine.name(),
        wl.updates.len(),
        t.elapsed(),
        engine.size()
    );
    Ok(())
}

fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let (mut dataset, mut graph, mut updates, mut seed, mut k, mut readers, mut burst) =
        (None, None, None, None, None, None, None);
    let (mut stream, mut shards, mut partitioner, mut metrics) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("dataset", &mut dataset),
            ("graph", &mut graph),
            ("updates", &mut updates),
            ("seed", &mut seed),
            ("k", &mut k),
            ("readers", &mut readers),
            ("burst", &mut burst),
            ("stream", &mut stream),
            ("shards", &mut shards),
            ("partitioner", &mut partitioner),
            ("metrics", &mut metrics),
        ],
    )?;
    if !positional.is_empty() {
        return Err("serve-bench takes only flags".into());
    }
    if metrics.as_deref() == Some("true") {
        dynamis::obs::set_enabled(true);
    }
    let g = starting_graph(dataset.as_deref(), graph.as_deref())?;
    let parse = |v: Option<&str>, default: usize, what: &str| -> Result<usize, String> {
        v.unwrap_or(&default.to_string())
            .parse()
            .map_err(|_| format!("bad --{what}"))
    };
    let count = parse(updates.as_deref(), 50_000, "updates")?;
    let seed: u64 = seed
        .as_deref()
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --seed")?;
    let k = parse(k.as_deref(), 2, "k")?;
    let readers = parse(readers.as_deref(), 3, "readers")?;
    let burst = parse(burst.as_deref(), 256, "burst")?;
    let shards = parse(shards.as_deref(), 1, "shards")?;
    let partitioner: Partitioner = partitioner
        .as_deref()
        .map_or(Ok(Partitioner::default()), str::parse)?;
    let ups = match stream.as_deref().unwrap_or("mixed") {
        "mixed" => UpdateStream::new(&g, StreamConfig::default(), seed).take_updates(count),
        "adversarial" => {
            use dynamis::gen::adversarial::{AdversarialConfig, AdversarialStream};
            AdversarialStream::new(&g, AdversarialConfig::default(), seed).take_updates(count)
        }
        other => return Err(format!("unknown --stream `{other}`")),
    };
    let builder = EngineBuilder::on(g)
        .k(k)
        .shards(shards)
        .partitioner(partitioner);
    let cfg = ServeConfig {
        burst,
        ..ServeConfig::default()
    };
    let stop = Arc::new(AtomicBool::new(false));

    // Query-thread harness shared by both service flavors: `mk` hands
    // each thread an owned reader, `probe` runs one point query.
    fn spawn_queriers<R: Send + 'static>(
        readers: usize,
        cap: u32,
        stop: &Arc<AtomicBool>,
        mk: impl Fn() -> R,
        probe: impl Fn(&mut R, u32) -> bool + Send + Copy + 'static,
    ) -> Vec<thread::JoinHandle<u64>> {
        (0..readers)
            .map(|i| {
                let mut r = mk();
                let stop = Arc::clone(stop);
                thread::spawn(move || {
                    let (mut queries, mut v) = (0u64, i as u32);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = probe(&mut r, v % cap);
                        v = v.wrapping_mul(2_654_435_761).wrapping_add(1);
                        queries += 1;
                    }
                    queries
                })
            })
            .collect()
    }

    let t = Instant::now();
    let (report, query_threads) = if shards > 1 {
        let (service, mut reader) =
            ShardedService::spawn(builder, cfg).map_err(|e| format!("spawning service: {e}"))?;
        let cap = reader.len() as u32 * 4 + 64;
        let threads = spawn_queriers(
            readers,
            cap,
            &stop,
            || service.reader(),
            |r, v| r.contains(v),
        );
        for u in ups {
            service
                .submit_detached(u)
                .map_err(|e| format!("submit: {e}"))?;
        }
        (service.shutdown(), threads)
    } else {
        let (service, mut reader) =
            MisService::spawn(builder, cfg).map_err(|e| format!("spawning service: {e}"))?;
        let cap = reader.len() as u32 * 4 + 64;
        let threads = spawn_queriers(
            readers,
            cap,
            &stop,
            || service.reader(),
            |r, v| r.contains(v),
        );
        for u in ups {
            service
                .submit_detached(u)
                .map_err(|e| format!("submit: {e}"))?;
        }
        (service.shutdown(), threads)
    };
    let elapsed = t.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let queries: u64 = query_threads.into_iter().map(|h| h.join().unwrap()).sum();

    let layout = if shards > 1 {
        format!("{shards} shards, {partitioner} partition")
    } else {
        "1 shard".to_string()
    };
    println!(
        "{} behind serving layer ({layout}): {} updates in {:.2?} ({:.0} updates/s)",
        report.engine,
        report.stats.applied,
        elapsed,
        report.stats.applied as f64 / elapsed.as_secs_f64()
    );
    println!(
        "{readers} readers: {queries} point queries ({:.0} queries/s aggregate)",
        queries as f64 / elapsed.as_secs_f64()
    );
    println!("final stats: {}", report.stats);
    println!("final |I| = {}", report.solution.len());
    if dynamis::obs::enabled() {
        println!("{}", dynamis::obs::global().snapshot().to_prometheus());
    }
    Ok(())
}

fn cmd_net_serve(args: &[String]) -> Result<(), String> {
    let (mut dataset, mut graph, mut k, mut burst, mut shards, mut partitioner) =
        (None, None, None, None, None, None);
    let (mut addr, mut max_sessions, mut shed_high, mut shed_low, mut metrics) =
        (None, None, None, None, None);
    let (mut data_dir, mut wal_sync, mut checkpoint_every, mut hubs) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("dataset", &mut dataset),
            ("graph", &mut graph),
            ("k", &mut k),
            ("burst", &mut burst),
            ("shards", &mut shards),
            ("partitioner", &mut partitioner),
            ("addr", &mut addr),
            ("max-sessions", &mut max_sessions),
            ("shed-high", &mut shed_high),
            ("shed-low", &mut shed_low),
            ("metrics", &mut metrics),
            ("data-dir", &mut data_dir),
            ("wal-sync", &mut wal_sync),
            ("checkpoint-every", &mut checkpoint_every),
            ("hubs", &mut hubs),
        ],
    )?;
    if !positional.is_empty() {
        return Err("net-serve takes only flags".into());
    }
    if metrics.as_deref() == Some("true") {
        dynamis::obs::set_enabled(true);
    }
    let g = starting_graph(dataset.as_deref(), graph.as_deref())?;
    let parse = |v: Option<&str>, default: usize, what: &str| -> Result<usize, String> {
        v.unwrap_or(&default.to_string())
            .parse()
            .map_err(|_| format!("bad --{what}"))
    };
    let k = parse(k.as_deref(), 2, "k")?;
    let burst = parse(burst.as_deref(), 256, "burst")?;
    let shards = parse(shards.as_deref(), 1, "shards")?;
    let partitioner: Partitioner = partitioner
        .as_deref()
        .map_or(Ok(Partitioner::default()), str::parse)?;
    let addr = addr.unwrap_or_else(|| "127.0.0.1:0".into());
    let mut net_cfg = NetConfig::default();
    net_cfg.max_sessions = parse(
        max_sessions.as_deref(),
        net_cfg.max_sessions,
        "max-sessions",
    )?;
    net_cfg.shed_high = parse(
        shed_high.as_deref(),
        net_cfg.shed_high as usize,
        "shed-high",
    )? as u64;
    net_cfg.shed_low = parse(shed_low.as_deref(), net_cfg.shed_low as usize, "shed-low")? as u64;
    net_cfg.hubs = parse(hubs.as_deref(), net_cfg.hubs, "hubs")?.max(1);

    // Durable mode: recover (or initialize) the directory *before* the
    // service spawns — the recovered sequence number re-bases the
    // broadcast log so old subscribers resume gap-free.
    let mut prepared = match &data_dir {
        Some(dir) => {
            let sync = match wal_sync.as_deref() {
                None | Some("batch") => SyncPolicy::Group,
                Some("always") => SyncPolicy::Always,
                Some("never") => SyncPolicy::Never,
                Some(other) => return Err(format!("bad --wal-sync `{other}`")),
            };
            let opts = DurableOptions {
                streams: shards as u32,
                sync,
                checkpoint_every: parse(checkpoint_every.as_deref(), 4096, "checkpoint-every")?
                    as u64,
                ..DurableOptions::default()
            };
            let storage: Arc<dyn WalStorage> =
                Arc::new(FileStorage::open(dir).map_err(|e| format!("opening {dir}: {e}"))?);
            let p = durable_prepare(storage, k as u32, opts)
                .map_err(|e| format!("recovering {dir}: {e}"))?;
            println!("RECOVERED seq={} replayed={}", p.recovered_seq, p.replayed);
            Some(p)
        }
        None => None,
    };

    let mut builder = EngineBuilder::on(g)
        .k(k)
        .shards(shards)
        .partitioner(partitioner);
    let cfg = ServeConfig {
        burst,
        first_seq: prepared.as_ref().map_or(0, |p| p.first_broadcast_seq()),
        ..ServeConfig::default()
    };
    // A recovered run continues over the recovered graph and solution,
    // not the cold-start inputs.
    if let Some(p) = prepared.as_mut() {
        builder = p.resume_builder(builder);
    }

    // Spawn the service, front it, announce readiness, then block until
    // stdin closes — the conventional child-process lifecycle: the
    // parent reads the LISTENING line and later closes our stdin.
    let serve_until_eof = |backend: NetBackend| -> Result<(), String> {
        let handle =
            NetServer::bind(&addr, backend, net_cfg).map_err(|e| format!("binding {addr}: {e}"))?;
        println!("LISTENING {}", handle.local_addr());
        use std::io::{BufRead, Write};
        std::io::stdout().flush().ok();
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        let stats = handle.stats();
        handle.shutdown();
        eprintln!("net-serve: {stats}");
        Ok(())
    };
    // In durable mode the built engine is wrapped in the WAL layer
    // inside the writer thread (engines are not Send).
    let wrap = move |engine: Box<dyn DynamicMis>| -> Result<Box<dyn DynamicMis>, EngineError> {
        match prepared {
            Some(p) => p.attach(engine).map(|l| Box::new(l) as _).map_err(|e| {
                eprintln!("net-serve: durable attach failed: {e}");
                e.into_engine_error()
            }),
            None => Ok(engine),
        }
    };
    if shards > 1 {
        let (service, _reader) = ShardedService::spawn_wrapped(builder, cfg, wrap)
            .map_err(|e| format!("spawning service: {e}"))?;
        serve_until_eof(NetBackend {
            ingest: service.ingest(),
            log: service.log(),
            reader: service.merged_reader(),
        })?;
        let report = service.shutdown();
        eprintln!(
            "net-serve: served {} on {} shards, final |I| = {}",
            report.engine,
            shards,
            report.solution.len()
        );
    } else {
        let (service, _reader) = MisService::spawn_with(move || wrap(builder.build()?), cfg)
            .map_err(|e| format!("spawning service: {e}"))?;
        serve_until_eof(NetBackend::single(&service))?;
        let report = service.shutdown();
        eprintln!(
            "net-serve: served {}, final |I| = {}",
            report.engine,
            report.solution.len()
        );
    }
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    let (mut data_dir, mut mode) = (None, None);
    let positional = parse_flags(
        args,
        &mut [("data-dir", &mut data_dir), ("mode", &mut mode)],
    )?;
    if !positional.is_empty() {
        return Err("recover takes only flags".into());
    }
    let dir = data_dir.ok_or("recover needs --data-dir")?;
    let storage: Arc<dyn WalStorage> =
        Arc::new(FileStorage::open(&dir).map_err(|e| format!("opening {dir}: {e}"))?);
    let replay_in_memory = |snapshot, tail: &[Update], k: u32| -> Result<usize, String> {
        let mut engine = EngineBuilder::on(DynamicGraph::from_edges(0, &[]))
            .k(k as usize)
            .resume(snapshot)
            .build()
            .map_err(|e| format!("rebuilding engine: {e}"))?;
        engine
            .try_apply_batch(tail)
            .map_err(|e| format!("replaying WAL tail: {e}"))?;
        Ok(engine.size())
    };
    match mode.as_deref().unwrap_or("verify") {
        "verify" => {
            // Read-only: scan, report, prove the tail replays — but
            // leave the directory byte-for-byte untouched.
            let report = durable_scan(&*storage, None, None).map_err(|e| format!("{dir}: {e}"))?;
            println!(
                "recover: k={} streams={} checkpoint seq={} recovered seq={} (replaying {})",
                report.manifest.k,
                report.manifest.streams,
                report.checkpoint_seq,
                report.recovered_seq,
                report.tail.len(),
            );
            if report.skipped_checkpoints > 0 || report.torn_bytes > 0 || report.dropped_records > 0
            {
                println!(
                    "recover: crash damage: {} checkpoint(s) skipped, {} torn byte(s), {} orphaned record(s)",
                    report.skipped_checkpoints, report.torn_bytes, report.dropped_records,
                );
            }
            for r in &report.repairs {
                match r {
                    dynamis::durable::Repair::Truncate { name, len } => {
                        println!("recover: pending repair: truncate {name} to {len} bytes");
                    }
                    dynamis::durable::Repair::Remove { name } => {
                        println!("recover: pending repair: remove {name}");
                    }
                }
            }
            let size = replay_in_memory(report.snapshot, &report.tail, report.manifest.k)?;
            println!("recover: verified, final |I| = {size}");
        }
        "replay" => {
            // Mutating: apply repairs, replay, and publish a fresh
            // compacting checkpoint at the recovered sequence.
            let manifest_bytes = storage
                .read(dynamis::durable::format::MANIFEST_NAME)
                .map_err(|e| format!("{dir}: {e}"))?;
            let manifest = dynamis::durable::format::decode_manifest(&manifest_bytes)
                .map_err(|e| format!("{dir}: {e}"))?;
            let opts = DurableOptions {
                streams: manifest.streams,
                sync: SyncPolicy::Always,
                ..DurableOptions::default()
            };
            let mut prepared = durable_prepare(Arc::clone(&storage), manifest.k, opts)
                .map_err(|e| format!("{dir}: {e}"))?;
            let (seq, replayed) = (prepared.recovered_seq, prepared.replayed);
            let builder = prepared.resume_builder(
                EngineBuilder::on(DynamicGraph::from_edges(0, &[])).k(manifest.k as usize),
            );
            let logged = prepared
                .attach(
                    builder
                        .build()
                        .map_err(|e| format!("rebuilding engine: {e}"))?,
                )
                .map_err(|e| format!("{dir}: {e}"))?;
            println!(
                "recover: repaired, seq={} (replayed {}), final |I| = {}",
                seq,
                replayed,
                logged.size(),
            );
        }
        other => return Err(format!("bad --mode `{other}`")),
    }
    Ok(())
}

fn cmd_net_load(args: &[String]) -> Result<(), String> {
    let (mut addr, mut subscribers, mut writers, mut updates) = (None, None, None, None);
    let (mut vertices, mut batch, mut seed, mut json) = (None, None, None, None);
    let (mut filter, mut bootstrap) = (None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("addr", &mut addr),
            ("subscribers", &mut subscribers),
            ("writers", &mut writers),
            ("updates", &mut updates),
            ("vertices", &mut vertices),
            ("batch", &mut batch),
            ("seed", &mut seed),
            ("json", &mut json),
            ("filter", &mut filter),
            ("bootstrap", &mut bootstrap),
        ],
    )?;
    if !positional.is_empty() {
        return Err("net-load takes only flags".into());
    }
    let addr = addr.ok_or("net-load needs --addr HOST:PORT")?;
    let parse = |v: Option<&str>, default: usize, what: &str| -> Result<usize, String> {
        v.unwrap_or(&default.to_string())
            .parse()
            .map_err(|_| format!("bad --{what}"))
    };
    let d = LoadConfig::default();
    let cfg = LoadConfig {
        addr,
        subscribers: parse(subscribers.as_deref(), d.subscribers, "subscribers")?,
        writers: parse(writers.as_deref(), d.writers, "writers")?,
        updates: parse(updates.as_deref(), d.updates, "updates")?,
        vertices: parse(vertices.as_deref(), d.vertices as usize, "vertices")? as u32,
        batch: parse(batch.as_deref(), d.batch, "batch")?,
        seed: parse(seed.as_deref(), d.seed as usize, "seed")? as u64,
        filter: filter
            .as_deref()
            .map_or(Ok(dynamis::net::SubFilter::All), str::parse)?,
        bootstrap: bootstrap.as_deref() == Some("true"),
    };
    let report = dynamis::net::load::run(&cfg).map_err(|e| format!("load run: {e}"))?;
    if json.as_deref() == Some("true") {
        println!("{}", report.to_json());
    } else {
        println!(
            "{} subscribers, {} writers: {} updates in {:.2}s ({:.0} updates/s)",
            report.subscribers, report.writers, report.updates, report.elapsed_s, report.throughput
        );
        println!(
            "write RTT: p50 {} µs / p95 {} µs / p99 {} µs / max {} µs ({} busy retries)",
            report.p50_us, report.p95_us, report.p99_us, report.max_us, report.busy_retries
        );
        println!(
            "stream: {} events, {} checkpoints, {} gaps, {} lost, {} reconnects, {} mirror errors ({} mirrors verified)",
            report.sub_events,
            report.sub_checkpoints,
            report.gaps,
            report.lost_deltas,
            report.reconnects,
            report.mirror_errors,
            report.verified_mirrors
        );
        if report.filtered_subscribers > 0 || report.bootstraps > 0 {
            println!(
                "scale-out: {} filtered subscribers ({} out-of-filter), {} bootstraps, busy RTT p50 {} µs / max {} µs",
                report.filtered_subscribers,
                report.out_of_filter,
                report.bootstraps,
                report.busy_p50_us,
                report.busy_max_us
            );
        }
    }
    if report.gaps + report.lost_deltas + report.mirror_errors + report.out_of_filter > 0 {
        return Err(
            "delta stream integrity violated (gaps/lost/mirror errors/out-of-filter)".into(),
        );
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let (mut addr, mut json, mut prom, mut require) = (None, None, None, None);
    let positional = parse_flags(
        args,
        &mut [
            ("addr", &mut addr),
            ("json", &mut json),
            ("prom", &mut prom),
            ("require", &mut require),
        ],
    )?;
    if !positional.is_empty() {
        return Err("metrics takes only flags".into());
    }
    let addr = addr.ok_or("metrics needs --addr HOST:PORT")?;
    let mut client =
        dynamis::net::NetClient::connect(&addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let m = client.metrics().map_err(|e| format!("metrics call: {e}"))?;
    if json.as_deref() == Some("true") {
        println!("{}", m.to_json());
    } else if prom.as_deref() == Some("true") {
        println!("{}", m.to_prometheus());
    } else {
        println!("snapshot v{}:", m.version);
        for (name, v) in &m.counters {
            println!("  {name} = {v}");
        }
        for (name, v) in &m.gauges {
            println!("  {name} = {v}");
        }
        for (name, h) in &m.histograms {
            println!(
                "  {name}: n={} mean={} p50={} p99={} max={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            );
        }
        for e in &m.events {
            println!("  [{}µs] {}: {}", e.at_micros, e.kind, e.detail);
        }
        if m.events_dropped > 0 {
            println!("  ({} events dropped)", m.events_dropped);
        }
    }
    // CI smoke contract: every required series must exist and be
    // non-zero (counter/gauge value, or histogram sample count).
    if let Some(req) = require {
        for name in req.split(',').filter(|s| !s.is_empty()) {
            let live = m
                .counter(name)
                .or_else(|| m.gauge(name))
                .or_else(|| m.histogram(name).map(|h| h.count))
                .ok_or_else(|| format!("required series `{name}` is missing"))?;
            if live == 0 {
                return Err(format!("required series `{name}` is zero"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_separates_flags_and_positionals() {
        let args: Vec<String> = ["--algo", "two", "file.txt", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (mut algo, mut seed) = (None, None);
        let pos = parse_flags(&args, &mut [("algo", &mut algo), ("seed", &mut seed)]).unwrap();
        assert_eq!(pos, vec!["file.txt"]);
        assert_eq!(algo.as_deref(), Some("two"));
        assert_eq!(seed.as_deref(), Some("9"));
    }

    #[test]
    fn flag_parser_rejects_unknown_and_dangling() {
        let args: Vec<String> = vec!["--bogus".into(), "x".into()];
        assert!(parse_flags(&args, &mut []).is_err());
        let args: Vec<String> = vec!["--algo".into()];
        let mut algo = None;
        assert!(parse_flags(&args, &mut [("algo", &mut algo)]).is_err());
    }

    #[test]
    fn engine_factory_knows_every_algorithm() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
        for algo in [
            "one",
            "two",
            "arw",
            "dgone",
            "dgtwo",
            "maximal",
            "k:3",
            "restart:5",
        ] {
            let e = build_engine(algo, &g).unwrap_or_else(|m| panic!("{algo}: {m}"));
            assert!(e.size() >= 2, "{algo} should find the obvious pairs");
        }
        assert!(build_engine("nope", &g).is_err());
        assert!(build_engine("k:x", &g).is_err());
        assert!(build_engine("restart:", &g).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(dispatch(&["frobnicate".to_string()]).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn stats_and_convert_round_trip_through_a_temp_file() {
        let dir = std::env::temp_dir().join("dynamis_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edge = dir.join("g.txt");
        let dimacs = dir.join("g.col");
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        save_graph(&g, edge.to_str().unwrap()).unwrap();
        dispatch(&[
            "convert".to_string(),
            edge.to_str().unwrap().to_string(),
            dimacs.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let back = load_graph(dimacs.to_str().unwrap()).unwrap();
        assert_eq!(back.num_edges(), 3);
        dispatch(&["stats".to_string(), edge.to_str().unwrap().to_string()]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_bench_runs_both_streams() {
        for stream in ["mixed", "adversarial"] {
            dispatch(&[
                "serve-bench".to_string(),
                "--dataset".to_string(),
                "Email".to_string(),
                "--updates".to_string(),
                "300".to_string(),
                "--readers".to_string(),
                "1".to_string(),
                "--stream".to_string(),
                stream.to_string(),
            ])
            .unwrap_or_else(|m| panic!("{stream}: {m}"));
        }
        assert!(dispatch(&[
            "serve-bench".to_string(),
            "--dataset".to_string(),
            "Email".to_string(),
            "--stream".to_string(),
            "bogus".to_string(),
        ])
        .is_err());
    }

    #[test]
    fn serve_bench_runs_sharded() {
        for partitioner in ["greedy", "locality"] {
            dispatch(&[
                "serve-bench".to_string(),
                "--dataset".to_string(),
                "Email".to_string(),
                "--updates".to_string(),
                "300".to_string(),
                "--readers".to_string(),
                "1".to_string(),
                "--shards".to_string(),
                "3".to_string(),
                "--partitioner".to_string(),
                partitioner.to_string(),
            ])
            .unwrap_or_else(|m| panic!("sharded serve-bench ({partitioner}): {m}"));
        }
        // An unknown partitioner is a CLI error, not a default.
        assert!(dispatch(&[
            "serve-bench".to_string(),
            "--dataset".to_string(),
            "Email".to_string(),
            "--shards".to_string(),
            "2".to_string(),
            "--partitioner".to_string(),
            "metis".to_string(),
        ])
        .is_err());
        // k ≥ 3 has no sharded engine: the error must surface, not panic.
        assert!(dispatch(&[
            "serve-bench".to_string(),
            "--dataset".to_string(),
            "Email".to_string(),
            "--k".to_string(),
            "3".to_string(),
            "--shards".to_string(),
            "2".to_string(),
        ])
        .is_err());
    }

    #[test]
    fn metrics_command_validates_its_flags() {
        // No --addr is a usage error, not a connection attempt.
        assert!(cmd_metrics(&[]).is_err());
        let args: Vec<String> = vec!["stray-positional".into()];
        assert!(cmd_metrics(&args).is_err());
    }

    #[test]
    fn metrics_command_round_trips_against_a_live_server() {
        let g = DynamicGraph::from_edges(4, &[(0, 1)]);
        let (service, _reader) =
            MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
        let handle = NetServer::bind(
            "127.0.0.1:0",
            NetBackend::single(&service),
            NetConfig::default(),
        )
        .unwrap();
        let addr = handle.local_addr().to_string();

        let mut client = dynamis::net::NetClient::connect(&addr).unwrap();
        client
            .apply(dynamis::graph::Update::InsertEdge(2, 3))
            .unwrap();

        // Always-on counters must satisfy a --require smoke check in
        // every output mode.
        for mode in [&["--json", "true"][..], &["--prom", "true"][..], &[][..]] {
            let mut args = vec![
                "metrics".to_string(),
                "--addr".to_string(),
                addr.clone(),
                "--require".to_string(),
                "serve_applied_total".to_string(),
            ];
            args.extend(mode.iter().map(|s| s.to_string()));
            dispatch(&args).unwrap_or_else(|m| panic!("{mode:?}: {m}"));
        }
        // A series the server never registered fails the check.
        assert!(dispatch(&[
            "metrics".to_string(),
            "--addr".to_string(),
            addr.clone(),
            "--require".to_string(),
            "no_such_series".to_string(),
        ])
        .is_err());

        handle.shutdown();
        service.shutdown();
    }

    #[test]
    fn record_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.trace");
        dispatch(&[
            "record".to_string(),
            "--dataset".to_string(),
            "Email".to_string(),
            "--updates".to_string(),
            "200".to_string(),
            trace.to_str().unwrap().to_string(),
        ])
        .unwrap();
        dispatch(&[
            "replay".to_string(),
            trace.to_str().unwrap().to_string(),
            "--algo".to_string(),
            "two".to_string(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
