//! # dynamis — Dynamic Approximate Maximum Independent Set on Massive Graphs
//!
//! A Rust reproduction of the ICDE 2022 paper of the same name: maintain
//! an independent set over a fully dynamic graph (vertex/edge insertions
//! and deletions) with a **provable** approximation guarantee — `(Δ/2+1)`
//! in general, a parameter-dependent constant on power-law bounded
//! graphs — by keeping the set *k-maximal* (no j-swap exists for any
//! j ≤ k).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | dynamic graph substrate, CSR snapshots, I/O |
//! | [`core`] | the maintenance framework: [`DyOneSwap`], [`DyTwoSwap`], [`GenericKSwap`] |
//! | [`statics`] | greedy, ARW local search, exact branch-and-reduce, reducing–peeling |
//! | [`baselines`] | DyARW and the DGOneDIS/DGTwoDIS dependency-index emulation |
//! | [`gen`] | graph generators, update streams, PLB estimation, dataset registry |
//! | [`problems`] | vertex cover, clique, coloring, and the intro's applications (map labeling, collusion detection, interval scheduling) |
//!
//! ## Quickstart
//!
//! ```
//! use dynamis::{DynamicMis, DyTwoSwap};
//! use dynamis::graph::{DynamicGraph, Update};
//!
//! // A small collaboration network.
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let mut engine = DyTwoSwap::new(g, &[]);
//! assert!(engine.size() >= 3);
//!
//! // The network evolves; the engine keeps the guarantee.
//! engine.apply_update(&Update::InsertEdge(0, 3));
//! engine.apply_update(&Update::RemoveEdge(2, 3));
//! let bound = dynamis::core::approximation_bound(engine.graph().max_degree());
//! assert!(engine.size() as f64 * bound >= engine.size() as f64);
//! ```

pub use dynamis_baselines as baselines;
pub use dynamis_core as core;
pub use dynamis_gen as gen;
pub use dynamis_graph as graph;
pub use dynamis_problems as problems;
pub use dynamis_static as statics;

pub use dynamis_baselines::{DgDis, DyArw, MaximalOnly, Restart, RestartSolver};
pub use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineConfig, GenericKSwap, Snapshot};
pub use dynamis_gen::{StreamConfig, UpdateStream, Workload};
pub use dynamis_graph::{CsrGraph, DynamicGraph, Update};
