//! # dynamis — Dynamic Approximate Maximum Independent Set on Massive Graphs
//!
//! A Rust reproduction of the ICDE 2022 paper of the same name: maintain
//! an independent set over a fully dynamic graph (vertex/edge insertions
//! and deletions) with a **provable** approximation guarantee — `(Δ/2+1)`
//! in general, a parameter-dependent constant on power-law bounded
//! graphs — by keeping the set *k-maximal* (no j-swap exists for any
//! j ≤ k).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | dynamic graph substrate, CSR snapshots, I/O |
//! | [`core`] | the maintenance framework: [`DyOneSwap`], [`DyTwoSwap`], [`GenericKSwap`] |
//! | [`statics`] | greedy, ARW local search, exact branch-and-reduce, reducing–peeling |
//! | [`baselines`] | DyARW and the DGOneDIS/DGTwoDIS dependency-index emulation |
//! | [`gen`] | graph generators, update streams, PLB estimation, dataset registry |
//! | [`problems`] | vertex cover, clique, coloring, and the intro's applications (map labeling, collusion detection, interval scheduling) |
//! | [`serve`] | concurrent serving layer: single-writer engine thread, batched ingest, delta-broadcast readers |
//! | [`shard`] | sharded parallel maintenance: degree-aware engine partitions, per-shard writer threads, two-phase boundary repair |
//! | [`net`] | network front end: length-prefixed wire protocol, per-client sessions, delta subscriptions, admission control |
//! | [`durable`] | crash durability: segmented checksummed WAL of the accepted stream, snapshot checkpoints, torn-tail recovery |
//!
//! ## Quickstart
//!
//! Engines are built through the [`EngineBuilder`] **session API** and
//! driven with fallible, delta-reporting updates: [`DynamicMis::try_apply`]
//! rejects invalid operations gracefully (no panics) and reports exactly
//! which vertices entered and left the solution, so downstream consumers
//! can mirror it incrementally instead of rematerializing.
//!
//! ```
//! use dynamis::{DynamicMis, EngineBuilder, SolutionMirror};
//! use dynamis::graph::{DynamicGraph, Update};
//!
//! // A small collaboration network, maintained at k = 2.
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let mut engine = EngineBuilder::on(g).k(2).build().unwrap();
//! assert!(engine.size() >= 3);
//!
//! // A mirror fed from the delta feed tracks the solution exactly.
//! let mut mirror = SolutionMirror::new();
//! mirror.apply(&engine.drain_delta()).unwrap();
//!
//! // The network evolves; each update reports its adjustment.
//! for u in [Update::InsertEdge(0, 3), Update::RemoveEdge(2, 3)] {
//!     let delta = engine.try_apply(&u).unwrap();
//!     mirror.apply(&delta).unwrap();
//! }
//! assert_eq!(mirror.solution(), engine.solution());
//!
//! // Invalid updates are rejected with the engine untouched.
//! assert!(engine.try_apply(&Update::RemoveEdge(2, 3)).is_err());
//! ```

pub use dynamis_baselines as baselines;
pub use dynamis_core as core;
pub use dynamis_durable as durable;
pub use dynamis_gen as gen;
pub use dynamis_graph as graph;
pub use dynamis_net as net;
pub use dynamis_obs as obs;
pub use dynamis_problems as problems;
pub use dynamis_serve as serve;
pub use dynamis_shard as shard;
pub use dynamis_static as statics;

pub use dynamis_baselines::{DgDis, DyArw, MaximalOnly, Restart, RestartSolver};
pub use dynamis_core::{
    BuildableEngine, DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder, EngineConfig, EngineError,
    GenericKSwap, MirrorError, Snapshot, SolutionDelta, SolutionMirror,
};
pub use dynamis_gen::{StreamConfig, UpdateStream, Workload};
pub use dynamis_graph::{CsrGraph, DynamicGraph, GraphError, Partitioner, ShardMap, Update};
pub use dynamis_serve::{
    MisService, ReaderHandle, ServeConfig, ServeError, ServiceStats, ShardedReader,
};
pub use dynamis_shard::{CanonicalMis, ShardedEngine, ShardedService};
