//! Collusion detection in a voting pool (application \[4\] of the paper's
//! intro), run as a *streaming* monitor.
//!
//! Voters submit ballots over time. Whenever two voters' agreement
//! crosses a threshold, an edge appears in the agreement graph; the
//! maintained independent set is the largest pool of voters with no
//! suspicious pairwise agreement, and its complement (a vertex cover) is
//! the smallest set of voters whose removal explains all suspicions.
//! A colluding ring is injected halfway through and the monitor's
//! reaction is watched live.
//!
//! ```sh
//! cargo run --release --example collusion_monitor
//! ```

use dynamis::problems::{honest_majority_bound, Ballot};
use dynamis::EngineBuilder;
use dynamis::{DyTwoSwap, DynamicGraph, DynamicMis, Update};

/// Deterministic xorshift so the demo replays identically.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn main() {
    let voters = 400usize;
    let items = 64usize;
    let ring = 25usize; // colluders injected later
    let threshold = 0.90;
    let mut rng = Rng(0x5eed_2026);

    // Honest voters: independent uniform ballots.
    let mut ballots: Vec<Ballot> = (0..voters)
        .map(|_| Ballot::new((0..items).map(|_| (rng.next() & 1) as u8).collect()))
        .collect();

    // The agreement graph starts empty; edges arrive as ballots are
    // compared (streaming pairwise checks).
    let g = {
        let mut g = DynamicGraph::new();
        g.add_vertices(voters);
        g
    };
    let mut monitor = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    println!("pool: {voters} voters, {items} items, threshold {threshold}");
    println!(
        "initially every voter is independent: |I| = {}",
        monitor.size()
    );
    assert_eq!(monitor.size(), voters);

    // Phase 1: compare all honest pairs; at 64 items and a 0.90 bar,
    // chance agreement is essentially impossible (binomial tail).
    let mut suspicious_edges = 0usize;
    for i in 0..voters {
        for j in i + 1..voters {
            if ballots[i].agreement(&ballots[j]) >= threshold {
                monitor
                    .try_apply(&Update::InsertEdge(i as u32, j as u32))
                    .unwrap();
                suspicious_edges += 1;
            }
        }
    }
    println!(
        "phase 1 (honest traffic): {suspicious_edges} suspicious pairs, |I| = {}",
        monitor.size()
    );

    // Phase 2: a ring of colluders re-submits near-identical ballots.
    let template: Vec<u8> = (0..items).map(|_| (rng.next() & 1) as u8).collect();
    let members: Vec<usize> = (0..ring).map(|k| k * (voters / ring)).collect();
    for &m in &members {
        let mut copy = template.clone();
        // Flip a couple of items so the copies aren't byte-identical.
        for _ in 0..2 {
            let flip = (rng.next() as usize) % items;
            copy[flip] ^= 1;
        }
        ballots[m] = Ballot::new(copy);
    }
    let mut ring_edges = 0usize;
    for (a, &i) in members.iter().enumerate() {
        for &j in &members[a + 1..] {
            if ballots[i].agreement(&ballots[j]) >= threshold {
                monitor
                    .try_apply(&Update::InsertEdge(i as u32, j as u32))
                    .unwrap();
                ring_edges += 1;
            }
        }
    }
    let honest_bound = honest_majority_bound(voters, monitor.size());
    println!(
        "phase 2 (ring of {ring} injected): {ring_edges} new suspicious pairs, \
         |I| = {}, ≥ {honest_bound} voters implicated",
        monitor.size()
    );
    // The ring forms a near-clique: at most one ring member survives in
    // any independent set, so |I| drops by about ring − 1.
    assert!(monitor.size() <= voters - ring + ring / 4 + 1);

    // Phase 3: moderators clear one suspect (their edges are retracted).
    let cleared = members[0] as u32;
    let incident: Vec<u32> = monitor.graph().neighbors(cleared).collect();
    for n in incident {
        monitor.try_apply(&Update::RemoveEdge(cleared, n)).unwrap();
    }
    println!(
        "phase 3 (voter {cleared} cleared): |I| = {} — the maintained set \
         absorbs retractions as easily as accusations",
        monitor.size()
    );
    let suspicious: Vec<u32> = monitor
        .graph()
        .vertices()
        .filter(|&v| !monitor.contains(v))
        .collect();
    println!(
        "final verdict: {} plausibly-honest voters, {} needing review: {:?}",
        monitor.size(),
        suspicious.len(),
        &suspicious[..suspicious.len().min(10)]
    );
}
