//! Insertion-only stream: a web crawl discovering pages and links
//! ("new links are constantly established in the web due to the creation
//! of new pages", §I).
//!
//! The engine maintains the independent set *while the graph is being
//! built*, and we audit its accuracy against the exact optimum on
//! periodic snapshots.
//!
//! ```sh
//! cargo run --release --example streaming_webgraph
//! ```

use dynamis::gen::{stream::StreamConfig, uniform::gnm, UpdateStream};
use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::compact_live;
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DynamicMis};

fn main() {
    // Start from a small seed crawl and grow by insertions only. New
    // pages arrive as often as new links, so the crawl stays sparse (as
    // real web frontiers do) and the exact audit remains feasible.
    let seed_graph = gnm(200, 300, 5);
    let crawl = StreamConfig {
        edge_insert: 50,
        edge_delete: 0,
        vertex_insert: 50,
        vertex_delete: 0,
        new_vertex_degree: 2,
    };
    let mut stream = UpdateStream::new(&seed_graph, crawl, 11);
    let mut engine = EngineBuilder::on(seed_graph)
        .build_as::<DyOneSwap>()
        .unwrap();

    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>9}",
        "updates", "n", "m", "|I|", "accuracy"
    );
    for batch in 0..10 {
        for u in stream.take_updates(500) {
            engine.try_apply(&u).unwrap();
        }
        let (csr, _) = compact_live(engine.graph());
        // The exact solver audits the maintained solution; the node
        // budget bounds the audit on unlucky snapshots ("n/a").
        let audit = solve_exact(
            &csr,
            ExactConfig {
                node_budget: 300_000,
            },
        );
        let accuracy = audit
            .as_ref()
            .map(|r| format!("{:.2}%", 100.0 * engine.size() as f64 / r.alpha as f64))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>9}",
            (batch + 1) * 500,
            engine.graph().num_vertices(),
            engine.graph().num_edges(),
            engine.size(),
            accuracy
        );
    }
    let s = engine.stats();
    println!(
        "\nswaps: {} | repairs: {} | theoretical bound: {:.1}x",
        s.one_swaps,
        s.repairs,
        dynamis::core::approximation_bound(engine.graph().max_degree())
    );
}
