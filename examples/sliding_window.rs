//! Streaming-graph maintenance over a sliding window: interactions
//! (edges) arrive continuously and expire after a fixed horizon, so every
//! step past warm-up is a delete–insert pair — the steady-state churn the
//! dynamic engines are built for.
//!
//! The engine's solution is sampled along the stream and compared against
//! a fresh static greedy on snapshots, showing the maintained set staying
//! within a few vertices of the recomputed one at a tiny fraction of the
//! cost.
//!
//! ```sh
//! cargo run --release --example sliding_window
//! ```

use dynamis::gen::temporal::{sliding_window, SlidingWindowConfig};
use dynamis::statics::greedy_mis;
use dynamis::statics::verify::compact_live;
use dynamis::EngineBuilder;
use dynamis::{DyTwoSwap, DynamicMis};
use std::time::Instant;

fn main() {
    let n = 10_000;
    let window = 40_000;
    let arrivals = 120_000;
    let wl = sliding_window(
        SlidingWindowConfig {
            n,
            window,
            arrivals,
        },
        2026,
    );
    println!(
        "stream: {} vertices, window {} edges, {} arrivals ({} operations)",
        n,
        window,
        arrivals,
        wl.updates.len()
    );

    let mut engine = EngineBuilder::on(wl.graph.clone())
        .build_as::<DyTwoSwap>()
        .unwrap();
    let checkpoints = 6usize;
    let chunk = wl.updates.len().div_ceil(checkpoints);
    let mut maintained_time = std::time::Duration::ZERO;
    let mut recompute_time = std::time::Duration::ZERO;
    let mut processed = 0usize;
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>12}",
        "ops", "live m", "dynamic |I|", "recompute |I|", "recompute t"
    );
    for part in wl.updates.chunks(chunk) {
        let t = Instant::now();
        for u in part {
            engine.try_apply(u).unwrap();
        }
        maintained_time += t.elapsed();
        processed += part.len();

        // Reference: static greedy from scratch on the current snapshot.
        let (csr, _) = compact_live(engine.graph());
        let t = Instant::now();
        let fresh = greedy_mis(&csr);
        let this_solve = t.elapsed();
        recompute_time += this_solve;
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>12?}",
            processed,
            engine.graph().num_edges(),
            engine.size(),
            fresh.len(),
            this_solve
        );
    }
    let per_op = maintained_time.as_nanos() as f64 / wl.updates.len() as f64;
    let per_solve = recompute_time.as_nanos() as f64 / checkpoints as f64;
    println!(
        "\nmaintained through {} ops in {:?} total ({:.2} µs/op); \
         one greedy recompute ≈ {:.0} maintained updates",
        wl.updates.len(),
        maintained_time,
        per_op / 1_000.0,
        per_solve / per_op,
    );
}
