//! The paper's motivating scenario (§I): a social network where "the
//! amounts of reads and comments on some hot topics may grow to more than
//! a million in few minutes, which is almost equal to the number of
//! vertices in the graph".
//!
//! We simulate a power-law social graph under a *burst* of updates whose
//! count equals the vertex count, and compare the dynamic engines against
//! recomputing a solution from scratch after every batch — the strategy
//! the dynamic algorithms exist to replace.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use dynamis::gen::{powerlaw::chung_lu, stream::StreamConfig, UpdateStream};
use dynamis::statics::{arw_local_search, ArwConfig};
use dynamis::EngineBuilder;
use dynamis::{CsrGraph, DyOneSwap, DyTwoSwap, DynamicMis};
use std::time::Instant;

fn main() {
    let n = 20_000;
    let g = chung_lu(n, 2.3, 8.0, 7);
    println!(
        "social graph: n = {}, m = {}, Δ = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // The burst: as many updates as vertices, edge-churn dominated.
    let mut stream = UpdateStream::new(&g, StreamConfig::default(), 99);
    let burst = stream.take_updates(n);

    // Dynamic maintenance.
    for (label, mut engine) in [
        (
            "DyOneSwap",
            Box::new(
                EngineBuilder::on(g.clone())
                    .build_as::<DyOneSwap>()
                    .unwrap(),
            ) as Box<dyn DynamicMis>,
        ),
        (
            "DyTwoSwap",
            Box::new(
                EngineBuilder::on(g.clone())
                    .build_as::<DyTwoSwap>()
                    .unwrap(),
            ),
        ),
    ] {
        let t = Instant::now();
        for u in &burst {
            engine.try_apply(u).unwrap();
        }
        println!(
            "{label:10}: burst of {} updates in {:?} ({:.1} µs/update), |I| = {}",
            burst.len(),
            t.elapsed(),
            t.elapsed().as_micros() as f64 / burst.len() as f64,
            engine.size()
        );
    }

    // The from-scratch alternative: rerun static local search on the
    // final graph (per-batch recompute would multiply this by the number
    // of batches).
    let mut replay = g;
    for u in &burst {
        dynamis::gen::apply_update(&mut replay, u).expect("valid burst");
    }
    let csr = CsrGraph::from_dynamic(&replay);
    let t = Instant::now();
    let arw = arw_local_search(
        &csr,
        ArwConfig {
            perturbations: 20,
            seed: 3,
        },
    );
    println!(
        "static ARW : one recompute on the final graph in {:?}, |I| = {}",
        t.elapsed(),
        arw.len()
    );
    println!(
        "\nA single static recompute already costs ~the whole dynamic burst;\n\
         recomputing after every update would be ~{}x slower.",
        burst.len()
    );
}
