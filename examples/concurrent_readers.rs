//! Serving concurrent readers: one writer thread maintains the
//! independent set over a live Chung–Lu update stream while several
//! query threads answer membership/size queries from their own
//! delta-fed mirrors — no engine lock anywhere.
//!
//! ```bash
//! cargo run --release --example concurrent_readers
//! ```

use dynamis::gen::powerlaw::chung_lu;
use dynamis::gen::{StreamConfig, UpdateStream};
use dynamis::serve::{MisService, ServeConfig};
use dynamis::EngineBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn main() {
    let (n, updates, readers) = (20_000, 40_000, 3);
    let seed = 99;
    println!("building Chung-Lu graph (n = {n}) and a mixed update stream…");
    let base = chung_lu(n, 2.4, 8.0, seed);
    let ups =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xbeef).take_updates(updates);

    let (service, mut main_reader) = MisService::spawn(
        EngineBuilder::on(base).k(2),
        ServeConfig {
            queue_updates: 512,
            burst: 256,
            log_window: 1024,
            first_seq: 0,
        },
    )
    .expect("engine construction");
    println!(
        "service up; bootstrap solution has {} vertices (seq {})",
        main_reader.len(),
        main_reader.seq()
    );

    // Query threads: each owns an independent ReaderHandle and hammers
    // point lookups, syncing lazily from the broadcast delta log.
    let stop = Arc::new(AtomicBool::new(false));
    let query_threads: Vec<_> = (0..readers)
        .map(|id| {
            let mut r = service.reader();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let (mut queries, mut members) = (0u64, 0u64);
                let mut v = id as u32;
                while !stop.load(Ordering::Relaxed) {
                    if r.contains(v % (n as u32)) {
                        members += 1;
                    }
                    v = v.wrapping_mul(2_654_435_761).wrapping_add(1);
                    queries += 1;
                }
                (id, queries, members, r.seq())
            })
        })
        .collect();

    // The writer side: fire-and-forget ingest of the whole stream.
    let t = Instant::now();
    for u in ups {
        service.submit_detached(u).expect("service alive");
    }
    let stats = service.stats();
    println!("ingest queued in {:?}; live stats: {}", t.elapsed(), stats);
    let report = service.shutdown(); // flushes the queue
    let elapsed = t.elapsed();
    stop.store(true, Ordering::Relaxed);

    println!(
        "applied {} updates in {:.2?} ({:.0} updates/s), mean batch {:.1}",
        report.stats.applied,
        elapsed,
        report.stats.applied as f64 / elapsed.as_secs_f64(),
        report.stats.mean_batch(),
    );
    for h in query_threads {
        let (id, queries, members, seq) = h.join().unwrap();
        println!(
            "reader {id}: {queries} point queries ({:.0}/s), {members} hits, synced to seq {seq}",
            queries as f64 / elapsed.as_secs_f64()
        );
    }
    // Quiesce check: a reader mirror is exactly the engine's solution.
    assert_eq!(main_reader.snapshot(), report.solution);
    println!(
        "final |I| = {} at seq {} — reader mirror ≡ engine solution ✓",
        report.solution.len(),
        report.head_seq
    );
}
