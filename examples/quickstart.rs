//! Quickstart: maintain an approximate maximum independent set while a
//! graph changes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dynamis::core::approximation_bound;
use dynamis::graph::{DynamicGraph, Update};
use dynamis::EngineBuilder;
use dynamis::{DyTwoSwap, DynamicMis};

fn main() {
    // A tiny collaboration network: 8 researchers, co-authorship edges.
    let g = DynamicGraph::from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (1, 5),
            (2, 3),
            (2, 5),
            (3, 4),
            (3, 6),
            (4, 6),
            (5, 6),
            (6, 7),
        ],
    );

    // The engine maintains a 2-maximal independent set: a conflict-free
    // committee that no exchange of ≤ 2 members can enlarge.
    let mut engine = EngineBuilder::on(g).build_as::<DyTwoSwap>().unwrap();
    println!(
        "initial committee ({} members): {:?}",
        engine.size(),
        engine.solution()
    );
    println!(
        "guarantee: optimum ≤ {:.1} × committee size",
        approximation_bound(engine.graph().max_degree())
    );

    // The network evolves.
    let updates = [
        Update::InsertEdge(0, 7), // new collaboration
        Update::RemoveEdge(2, 5), // a paper is retracted
        Update::InsertVertex {
            id: 8,
            neighbors: vec![0, 4],
        }, // new hire
        Update::RemoveVertex(6),  // someone leaves
    ];
    for u in &updates {
        engine.try_apply(u).unwrap();
        println!(
            "after {u:?}: {} members {:?}",
            engine.size(),
            engine.solution()
        );
    }

    let stats = engine.stats();
    println!(
        "\nwork done: {} updates, {} one-swaps, {} two-swaps, {} repairs",
        stats.updates, stats.one_swaps, stats.two_swaps, stats.repairs
    );
}
