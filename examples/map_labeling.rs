//! Automated map labeling (application \[7\] of the paper's intro): pick
//! a maximum set of non-overlapping labels, then keep it maximal as the
//! user pans and the candidate set churns.
//!
//! Each map feature gets three stacked candidate positions; candidates
//! conflict when their boxes overlap or when they belong to the same
//! feature. A maximum independent set of the conflict graph is an optimal
//! labeling. Panning is simulated by deleting the candidates that scroll
//! off the left edge (vertex deletions) and inserting a fresh column on
//! the right (vertex insertions with their conflict edges) — the dynamic
//! engine absorbs both without recomputation, and the result is certified
//! 1-maximal after every phase.
//!
//! ```sh
//! cargo run --release --example map_labeling
//! ```

use dynamis::problems::labeling::label_conflict_dynamic;
use dynamis::problems::LabelBox;
use dynamis::statics::certify::certify_one_maximal;
use dynamis::EngineBuilder;
use dynamis::{DyOneSwap, DynamicMis, Update};
use std::time::Instant;

/// Candidate boxes for a grid of features: 3 stacked positions each,
/// spaced so that only same-feature candidates conflict.
fn viewport_labels(cols: u32, rows: u32) -> Vec<LabelBox> {
    let mut labels = Vec::new();
    for fx in 0..cols {
        for fy in 0..rows {
            let feature = fx * rows + fy;
            let (x, y) = (3.0 * fx as f64, 4.0 * fy as f64);
            for dy in [0.0f64, 1.1, 2.2] {
                labels.push(LabelBox::new(feature, x, y + dy, 2.6, 1.0));
            }
        }
    }
    labels
}

fn main() {
    let (cols, rows) = (40u32, 25u32);
    let labels = viewport_labels(cols, rows);
    let g = label_conflict_dynamic(&labels);
    println!(
        "viewport: {} features, {} candidates, {} conflicts",
        cols * rows,
        labels.len(),
        g.num_edges()
    );

    let t = Instant::now();
    let mut engine = EngineBuilder::on(g).build_as::<DyOneSwap>().unwrap();
    println!(
        "initial labeling: {} labels placed in {:?}",
        engine.size(),
        t.elapsed()
    );
    certify_one_maximal(engine.graph(), &engine.solution()).expect("1-maximal");
    assert_eq!(
        engine.size(),
        (cols * rows) as usize,
        "one label per feature"
    );

    // Pan right: feature column fx = 0 scrolls out. Candidates of feature
    // f occupy vertex ids 3f, 3f+1, 3f+2 (insertion order above).
    let t = Instant::now();
    // The graph recycles freed slots LIFO; replicate that to predict the
    // ids InsertVertex will be assigned.
    let mut freelist: Vec<u32> = Vec::new();
    for fy in 0..rows {
        for slot in 0..3u32 {
            let candidate = (fy * 3) + slot; // features 0..rows are column 0
            engine.try_apply(&Update::RemoveVertex(candidate)).unwrap();
            freelist.push(candidate);
        }
    }
    let removed = freelist.len();

    // A fresh column appears far to the right: its candidates conflict
    // only with their own feature's other slots.
    let mut inserted = 0usize;
    for _fy in 0..rows {
        let mut feature_slots: Vec<u32> = Vec::with_capacity(3);
        for _slot in 0..3 {
            let id = freelist
                .pop()
                .unwrap_or_else(|| engine.graph().capacity() as u32);
            engine
                .try_apply(&Update::InsertVertex {
                    id,
                    neighbors: feature_slots.clone(),
                })
                .unwrap();
            feature_slots.push(id);
            inserted += 1;
        }
    }
    println!(
        "pan: {removed} candidates out, {inserted} in, handled in {:?}",
        t.elapsed()
    );
    certify_one_maximal(engine.graph(), &engine.solution()).expect("still 1-maximal");
    assert_eq!(
        engine.size(),
        (cols * rows) as usize,
        "every feature still labeled exactly once"
    );
    println!(
        "done: {} labels, guarantee intact (certified 1-maximal)",
        engine.size()
    );
}
