//! Head-to-head tour of every dynamic algorithm in the workspace on one
//! workload — a miniature of the paper's Table II.
//!
//! ```sh
//! cargo run --release --example algorithm_tour
//! ```

use dynamis::gen::{powerlaw::chung_lu, stream::StreamConfig, UpdateStream};
use dynamis::statics::exact::{solve_exact, ExactConfig};
use dynamis::statics::verify::compact_live;
use dynamis::EngineBuilder;
use dynamis::{
    DgDis, DyArw, DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap, MaximalOnly, Restart,
    RestartSolver,
};
use std::time::Instant;

fn main() {
    let n = 2_000;
    let g = chung_lu(n, 2.5, 6.0, 21);
    let updates = UpdateStream::new(&g, StreamConfig::default(), 4).take_updates(4_000);
    println!(
        "workload: n = {n}, m = {}, {} mixed updates\n",
        g.num_edges(),
        updates.len()
    );

    let engines: Vec<Box<dyn DynamicMis>> = vec![
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<MaximalOnly>()
                .unwrap(),
        ),
        Box::new(DgDis::one_dis(EngineBuilder::on(g.clone())).unwrap()),
        Box::new(DgDis::two_dis(EngineBuilder::on(g.clone())).unwrap()),
        Box::new(EngineBuilder::on(g.clone()).build_as::<DyArw>().unwrap()),
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyOneSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .build_as::<DyTwoSwap>()
                .unwrap(),
        ),
        Box::new(
            EngineBuilder::on(g.clone())
                .k(3)
                .build_as::<GenericKSwap>()
                .unwrap(),
        ),
        Box::new(
            Restart::from_builder(EngineBuilder::on(g.clone()), RestartSolver::Greedy, 64).unwrap(),
        ),
    ];

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "algorithm", "|I|", "time", "µs/update", "heap(MB)"
    );
    let mut final_graph = None;
    for mut e in engines {
        let t = Instant::now();
        for u in &updates {
            e.try_apply(u).unwrap();
        }
        let dt = t.elapsed();
        println!(
            "{:<22} {:>8} {:>12?} {:>12.1} {:>10.1}",
            e.name(),
            e.size(),
            dt,
            dt.as_micros() as f64 / updates.len() as f64,
            e.heap_bytes() as f64 / (1024.0 * 1024.0)
        );
        final_graph = Some(e.graph().clone());
    }

    // Ground truth on the final graph, if the exact solver finishes.
    if let Some(gf) = final_graph {
        let (csr, _) = compact_live(&gf);
        if let Some(r) = solve_exact(
            &csr,
            ExactConfig {
                node_budget: 1_000_000,
            },
        ) {
            println!("\nexact α(G_final) = {} ({} B&B nodes)", r.alpha, r.nodes);
        } else {
            println!("\nexact solver exceeded its node budget (graph is 'hard')");
        }
    }
}
